//! Offline shim of the `proptest` crate: deterministic property testing
//! with the exact API subset this workspace uses.
//!
//! The build environment has no crates.io registry access, so the
//! workspace pins `proptest` to this local path crate. Each `proptest!`
//! test runs its body for `ProptestConfig::cases` generated inputs from
//! a generator seeded by the test's own name — fully deterministic
//! across runs and platforms. There is no shrinking: a failing case
//! reports its case index and the assertion message.

use std::ops::{Range, RangeInclusive};

/// Per-test configuration (only the knob this workspace uses).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property assertion (carried out of the test body).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic value generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x6A09_E667_F3BC_C909,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a hash used to derive a stable per-test seed from its name.
pub fn fnv(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Something that can generate values of `Self::Value`.
pub trait Strategy {
    /// Generated value type.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % width;
                (self.start as u128).wrapping_add(draw) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let width = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let draw = (rng.next_u64() as u128) % width;
                (lo as u128).wrapping_add(draw) as $ty
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;
    /// The whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            type Strategy = RangeInclusive<$ty>;
            fn arbitrary() -> Self::Strategy {
                <$ty>::MIN..=<$ty>::MAX
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Allowed collection sizes: `[min, max]` inclusive.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy generating `Vec`s of an element strategy's values.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };

    /// Alias namespace mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError {
                message: format!($($fmt)*),
            });
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Define deterministic property tests.
///
/// Supports the classic form used across this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(0u8..4, 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::fnv(concat!(
                module_path!(),
                "::",
                stringify!($name)
            )));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest case {case} failed: {e}");
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges honor their bounds, vec sizes honor theirs.
        #[test]
        fn bounds_hold(
            x in 5u64..10,
            y in 0u32..=3,
            v in crate::collection::vec(any::<u8>(), 2..5),
            (a, b) in (0usize..4, -2i64..2),
        ) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y <= 3);
            prop_assert!((2..5).contains(&v.len()), "len {}", v.len());
            prop_assert!(a < 4);
            prop_assert!((-2..2).contains(&b));
            prop_assert_eq!(a, a);
            prop_assert_ne!(x, 99);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0u64..1000, 1..30);
        let mut r1 = TestRng::new(fnv("seed"));
        let mut r2 = TestRng::new(fnv("seed"));
        use crate::fnv;
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }
}
