//! Offline shim of the `rayon` crate: the parallel-slice entry points
//! this workspace uses, backed by sequential `std` iterators.
//!
//! The build environment has no crates.io registry access, so the
//! workspace pins `rayon` to this local path crate. The "parallel"
//! iterators are the ordinary sequential ones — `std::slice::ChunksMut`
//! already supports the `enumerate().for_each(...)` chains the matmul
//! kernel drives, and a sequential fallback keeps results byte-identical
//! to the parallel kernel by construction.

/// Prelude mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

/// Chunked traversal of shared slices.
pub trait ParallelSlice<T> {
    /// "Parallel" chunks — a sequential `Chunks` iterator here.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// Chunked traversal of mutable slices.
pub trait ParallelSliceMut<T> {
    /// "Parallel" mutable chunks — a sequential `ChunksMut` iterator here.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunked_iteration_matches_std() {
        let mut data = vec![0u64; 12];
        data.par_chunks_mut(4).enumerate().for_each(|(i, row)| {
            for cell in row.iter_mut() {
                *cell = i as u64;
            }
        });
        assert_eq!(data, [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
        let sums: Vec<u64> = data.par_chunks(4).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, [0, 4, 8]);
    }
}
