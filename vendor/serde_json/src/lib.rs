//! Offline shim of the `serde_json` crate: a self-contained JSON tree
//! ([`Value`], [`Map`], [`Number`]), the [`json!`] constructor macro, a
//! compact serializer ([`Display`](std::fmt::Display) / [`to_string`])
//! and a strict recursive-descent parser ([`from_str`]).
//!
//! The build environment has no crates.io registry access, so the
//! workspace pins `serde_json` to this local path crate. No serde trait
//! machinery is involved: callers construct and inspect [`Value`] trees
//! directly, which is all this workspace does.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (keys sorted, matching serde_json's default map).
    Object(Map),
}

/// A JSON object: string keys to values, iterated in sorted key order.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Map {
    entries: BTreeMap<String, Value>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert a key/value pair, returning any displaced value.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        self.entries.insert(key.into(), value)
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter()
    }

    /// Mutable lookup of a key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries.get_mut(key)
    }

    /// Remove a key, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.entries.remove(key)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Map {
            entries: iter.into_iter().collect(),
        }
    }
}

/// A JSON number: integer when possible, float otherwise.
#[derive(Clone, Copy, Debug)]
pub struct Number {
    repr: Repr,
}

#[derive(Clone, Copy, Debug)]
enum Repr {
    Int(i64),
    UInt(u64),
    Float(f64),
}

impl Number {
    /// A finite float as a number; `None` for NaN or infinities.
    pub fn from_f64(f: f64) -> Option<Number> {
        f.is_finite().then_some(Number {
            repr: Repr::Float(f),
        })
    }

    /// Value as `f64`.
    pub fn as_f64(&self) -> f64 {
        match self.repr {
            Repr::Int(i) => i as f64,
            Repr::UInt(u) => u as f64,
            Repr::Float(f) => f,
        }
    }

    /// Value as `u64` when integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self.repr {
            Repr::Int(i) => u64::try_from(i).ok(),
            Repr::UInt(u) => Some(u),
            Repr::Float(_) => None,
        }
    }

    /// Value as `i64` when integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.repr {
            Repr::Int(i) => Some(i),
            Repr::UInt(u) => i64::try_from(u).ok(),
            Repr::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.repr, other.repr) {
            (Repr::Int(a), Repr::Int(b)) => a == b,
            (Repr::UInt(a), Repr::UInt(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

macro_rules! impl_number_from_int {
    ($($ty:ty => $variant:ident as $cast:ty),*) => {$(
        impl From<$ty> for Number {
            fn from(v: $ty) -> Number {
                Number { repr: Repr::$variant(v as $cast) }
            }
        }
        impl From<$ty> for Value {
            fn from(v: $ty) -> Value {
                Value::Number(Number::from(v))
            }
        }
    )*};
}

impl_number_from_int!(
    u8 => UInt as u64, u16 => UInt as u64, u32 => UInt as u64, u64 => UInt as u64,
    usize => UInt as u64, i8 => Int as i64, i16 => Int as i64, i32 => Int as i64,
    i64 => Int as i64, isize => Int as i64
);

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Number::from_f64(f)
            .map(Value::Number)
            .unwrap_or(Value::Null)
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Value {
        Value::from(f as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

impl Value {
    /// As `f64` if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// As `bool` if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True if this is a boolean.
    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }

    /// True if this is a number.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// True if this is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// True if this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// True if this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// As `u64` if this is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As `&str` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As an array slice if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As an object if this is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// As a mutable array if this is one.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As a mutable object if this is one.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object field lookup (`None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }

    /// Mutable object field lookup (`None` on non-objects).
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.as_object_mut().and_then(|o| o.get_mut(key))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.repr {
            Repr::Int(i) => write!(f, "{i}"),
            Repr::UInt(u) => write!(f, "{u}"),
            Repr::Float(x) => {
                if x == x.trunc() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(self, &mut out);
        f.write_str(&out)
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for Error {}

/// Serialize a [`Value`] to a compact JSON string.
pub fn to_string(value: &Value) -> Result<String, Error> {
    Ok(value.to_string())
}

/// Parse a JSON document into a [`Value`]; trailing garbage is an error.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number { repr: Repr::Int(i) }));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number {
                    repr: Repr::UInt(u),
                }));
            }
        }
        let f = text
            .parse::<f64>()
            .map_err(|_| self.err("invalid number"))?;
        Number::from_f64(f)
            .map(Value::Number)
            .ok_or_else(|| self.err("non-finite number"))
    }
}

/// Build a [`Value`] with JSON-like syntax.
///
/// Shim limitation: a negative literal used as an object/array element
/// must be parenthesized (`"k": (-3)`), because the simple `tt` matcher
/// sees `-3` as two tokens.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $($key:tt : $value:tt),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert($key.to_string(), $crate::json!($value)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let v = json!({
            "name": "fig6",
            "rows": [1, 2.5, true, null, "x\"y"],
            "nested": { "k": (-3) }
        });
        let text = v.to_string();
        let back = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn indexing_is_total() {
        let v = json!([{ "a": 1.0 }]);
        assert_eq!(v[0]["a"], json!(1.0));
        assert_eq!(v[9]["missing"], Value::Null);
    }

    #[test]
    fn number_semantics() {
        assert!(Number::from_f64(f64::NAN).is_none());
        assert_eq!(json!(100.0), json!(100.0));
        assert_eq!(json!(7u64).as_u64(), Some(7));
        assert_eq!(json!(100.0).to_string(), "100.0");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("\"unterminated").is_err());
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = from_str(" { \"a\" : [ 1 , \"b\\n\" ] } ").unwrap();
        assert_eq!(v["a"][1], json!("b\n"));
        assert_eq!(v["a"][0].as_u64(), Some(1));
    }
}
