//! Offline shim of the `rand` crate: the exact API subset this workspace
//! uses (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range`,
//! `Rng::gen_bool`), backed by xoshiro256** seeded through SplitMix64.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace pins every external dependency to a local path crate. The
//! generator is deterministic across platforms and Rust versions: a given
//! seed always yields the same sequence, which is all the simulation's
//! `DetRng` requires.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose sequence is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` (expected in `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can be sampled uniformly.
pub trait SampleRange {
    /// Sampled value type.
    type Output;
    /// Draw one uniform sample using `rng`.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        let u = unit_f64(rng.next_u64());
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($ty:ty),*) => {$(
        impl SampleRange for Range<$ty> {
            type Output = $ty;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty sample range");
                let width = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = (rng.next_u64() as u128) % width;
                (self.start as u128).wrapping_add(draw) as $ty
            }
        }
        impl SampleRange for RangeInclusive<$ty> {
            type Output = $ty;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive sample range");
                let width = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let draw = (rng.next_u64() as u128) % width;
                (lo as u128).wrapping_add(draw) as $ty
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

/// Generator namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the shim's "standard" RNG).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding for xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = r.gen_range(10u64..20);
            assert!((10..20).contains(&u));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let n = r.gen_range(0usize..=3);
            assert!(n <= 3);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.gen_range(0.0..1.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
