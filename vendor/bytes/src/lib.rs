//! Offline shim of the `bytes` crate: cheaply cloneable shared byte
//! buffers with the exact API subset this workspace uses.
//!
//! The build environment has no crates.io registry access, so the
//! workspace pins `bytes` to this local path crate. [`Bytes`] is an
//! `Arc<[u8]>` window (clone/slice/split are O(1) refcount bumps, no
//! copying), [`BytesMut`] is a growable buffer that freezes into one,
//! and [`Buf`]/[`BufMut`] provide the little-endian cursor helpers the
//! codecs rely on.

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation shared beyond a static empty arc).
    pub fn new() -> Self {
        Bytes::from_static(b"")
    }

    /// Wrap a static slice (copied once into shared storage).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Copy an arbitrary slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            end: data.len(),
            data: Arc::from(data),
            start: 0,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-window sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// Split off and return the bytes from `at` on; `self` keeps the head.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = self.slice(at..);
        self.end = self.start + at;
        tail
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            end: v.len(),
            data: Arc::from(v),
            start: 0,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

/// A growable byte buffer that freezes into an immutable [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Reserve room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Convert into an immutable shared buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

/// Read-cursor over a byte source (little-endian helpers included).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Consume a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Consume `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

/// Write-cursor over a growable byte sink (little-endian helpers included).
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_little_endian() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32_le(7);
        b.put_u64_le(u64::MAX - 3);
        b.put_slice(b"xy");
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 14);
        assert_eq!(frozen.get_u32_le(), 7);
        assert_eq!(frozen.get_u64_le(), u64::MAX - 3);
        assert_eq!(&frozen[..], b"xy");
    }

    #[test]
    fn slice_and_split_share_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = b.slice(2..5);
        assert_eq!(&mid[..], &[2, 3, 4]);
        let mut rest = b.clone();
        let head = rest.split_to(2);
        assert_eq!(&head[..], &[0, 1]);
        assert_eq!(&rest[..], &[2, 3, 4, 5]);
        let mut front = b.clone();
        let tail = front.split_off(4);
        assert_eq!(&front[..], &[0, 1, 2, 3]);
        assert_eq!(&tail[..], &[4, 5]);
    }

    #[test]
    fn equality_and_ordering() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(a, b);
        assert_eq!(a, b"abc"[..]);
        assert!(a < Bytes::from_static(b"abd"));
        assert!(Bytes::new().is_empty());
    }
}
