//! Offline shim of the `criterion` crate: enough of the benchmarking
//! API for `cargo bench` to build and run the workspace's benches.
//!
//! The build environment has no crates.io registry access, so the
//! workspace pins `criterion` to this local path crate. Timing is a
//! plain wall-clock loop (short warmup, `sample_size` timed samples)
//! reporting min/mean per benchmark id — no statistics machinery, but
//! the same `Bencher::iter` contract so the real crate can be swapped
//! back in when a registry is available.

use std::fmt::Display;
use std::time::Instant;

/// Opaque hint barrier (stabilized `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Hook for CLI argument handling (accepted and ignored here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, 10, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted and ignored (the shim has no target-time logic).
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Run a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&full, self.sample_size, f);
        self
    }

    /// Run a benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Identifier `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Conversion of the loose id forms `bench_function` accepts.
pub trait IntoBenchmarkId {
    /// Render to the display id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Passed to the closure under test; drives the timing loop.
pub struct Bencher {
    samples: Vec<f64>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `f`, recording one sample per call batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        let total = start.elapsed().as_secs_f64();
        self.samples.push(total / self.iters_per_sample as f64);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    // Warmup sample (discarded).
    let mut warm = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut warm);
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let n = bencher.samples.len().max(1) as f64;
    let mean = bencher.samples.iter().sum::<f64>() / n;
    let min = bencher
        .samples
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    println!(
        "bench {id:<48} mean {:>12} min {:>12}",
        fmt_s(mean),
        fmt_s(min)
    );
}

fn fmt_s(s: f64) -> String {
    if !s.is_finite() {
        "n/a".into()
    } else if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else {
        format!("{:.3} µs", s * 1e6)
    }
}

/// Collect benchmark functions into a runnable group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(c: &mut Criterion) {
        c.bench_function("demo/add", |b| b.iter(|| black_box(1u64) + 1));
        let mut group = c.benchmark_group("demo");
        group.sample_size(3);
        for k in [1u64, 2] {
            group.bench_with_input(BenchmarkId::new("pow", k), &k, |b, &k| {
                b.iter(|| 2u64.pow(k as u32))
            });
        }
        group.finish();
    }

    criterion_group!(benches, demo);

    #[test]
    fn harness_runs() {
        benches();
    }
}
