//! The paper's Fig. 4 experiment in miniature: several concurrent
//! sequential workflows with randomly mixed execution environments,
//! reporting the §V-D metric (makespan of the slowest workflow).
//!
//! Run with: `cargo run --release --example concurrent_workflows`

use swf_core::experiments::{run_once, ConcurrentParams};
use swf_core::ExperimentConfig;
use swf_workloads::EnvMix;

fn main() {
    let config = ExperimentConfig::quick();
    let mixes = [
        ("all-native", EnvMix::ALL_NATIVE),
        (
            "one-third each",
            EnvMix {
                serverless: 0.34,
                container: 0.33,
            },
        ),
        ("all-serverless", EnvMix::ALL_SERVERLESS),
        ("all-container", EnvMix::ALL_CONTAINER),
    ];
    println!("4 concurrent workflows x 5 tasks, random env assignment per mix:\n");
    println!(
        "{:<16} {:>10} {:>10} {:>8}",
        "mix", "slowest_s", "mean_s", "tasks"
    );
    for (label, mix) in mixes {
        let outcome = run_once(
            &config,
            ConcurrentParams {
                workflows: 4,
                tasks_per_workflow: 5,
                mix,
                ..ConcurrentParams::default()
            },
            0,
        );
        println!(
            "{label:<16} {:>10.1} {:>10.1} {:>8}",
            outcome.slowest, outcome.mean, outcome.tasks
        );
    }
    println!("\nper-workflow makespans for the mixed run:");
    let mixed = run_once(
        &config,
        ConcurrentParams {
            workflows: 4,
            tasks_per_workflow: 5,
            mix: EnvMix {
                serverless: 0.34,
                container: 0.33,
            },
            ..ConcurrentParams::default()
        },
        0,
    );
    for (i, m) in mixed.workflow_makespans.iter().enumerate() {
        println!("  workflow {i}: {m:.1}s");
    }
}
