//! Quickstart: boot the full reproduction stack, register a serverless
//! function, invoke it cold and warm, and print what happened.
//!
//! Run with: `cargo run --release --example quickstart`

use bytes::Bytes;

use swf_cluster::{NodeId, Request};
use swf_core::{ExperimentConfig, TestBed};
use swf_knative::KService;
use swf_simcore::{now, secs, Sim};
use swf_workloads::{decode, encode, matmul, Kernel, Matrix};

fn main() {
    // Everything runs inside one deterministic virtual-time simulation.
    let sim = Sim::new();
    sim.block_on(async {
        // 1. Boot the paper's testbed: 4 nodes, HTCondor, Kubernetes,
        //    Knative, an image registry with the matmul image pushed.
        let config = ExperimentConfig::quick();
        let bed = TestBed::boot(&config);
        println!(
            "booted: {} nodes, {} condor slots",
            bed.cluster.nodes().len(),
            bed.condor.total_slots()
        );

        // 2. Register a function BEFORE any workflow runs (the paper's
        //    manual pre-registration step). This one echoes a matrix
        //    product computed from the request payload.
        bed.knative.register_fn(
            KService::new("square", bed.image.clone())
                .with_container_concurrency(1)
                .with_initial_scale(0), // deferred: first call is cold
            |req| {
                let payload = req.body.clone();
                swf_container::Workload::new(secs(0.458), move || {
                    let m = decode(payload).map_err(|e| e.to_string())?;
                    let sq = matmul(&m, &m, Kernel::Blocked);
                    Ok(encode(&sq))
                })
            },
        );

        // Pre-cache the image on the workers so the cold start matches the
        // paper's §III-B conditions.
        for node in bed.k8s.schedulable_nodes() {
            bed.registry.pull(node, &bed.image).await.unwrap();
        }
        swf_simcore::sleep(secs(1.0)).await;

        // 3. Invoke it: the first request pays the ≈1.48 s cold start...
        let mut rng = swf_simcore::DetRng::new(7, "quickstart");
        let m = Matrix::random(16, 16, &mut rng, -9, 9);
        let body = encode(&m);

        let t0 = now();
        let resp = bed
            .knative
            .invoke(NodeId(0), "square", Request::post("/invoke", body.clone()))
            .await
            .expect("cold invocation");
        println!(
            "cold invocation: {:.3}s (paper cold start: 1.48s + compute)",
            (now() - t0).as_secs_f64()
        );
        let product = decode(resp.body).expect("valid matrix");
        assert_eq!(product, matmul(&m, &m, Kernel::Blocked));

        // 4. ...and warm requests reuse the same container.
        let t1 = now();
        for _ in 0..5 {
            bed.knative
                .invoke(NodeId(0), "square", Request::post("/invoke", body.clone()))
                .await
                .expect("warm invocation");
        }
        let per_warm = (now() - t1).as_secs_f64() / 5.0;
        println!("warm invocations: {per_warm:.3}s each (compute 0.458s + ~0.01s overhead)");

        // One container total — reuse, the paper's headline mechanism.
        let created: u64 = bed
            .k8s
            .schedulable_nodes()
            .iter()
            .map(|n| bed.k8s.runtime(*n).unwrap().created_total())
            .sum();
        println!("containers created for 6 tasks: {created} (reused across requests)");
        assert_eq!(created, 1);
        let _ = Bytes::new();
        println!("done at virtual t = {}", now());
    });
}
