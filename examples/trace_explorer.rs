//! Span-level tour of the observability stack: run a small mixed-environment
//! workflow batch with tracing on, print the critical path of the slowest
//! workflow with per-category percentages, query the span store with the
//! `obsq` engine (group-by, top-N, top offender), and write both a
//! Chrome-trace JSON file (loads directly in Perfetto,
//! https://ui.perfetto.dev, or `chrome://tracing`) and an `swf-spans/v1`
//! export that `obsq` can re-query offline.
//!
//! Run with: `cargo run --release --example trace_explorer`

use swf_core::experiments::{run_once, ConcurrentParams};
use swf_core::{render_mix_breakdown, slowest_workflow_breakdown, ExperimentConfig};
use swf_obs::{
    chrome_trace_to_string, critical_path, group_by, roots, spans_to_json, top_offender,
    top_slowest, GroupKey, SpanFilter,
};
use swf_workloads::EnvMix;

fn main() {
    let mut config = ExperimentConfig::quick();
    config.trace = true;
    let outcome = run_once(
        &config,
        ConcurrentParams {
            workflows: 3,
            tasks_per_workflow: 4,
            mix: EnvMix {
                serverless: 0.4,
                container: 0.3,
            },
            ..ConcurrentParams::default()
        },
        0,
    );
    let obs = &outcome.obs;
    println!(
        "3 workflows x 4 tasks (native/serverless/container mix), {} spans recorded\n",
        obs.span_count()
    );

    // Every workflow root, so the slowest one can be seen in context.
    let spans = obs.spans();
    println!("workflow makespans:");
    for root in roots(&spans) {
        let cp = critical_path(&spans, root.id);
        println!("  {:<16} {:>7.1} s", cp.root_name, cp.makespan_s);
    }

    // Full breakdown of the slowest workflow's critical path.
    let cp = slowest_workflow_breakdown(obs).expect("tracing is on");
    println!("\n{}", render_mix_breakdown("slowest workflow", &cp));
    println!("\ncritical-path chain (component, span, category, seconds):");
    println!("{}", cp.render_chain());

    // The query engine over the same span store obsq uses offline:
    // where did the time go, by category?
    println!("\ntime by category (count, total, p50, p99, max):");
    for row in group_by(&spans, &SpanFilter::all(), GroupKey::Category) {
        println!(
            "  {:<16} {:>4}  {:>8.2}s  p50 {:>7.2}s  p99 {:>7.2}s  max {:>7.2}s",
            row.key, row.count, row.total_s, row.p50, row.p99, row.max_s
        );
    }

    // Top-N slowest spans at least one virtual second long.
    println!("\nslowest spans (>= 1s):");
    for span in top_slowest(&spans, &SpanFilter::all().min_duration(1.0), 5) {
        println!(
            "  {:>8.2}s  {:<16} {:<20} {}",
            span.duration_secs(),
            span.category.label(),
            span.component,
            span.name
        );
    }

    // The one-line answer: ranked by *self* time, so the dominant
    // overhead (claim-activation in the paper's ablation) surfaces
    // instead of the enclosing workflow roots.
    if let Some(line) = top_offender(&spans) {
        println!("\n{line}");
    }

    // Metrics registry snapshot.
    println!("\nmetrics: {}", obs.metrics_json());

    // Perfetto-loadable export: one "process" per node, one "thread" per
    // component on that node.
    let path = "trace.json";
    std::fs::write(path, chrome_trace_to_string(&spans, "trace_explorer")).unwrap();
    println!("\nwrote {path} — load it at https://ui.perfetto.dev or chrome://tracing");

    // Lossless swf-spans/v1 export: re-query it offline with e.g.
    //   obsq summary spans.json
    //   obsq group-by spans.json --group component
    let spans_path = "spans.json";
    std::fs::write(
        spans_path,
        spans_to_json(&[("trace_explorer", obs)]).to_string(),
    )
    .unwrap();
    println!("wrote {spans_path} — query it with `cargo run --release -p swf-obs --bin obsq -- summary {spans_path}`");
}
