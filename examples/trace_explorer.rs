//! Span-level tour of the observability stack: run a small mixed-environment
//! workflow batch with tracing on, print the critical path of the slowest
//! workflow with per-category percentages, and write a Chrome-trace JSON file
//! that loads directly in Perfetto (https://ui.perfetto.dev) or
//! `chrome://tracing`.
//!
//! Run with: `cargo run --release --example trace_explorer`

use swf_core::experiments::{run_once, ConcurrentParams};
use swf_core::{render_mix_breakdown, slowest_workflow_breakdown, ExperimentConfig};
use swf_obs::{chrome_trace_to_string, critical_path, roots};
use swf_workloads::EnvMix;

fn main() {
    let mut config = ExperimentConfig::quick();
    config.trace = true;
    let outcome = run_once(
        &config,
        ConcurrentParams {
            workflows: 3,
            tasks_per_workflow: 4,
            mix: EnvMix {
                serverless: 0.4,
                container: 0.3,
            },
            ..ConcurrentParams::default()
        },
        0,
    );
    let obs = &outcome.obs;
    println!(
        "3 workflows x 4 tasks (native/serverless/container mix), {} spans recorded\n",
        obs.span_count()
    );

    // Every workflow root, so the slowest one can be seen in context.
    let spans = obs.spans();
    println!("workflow makespans:");
    for root in roots(&spans) {
        let cp = critical_path(&spans, root.id);
        println!("  {:<16} {:>7.1} s", cp.root_name, cp.makespan_s);
    }

    // Full breakdown of the slowest workflow's critical path.
    let cp = slowest_workflow_breakdown(obs).expect("tracing is on");
    println!("\n{}", render_mix_breakdown("slowest workflow", &cp));
    println!("\ncritical-path chain (component, span, category, seconds):");
    println!("{}", cp.render_chain());

    // Metrics registry snapshot.
    println!("metrics: {}", obs.metrics_json());

    // Perfetto-loadable export: one "process" per node, one "thread" per
    // component on that node.
    let path = "trace.json";
    std::fs::write(path, chrome_trace_to_string(&spans, "trace_explorer")).unwrap();
    println!("\nwrote {path} — load it at https://ui.perfetto.dev or chrome://tracing");
}
