//! A chaos storm: the concurrent-workflow experiment under the *heavy*
//! fault profile — frequent node crashes, drains, pod kills, partitions,
//! link degradations, registry outages, and flaky/slow task windows, all
//! sampled deterministically from one seed. Prints the injected plan, the
//! per-fault observability breakdown, and how the workflows fared versus
//! the calm baseline.
//!
//! Run with: `cargo run --release --example chaos_storm [seed]`

use swf_chaos::{
    run_chaos, ChaosOutcome, ChaosProfile, ChaosRunConfig, FaultPlan, WorkflowOutcome, SERVICE,
};
use swf_simcore::secs;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let cfg = ChaosRunConfig::quick(seed);
    let plan = FaultPlan::sample(
        &ChaosProfile::heavy(),
        seed,
        secs(120.0),
        0,
        &[1, 2, 3],
        &[SERVICE.to_string()],
    );

    println!("# chaos storm (seed {seed}, heavy profile)\n");
    println!("## injected plan ({} events)", plan.len());
    for ev in &plan.events {
        println!("  t+{:>8.3}s  {}", ev.at.as_secs_f64(), ev.kind.label());
    }
    println!("\nreplayable JSON:\n{plan}\n");

    let calm = run_chaos(&cfg, &FaultPlan::calm()).expect("calm run boots");
    let storm = run_chaos(&cfg, &plan).expect("storm run boots");

    println!("## workflows");
    for (w, outcome) in storm.outcomes.iter().enumerate() {
        match outcome {
            WorkflowOutcome::Completed { makespan } => {
                println!("  wf{w}: completed in {:.3}s", makespan.as_secs_f64())
            }
            WorkflowOutcome::Failed { error } => println!("  wf{w}: FAILED — {error}"),
        }
    }
    println!(
        "\nbatch makespan: calm {:.3}s → storm {:.3}s ({:.2}x)",
        calm.makespan.as_secs_f64(),
        storm.makespan.as_secs_f64(),
        storm.makespan.as_secs_f64() / calm.makespan.as_secs_f64().max(1e-9),
    );
    println!(
        "faults injected: {}   task failures injected: {}",
        storm.injected, storm.task_failures
    );
    println!(
        "registry: {} bytes served, {} pulls refused during outages",
        storm.registry_bytes_served, storm.registry_failed_pulls
    );

    print_fault_breakdown(&storm);
}

/// Per-fault observability breakdown: every `chaos.*` injection counter,
/// plus the stack's own resilience counters that chaos exercised.
fn print_fault_breakdown(storm: &ChaosOutcome) {
    println!("\n## per-fault obs breakdown");
    for (name, value) in &storm.metrics.counters {
        if let Some(kind) = name.strip_prefix("chaos.") {
            println!("  {kind:<24} {value}");
        }
    }
    println!("\n## stack resilience counters");
    for key in [
        "dagman.node_retries",
        "knative.request_retries",
        "condor.node_failures",
        "condor.stranded_jobs",
        "condor.jobs_requeued",
        "condor.stale_completions",
    ] {
        if let Some(value) = storm.metrics.counters.get(key) {
            println!("  {key:<24} {value}");
        }
    }
}
