//! Watch the KPA autoscaler react to a burst: a single warm function pod
//! receives 16 concurrent requests; the autoscaler panics, scales out, the
//! burst drains, and after the grace period the deployment returns to its
//! floor. (The paper's §III-C scaling motivation.)
//!
//! Run with: `cargo run --release --example autoscaling_burst`

use bytes::Bytes;

use swf_cluster::{NodeId, Request};
use swf_container::Workload;
use swf_core::{ExperimentConfig, TestBed};
use swf_knative::KService;
use swf_simcore::{join_all, now, secs, sleep, spawn, Sim};

fn main() {
    let sim = Sim::new();
    sim.block_on(async {
        let config = ExperimentConfig::quick();
        let bed = TestBed::boot(&config);
        bed.knative.register_fn(
            KService::new("burst", bed.image.clone())
                .with_container_concurrency(1)
                .with_min_scale(1),
            |req| {
                let body = req.body.clone();
                Workload::new(secs(1.0), move || Ok(body))
            },
        );
        bed.knative
            .wait_ready("burst", 1, secs(600.0))
            .await
            .unwrap();
        println!("[{}] warm pods: {}", now(), bed.knative.ready_pods("burst"));

        // Fire 16 concurrent requests at one cc=1 pod.
        let t0 = now();
        let handles: Vec<_> = (0..16u8)
            .map(|i| {
                let kn = bed.knative.clone();
                spawn(async move {
                    let resp = kn
                        .invoke(NodeId(0), "burst", Request::post("/", Bytes::from(vec![i])))
                        .await
                        .expect("invocation");
                    assert!(resp.is_success());
                    (now() - swf_simcore::SimTime::ZERO).as_secs_f64()
                })
            })
            .collect();

        // Sample the scale while the burst drains.
        let sampler = {
            let kn = bed.knative.clone();
            spawn(async move {
                let mut peak = 0usize;
                for _ in 0..40 {
                    sleep(secs(0.5)).await;
                    let pods = kn.ready_pods("burst");
                    peak = peak.max(pods);
                }
                peak
            })
        };

        join_all(handles).await;
        println!(
            "[{}] burst of 16 drained in {:.1}s",
            now(),
            (now() - t0).as_secs_f64()
        );
        let peak = sampler.await;
        println!("peak ready pods during burst: {peak}");
        assert!(peak > 1, "autoscaler must have scaled out");

        // Let the scale-to-zero grace pass; min-scale floors at 1.
        sleep(secs(60.0)).await;
        let settled = bed.knative.ready_pods("burst");
        println!(
            "[{}] settled pods after grace: {settled} (min-scale floor)",
            now()
        );
        assert_eq!(settled, 1);
    });
}
