//! Failure injection: kill a worker node under a live serverless service
//! and watch the platform fail over — pods replaced on healthy nodes,
//! invocations uninterrupted.
//!
//! Run with: `cargo run --release --example node_failure`

use bytes::Bytes;

use swf_cluster::{NodeId, Request};
use swf_container::Workload;
use swf_core::{ExperimentConfig, TestBed};
use swf_knative::KService;
use swf_simcore::{now, secs, sleep, Sim};

fn main() {
    let sim = Sim::new();
    sim.block_on(async {
        let config = ExperimentConfig::quick();
        let bed = TestBed::boot(&config);
        bed.knative.register_fn(
            KService::new("svc", bed.image.clone()).with_min_scale(2),
            |req| {
                let b = req.body.clone();
                Workload::new(secs(0.1), move || Ok(b))
            },
        );
        bed.knative.wait_ready("svc", 2, secs(600.0)).await.unwrap();

        let placement = |bed: &TestBed| -> Vec<NodeId> {
            let rev = bed.knative.revisions().get("svc-00001").unwrap();
            bed.k8s
                .api()
                .endpoints()
                .get(&rev.k8s_service_name())
                .unwrap()
                .ready
                .iter()
                .map(|e| e.node)
                .collect()
        };

        let before = placement(&bed);
        println!("[{}] pods ready on {:?}", now(), before);

        let victim = before[0];
        println!("[{}] >>> failing {victim}", now());
        bed.k8s.fail_node(victim);

        // Keep invoking while the control plane reacts.
        let mut ok = 0;
        for i in 0..10u8 {
            let resp = bed
                .knative
                .invoke(NodeId(0), "svc", Request::post("/", Bytes::from(vec![i])))
                .await
                .expect("service must keep serving through node loss");
            assert_eq!(&resp.body[..], &[i]);
            ok += 1;
            sleep(secs(0.5)).await;
        }
        println!("[{}] {ok}/10 invocations succeeded during fail-over", now());

        bed.knative.wait_ready("svc", 2, secs(600.0)).await.unwrap();
        let after = placement(&bed);
        println!("[{}] pods ready on {:?} (victim excluded)", now(), after);
        assert!(!after.contains(&victim));

        bed.k8s.recover_node(victim);
        println!("[{}] {victim} recovered; schedulable again", now());
    });
}
