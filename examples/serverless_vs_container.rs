//! Run the same 6-task matmul chain through all three execution venues —
//! native, traditional containers, and the serverless integration — and
//! compare makespans and data movement (the paper's core comparison).
//!
//! Run with: `cargo run --release --example serverless_vs_container`

use std::rc::Rc;

use swf_core::{
    matmul_transformation, register_matmul, stage_chain_workflow, ExperimentConfig,
    IntegratedFactory, TestBed,
};
use swf_pegasus::{Pegasus, ReplicaLocation};
use swf_simcore::{secs, Sim};
use swf_workloads::{chain_workflow, EnvMix};

fn run_venue(label: &str, mix: EnvMix) -> (f64, u64) {
    let label = label.to_string();
    let sim = Sim::new();
    sim.block_on(async move {
        let config = ExperimentConfig::quick();
        let bed = TestBed::boot(&config);
        let tarball = bed.stage_image_tarball();
        register_matmul(&bed.knative, &config);
        bed.knative
            .wait_ready("matmul", config.min_scale as usize, secs(600.0))
            .await
            .expect("function pods ready");

        let pegasus = Pegasus::new(bed.condor.clone()).with_dagman(config.dagman);
        pegasus
            .transformations()
            .register(matmul_transformation(&config));
        pegasus
            .replicas()
            .register(&tarball, ReplicaLocation::SharedFs(tarball.clone()));

        let mut rng = swf_simcore::DetRng::new(11, "example");
        let chain = chain_workflow(0, 6, mix, &mut rng);
        let wf = stage_chain_workflow(&bed.cluster, pegasus.replicas(), &chain, &config);
        let factory = Rc::new(
            IntegratedFactory::new(
                bed.knative.clone(),
                bed.k8s.clone(),
                bed.image.clone(),
                config.container_staging,
                Some(tarball),
            )
            .with_serialization_rate(config.serialization_rate),
        );
        let (stats, _report) = pegasus.run(&wf, factory.as_ref()).await.expect("workflow");
        let bytes_moved = bed.cluster.network().bytes_moved();
        println!(
            "{label:<22} makespan {:>7.1}s   bytes moved {:>10}",
            stats.makespan.as_secs_f64(),
            swf_cluster::human_bytes(bytes_moved)
        );
        (stats.makespan.as_secs_f64(), bytes_moved)
    })
}

fn main() {
    println!("6-task sequential matmul chain, one venue at a time:\n");
    let (native, native_bytes) = run_venue("all-native", EnvMix::ALL_NATIVE);
    let (serverless, serverless_bytes) = run_venue("all-serverless", EnvMix::ALL_SERVERLESS);
    let (container, container_bytes) = run_venue("all-container", EnvMix::ALL_CONTAINER);

    println!("\nfindings (cf. paper Fig. 6):");
    println!("  serverless vs native: {:.2}x", serverless / native);
    println!("  container  vs native: {:.2}x", container / native);
    println!(
        "  redundant data movement of pass-by-value: {} vs native {}",
        swf_cluster::human_bytes(serverless_bytes),
        swf_cluster::human_bytes(native_bytes)
    );
    println!(
        "  per-job image staging cost: container path moved {}",
        swf_cluster::human_bytes(container_bytes)
    );
    assert!(container >= native, "container path must not beat native");
}
