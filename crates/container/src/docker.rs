//! `docker run` facade: the paper's traditional-container baseline.
//!
//! Each invocation performs the full lifecycle — pull-if-missing, create,
//! start, exec, stop, remove — exactly what the paper's Figure 1 measures
//! for Docker ("each task ran in a new container, executed from the command
//! line using `docker run`").

use swf_simcore::{now, SimDuration};

use crate::cgroup::ResourceLimits;
use crate::error::ContainerError;
use crate::image::ImageRef;
use crate::registry::PullStats;
use crate::runtime::{ContainerRuntime, ExecResult, Workload};

/// Pull policy for [`DockerCli::run`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum PullPolicy {
    /// Pull only when layers are missing locally (docker's default).
    #[default]
    IfNotPresent,
    /// Always re-resolve and pull (cached layers still skip transfer).
    Always,
    /// Never pull; fail if the image is not local.
    Never,
}

/// Timing breakdown of a single `docker run`.
#[derive(Clone, Debug)]
pub struct DockerRunReport {
    /// Pull statistics, when a pull happened.
    pub pull: Option<PullStats>,
    /// Time spent pulling.
    pub pull_time: SimDuration,
    /// Time from create to task start (create + start overheads + queueing).
    pub startup_time: SimDuration,
    /// Task execution result.
    pub exec: ExecResult,
    /// Time tearing down (stop + remove).
    pub teardown_time: SimDuration,
    /// End-to-end elapsed time.
    pub total: SimDuration,
}

/// Thin CLI-like facade over a node's [`ContainerRuntime`].
#[derive(Clone)]
pub struct DockerCli {
    runtime: ContainerRuntime,
}

impl DockerCli {
    /// Wrap a runtime.
    pub fn new(runtime: ContainerRuntime) -> Self {
        DockerCli { runtime }
    }

    /// The wrapped runtime.
    pub fn runtime(&self) -> &ContainerRuntime {
        &self.runtime
    }

    /// Run a workload in a brand-new container, tearing it down afterwards.
    pub async fn run(
        &self,
        image: &ImageRef,
        limits: ResourceLimits,
        workload: Workload,
        pull: PullPolicy,
    ) -> Result<DockerRunReport, ContainerError> {
        self.run_with_span(swf_obs::SpanContext::NONE, image, limits, workload, pull)
            .await
    }

    /// [`DockerCli::run`] with lifecycle phases traced as child spans of
    /// `parent` (pull / create / exec / destroy).
    pub async fn run_with_span(
        &self,
        parent: swf_obs::SpanContext,
        image: &ImageRef,
        limits: ResourceLimits,
        workload: Workload,
        pull: PullPolicy,
    ) -> Result<DockerRunReport, ContainerError> {
        let obs = swf_obs::current();
        obs.counter_add("docker.runs", 1);
        let component = format!("{}/docker", self.runtime.node().name());
        let t0 = now();
        let (pull_stats, pull_time) = match pull {
            PullPolicy::Never => {
                if !self
                    .runtime
                    .registry()
                    .is_cached(self.runtime.node().id(), image)
                {
                    return Err(ContainerError::ImageNotFound(format!(
                        "{image} not present and pull policy is Never"
                    )));
                }
                (None, SimDuration::ZERO)
            }
            PullPolicy::IfNotPresent => {
                if self
                    .runtime
                    .registry()
                    .is_cached(self.runtime.node().id(), image)
                {
                    (None, SimDuration::ZERO)
                } else {
                    let s = now();
                    let span = obs.span(
                        parent,
                        &component,
                        format!("pull:{image}"),
                        swf_obs::Category::Pull,
                    );
                    let stats = self
                        .runtime
                        .registry()
                        .pull(self.runtime.node().id(), image)
                        .await?;
                    drop(span);
                    (Some(stats), now() - s)
                }
            }
            PullPolicy::Always => {
                let s = now();
                let span = obs.span(
                    parent,
                    &component,
                    format!("pull:{image}"),
                    swf_obs::Category::Pull,
                );
                let stats = self
                    .runtime
                    .registry()
                    .pull(self.runtime.node().id(), image)
                    .await?;
                drop(span);
                (Some(stats), now() - s)
            }
        };

        let t_create = now();
        let span = obs.span(
            parent,
            &component,
            format!("create:{image}"),
            swf_obs::Category::Create,
        );
        let id = self.runtime.create(image, limits).await?;
        self.runtime.start(id).await?;
        drop(span);
        let startup_time = now() - t_create;

        let span = obs.span(parent, &component, "exec", swf_obs::Category::Compute);
        let exec = self.runtime.exec(id, workload).await?;
        drop(span);

        let t_stop = now();
        let span = obs.span(
            parent,
            &component,
            format!("destroy:{image}"),
            swf_obs::Category::Destroy,
        );
        self.runtime.stop(id).await?;
        self.runtime.remove(id).await?;
        drop(span);
        let teardown_time = now() - t_stop;

        Ok(DockerRunReport {
            pull: pull_stats,
            pull_time,
            startup_time,
            exec,
            teardown_time,
            total: now() - t0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;
    use crate::overhead::OverheadModel;
    use crate::registry::{Registry, RegistryConfig};
    use swf_cluster::{mib, Node, NodeId, NodeSpec};
    use swf_simcore::{secs, Sim};

    fn cli() -> (DockerCli, ImageRef) {
        let node = Node::new(NodeId(1), NodeSpec::default());
        let registry = Registry::new(RegistryConfig::default());
        let image = ImageRef::parse("hpc/matmul");
        registry.push(Image::single_layer(image.clone(), 3, mib(100)));
        (
            DockerCli::new(ContainerRuntime::new(
                node,
                registry,
                OverheadModel::default(),
                7,
            )),
            image,
        )
    }

    #[test]
    fn run_full_cycle_and_report() {
        let sim = Sim::new();
        sim.block_on(async {
            let (cli, image) = cli();
            let r = cli
                .run(
                    &image,
                    ResourceLimits::default(),
                    Workload::synthetic(secs(0.458)),
                    PullPolicy::IfNotPresent,
                )
                .await
                .unwrap();
            assert!(r.pull.is_some());
            assert!(r.pull_time > SimDuration::ZERO);
            let m = OverheadModel::default();
            assert_eq!(r.startup_time, m.create + m.start);
            assert_eq!(r.teardown_time, m.stop + m.remove);
            assert_eq!(r.total, r.pull_time + m.lifecycle_total() + secs(0.458));
            // Runtime is clean afterwards.
            assert_eq!(cli.runtime().container_count(), 0);
        });
    }

    #[test]
    fn second_run_skips_pull() {
        let sim = Sim::new();
        sim.block_on(async {
            let (cli, image) = cli();
            let first = cli
                .run(
                    &image,
                    ResourceLimits::default(),
                    Workload::synthetic(secs(0.1)),
                    PullPolicy::IfNotPresent,
                )
                .await
                .unwrap();
            let second = cli
                .run(
                    &image,
                    ResourceLimits::default(),
                    Workload::synthetic(secs(0.1)),
                    PullPolicy::IfNotPresent,
                )
                .await
                .unwrap();
            assert!(first.pull.is_some());
            assert!(second.pull.is_none());
            assert!(second.total < first.total);
        });
    }

    #[test]
    fn pull_never_fails_without_image() {
        let sim = Sim::new();
        sim.block_on(async {
            let (cli, image) = cli();
            let err = cli
                .run(
                    &image,
                    ResourceLimits::default(),
                    Workload::synthetic(secs(0.1)),
                    PullPolicy::Never,
                )
                .await
                .unwrap_err();
            assert!(matches!(err, ContainerError::ImageNotFound(_)));
        });
    }

    #[test]
    fn per_task_overhead_matches_fig1_docker_model() {
        let sim = Sim::new();
        sim.block_on(async {
            let (cli, image) = cli();
            // Warm the cache once.
            cli.runtime().ensure_image(&image).await.unwrap();
            let compute = secs(0.458);
            let n = 10;
            let t0 = now();
            for _ in 0..n {
                cli.run(
                    &image,
                    ResourceLimits::default(),
                    Workload::synthetic(compute),
                    PullPolicy::IfNotPresent,
                )
                .await
                .unwrap();
            }
            let per_task = (now() - t0).as_secs_f64() / f64::from(n);
            // Fig 1 calibration: 0.458 compute + 0.167 lifecycle ≈ 0.625 s.
            assert!((per_task - 0.625).abs() < 1e-6, "per task {per_task}");
        });
    }
}
