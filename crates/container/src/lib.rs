//! # swf-container
//!
//! Container runtime substrate for the *Serverless Computing for Dynamic HPC
//! Workflows* reproduction: content-addressed images and layers, a registry
//! with per-node layer caches and bandwidth-limited pulls, a containerd-like
//! per-node runtime with calibrated lifecycle overheads and cgroup-style
//! limits, and a `docker run` facade used as the paper's traditional
//! container baseline (Fig. 1).
//!
//! Substitution note (see DESIGN.md): the real paper uses Docker and Linux
//! cgroups; this crate reproduces the *costs* of those mechanisms (pull,
//! create, start, stop, remove, CPU quota stretching) in virtual time while
//! running genuine task computations, which is what the paper's figures
//! measure.

#![warn(missing_docs)]

pub mod cgroup;
pub mod docker;
pub mod error;
pub mod image;
pub mod overhead;
pub mod registry;
pub mod runtime;

pub use cgroup::ResourceLimits;
pub use docker::{DockerCli, DockerRunReport, PullPolicy};
pub use error::ContainerError;
pub use image::{Image, ImageRef, Layer, LayerId};
pub use overhead::OverheadModel;
pub use registry::{PullStats, Registry, RegistryConfig};
pub use runtime::{ContainerId, ContainerPhase, ContainerRuntime, ExecResult, Workload};
