//! Image registry (DockerHub stand-in) and per-node layer caches.
//!
//! A pull resolves the manifest, skips locally cached layers, and streams
//! the rest through the registry's limited egress — so concurrent pulls from
//! many nodes contend, which is what makes per-task container distribution
//! expensive in the Fig. 2 HTCondor-container path.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use swf_simcore::{secs, Resource, SimDuration};

use swf_cluster::{NodeId, Rate};

use crate::error::ContainerError;
use crate::image::{Image, ImageRef, LayerId};

/// Registry service parameters.
#[derive(Clone, Copy, Debug)]
pub struct RegistryConfig {
    /// Egress bandwidth shared across all concurrent pulls.
    pub bandwidth: Rate,
    /// Per-pull control-plane latency (manifest resolution, auth).
    pub manifest_latency: SimDuration,
    /// Maximum concurrent layer streams served.
    pub concurrent_streams: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            bandwidth: Rate::mb_per_s(120.0),
            manifest_latency: SimDuration::from_millis(120),
            concurrent_streams: 4,
        }
    }
}

/// Outcome of a pull.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PullStats {
    /// Layers actually transferred.
    pub layers_pulled: usize,
    /// Layers found in the node cache.
    pub layers_cached: usize,
    /// Bytes transferred.
    pub bytes_pulled: u64,
}

struct State {
    images: BTreeMap<ImageRef, Image>,
    node_caches: BTreeMap<NodeId, BTreeSet<LayerId>>,
    pulls: u64,
    bytes_served: u64,
    /// Bytes streamed to each node — the conservation ledger: the sum over
    /// nodes always equals `bytes_served` (nothing is lost or
    /// double-counted, even under fault-injected outages).
    bytes_by_node: BTreeMap<NodeId, u64>,
    /// Fault injection: while set, pulls fail after manifest resolution.
    outage: bool,
    /// Pulls refused because of an outage.
    failed_pulls: u64,
}

/// The registry.
#[derive(Clone)]
pub struct Registry {
    config: RegistryConfig,
    egress: Resource,
    state: Rc<RefCell<State>>,
}

impl Registry {
    /// Empty registry.
    pub fn new(config: RegistryConfig) -> Self {
        Registry {
            egress: Resource::new("registry-egress", config.concurrent_streams),
            config,
            state: Rc::new(RefCell::new(State {
                images: BTreeMap::new(),
                node_caches: BTreeMap::new(),
                pulls: 0,
                bytes_served: 0,
                bytes_by_node: BTreeMap::new(),
                outage: false,
                failed_pulls: 0,
            })),
        }
    }

    /// Publish an image manifest.
    pub fn push(&self, image: Image) {
        self.state
            .borrow_mut()
            .images
            .insert(image.reference.clone(), image);
    }

    /// Look up a manifest.
    pub fn manifest(&self, reference: &ImageRef) -> Result<Image, ContainerError> {
        self.state
            .borrow()
            .images
            .get(reference)
            .cloned()
            .ok_or_else(|| ContainerError::ImageNotFound(reference.to_string()))
    }

    /// Does `node` hold every layer of `reference`?
    pub fn is_cached(&self, node: NodeId, reference: &ImageRef) -> bool {
        let s = self.state.borrow();
        let Some(img) = s.images.get(reference) else {
            return false;
        };
        let Some(cache) = s.node_caches.get(&node) else {
            return false;
        };
        img.layers.iter().all(|l| cache.contains(&l.id))
    }

    /// Pull `reference` onto `node`, charging virtual time for the layers
    /// that are not cached there yet. Returns pull statistics.
    pub async fn pull(
        &self,
        node: NodeId,
        reference: &ImageRef,
    ) -> Result<PullStats, ContainerError> {
        let image = self.manifest(reference)?;
        // Manifest resolution round trip.
        swf_simcore::sleep(self.config.manifest_latency).await;
        // A fault-injected outage refuses the pull after the manifest round
        // trip (the client paid the connection attempt), before any bytes
        // move — the conservation ledger stays balanced.
        if self.state.borrow().outage {
            self.state.borrow_mut().failed_pulls += 1;
            return Err(ContainerError::RegistryUnavailable(format!(
                "pull of {reference} from {node} refused: registry outage"
            )));
        }
        let missing: Vec<_> = {
            let s = self.state.borrow();
            let cache = s.node_caches.get(&node);
            image
                .layers
                .iter()
                .filter(|l| cache.is_none_or(|c| !c.contains(&l.id)))
                .copied()
                .collect()
        };
        let cached = image.layers.len() - missing.len();
        let mut bytes = 0;
        for layer in &missing {
            let stream_time = secs(self.config.bandwidth.time_for(layer.size));
            self.egress.serve(stream_time).await;
            bytes += layer.size;
            // Layer lands in the cache as soon as its stream completes.
            self.state
                .borrow_mut()
                .node_caches
                .entry(node)
                .or_default()
                .insert(layer.id);
        }
        let mut s = self.state.borrow_mut();
        s.pulls += 1;
        s.bytes_served += bytes;
        *s.bytes_by_node.entry(node).or_default() += bytes;
        Ok(PullStats {
            layers_pulled: missing.len(),
            layers_cached: cached,
            bytes_pulled: bytes,
        })
    }

    /// Mark every layer of `reference` as present on `node` without any
    /// transfer — the `docker load` path, used when an image tarball was
    /// shipped to the node by other means (e.g. Pegasus file transfer).
    pub fn mark_cached(&self, node: NodeId, reference: &ImageRef) -> Result<(), ContainerError> {
        let image = self.manifest(reference)?;
        let mut s = self.state.borrow_mut();
        let cache = s.node_caches.entry(node).or_default();
        for l in &image.layers {
            cache.insert(l.id);
        }
        Ok(())
    }

    /// Drop `node`'s cached copy of an image's layers (e.g. image GC).
    /// Layers shared with other cached images are removed as well — the
    /// model keeps no refcounts, matching kubelet's coarse image GC.
    pub fn evict(&self, node: NodeId, reference: &ImageRef) {
        let mut s = self.state.borrow_mut();
        let Some(img) = s.images.get(reference).cloned() else {
            return;
        };
        if let Some(cache) = s.node_caches.get_mut(&node) {
            for l in &img.layers {
                cache.remove(&l.id);
            }
        }
    }

    /// Total completed pulls (cache-hit pulls included).
    pub fn pulls(&self) -> u64 {
        self.state.borrow().pulls
    }

    /// Total bytes streamed.
    pub fn bytes_served(&self) -> u64 {
        self.state.borrow().bytes_served
    }

    /// Fault injection: start or end a registry outage. While on, every
    /// pull fails with [`ContainerError::RegistryUnavailable`] after the
    /// manifest round trip; cached layers remain usable.
    pub fn set_outage(&self, on: bool) {
        self.state.borrow_mut().outage = on;
    }

    /// Is the registry currently refusing pulls?
    pub fn is_under_outage(&self) -> bool {
        self.state.borrow().outage
    }

    /// Pulls refused by fault-injected outages.
    pub fn failed_pulls(&self) -> u64 {
        self.state.borrow().failed_pulls
    }

    /// Bytes streamed to one node (conservation ledger entry).
    pub fn bytes_pulled_by(&self, node: NodeId) -> u64 {
        self.state
            .borrow()
            .bytes_by_node
            .get(&node)
            .copied()
            .unwrap_or(0)
    }

    /// The conservation ledger: per-node streamed bytes, ascending node id.
    /// Its sum always equals [`Registry::bytes_served`].
    pub fn bytes_ledger(&self) -> Vec<(NodeId, u64)> {
        self.state
            .borrow()
            .bytes_by_node
            .iter()
            .map(|(n, b)| (*n, *b))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_cluster::mib;
    use swf_simcore::{join_all, now, spawn, Sim, SimTime};

    fn registry() -> Registry {
        Registry::new(RegistryConfig {
            bandwidth: Rate::mb_per_s(100.0),
            manifest_latency: SimDuration::ZERO,
            concurrent_streams: 2,
        })
    }

    #[test]
    fn pull_unknown_image_fails() {
        let sim = Sim::new();
        sim.block_on(async {
            let r = registry();
            let err = r
                .pull(NodeId(0), &ImageRef::parse("ghost"))
                .await
                .unwrap_err();
            assert!(matches!(err, ContainerError::ImageNotFound(_)));
        });
    }

    #[test]
    fn first_pull_moves_all_layers_second_is_free() {
        let sim = Sim::new();
        sim.block_on(async {
            let r = registry();
            let img = Image::python_scientific(ImageRef::parse("m"), 1);
            let total = img.total_size();
            r.push(img);
            let s1 = r.pull(NodeId(1), &ImageRef::parse("m")).await.unwrap();
            assert_eq!(s1.layers_pulled, 3);
            assert_eq!(s1.bytes_pulled, total);
            let t1 = now();
            assert!(t1 > SimTime::ZERO);
            let s2 = r.pull(NodeId(1), &ImageRef::parse("m")).await.unwrap();
            assert_eq!(s2.layers_pulled, 0);
            assert_eq!(s2.layers_cached, 3);
            assert_eq!(now(), t1); // no additional stream time
            assert!(r.is_cached(NodeId(1), &ImageRef::parse("m")));
        });
    }

    #[test]
    fn outage_refuses_pulls_but_keeps_the_ledger_balanced() {
        let sim = Sim::new();
        sim.block_on(async {
            let r = registry();
            r.push(Image::python_scientific(ImageRef::parse("m"), 1));
            r.pull(NodeId(1), &ImageRef::parse("m")).await.unwrap();
            r.set_outage(true);
            assert!(r.is_under_outage());
            let err = r.pull(NodeId(2), &ImageRef::parse("m")).await.unwrap_err();
            assert!(matches!(err, ContainerError::RegistryUnavailable(_)));
            assert_eq!(r.failed_pulls(), 1);
            // Cached layers stay usable during the outage: the node that
            // already holds everything "pulls" without streaming.
            let cached = r.is_cached(NodeId(1), &ImageRef::parse("m"));
            assert!(cached);
            r.set_outage(false);
            r.pull(NodeId(2), &ImageRef::parse("m")).await.unwrap();
            // Conservation: per-node ledger sums to bytes_served.
            let ledger_sum: u64 = r.bytes_ledger().iter().map(|(_, b)| *b).sum();
            assert_eq!(ledger_sum, r.bytes_served());
            assert_eq!(
                r.bytes_pulled_by(NodeId(1)) + r.bytes_pulled_by(NodeId(2)),
                ledger_sum
            );
        });
    }

    #[test]
    fn distinct_nodes_have_distinct_caches() {
        let sim = Sim::new();
        sim.block_on(async {
            let r = registry();
            r.push(Image::single_layer(ImageRef::parse("x"), 7, mib(10)));
            r.pull(NodeId(1), &ImageRef::parse("x")).await.unwrap();
            assert!(r.is_cached(NodeId(1), &ImageRef::parse("x")));
            assert!(!r.is_cached(NodeId(2), &ImageRef::parse("x")));
        });
    }

    #[test]
    fn shared_layers_are_deduplicated() {
        let sim = Sim::new();
        sim.block_on(async {
            let r = registry();
            r.push(Image::python_scientific(ImageRef::parse("a"), 1));
            r.push(Image::python_scientific(ImageRef::parse("b"), 0x100 + 1));
            r.pull(NodeId(1), &ImageRef::parse("a")).await.unwrap();
            // b shares base+python layers (same seed byte), differs in app.
            let s = r.pull(NodeId(1), &ImageRef::parse("b")).await.unwrap();
            assert_eq!(s.layers_cached, 2);
            assert_eq!(s.layers_pulled, 1);
            assert_eq!(s.bytes_pulled, mib(20));
        });
    }

    #[test]
    fn concurrent_pulls_contend_on_egress() {
        let sim = Sim::new();
        sim.block_on(async {
            let r = registry();
            // One layer of 100MB = 1s at 100MB/s; 2 streams allowed.
            for i in 0..4u64 {
                r.push(Image::single_layer(
                    ImageRef::parse(&format!("img{i}")),
                    100 + i,
                    100_000_000,
                ));
            }
            let handles: Vec<_> = (0..4u64)
                .map(|i| {
                    let r = r.clone();
                    spawn(async move {
                        r.pull(NodeId(i as usize), &ImageRef::parse(&format!("img{i}")))
                            .await
                            .unwrap();
                        now()
                    })
                })
                .collect();
            let done = join_all(handles).await;
            // Two at a time: finish at ~1s and ~2s.
            assert_eq!(done[0], SimTime::ZERO + secs(1.0));
            assert_eq!(done[1], SimTime::ZERO + secs(1.0));
            assert_eq!(done[2], SimTime::ZERO + secs(2.0));
            assert_eq!(done[3], SimTime::ZERO + secs(2.0));
        });
    }

    #[test]
    fn evict_forces_repull() {
        let sim = Sim::new();
        sim.block_on(async {
            let r = registry();
            r.push(Image::single_layer(ImageRef::parse("x"), 9, mib(10)));
            r.pull(NodeId(0), &ImageRef::parse("x")).await.unwrap();
            r.evict(NodeId(0), &ImageRef::parse("x"));
            assert!(!r.is_cached(NodeId(0), &ImageRef::parse("x")));
            let s = r.pull(NodeId(0), &ImageRef::parse("x")).await.unwrap();
            assert_eq!(s.layers_pulled, 1);
        });
    }
}
