//! Node-local container runtime (containerd stand-in).
//!
//! The runtime owns container lifecycle on one node: `create` reserves
//! memory and sets up namespaces, `start` boots the entrypoint, `exec` runs
//! a task on a CPU core under the container's cgroup limits, `stop`/`remove`
//! tear down. Images must already be in the node cache (callers pull via
//! [`Registry`]), matching containerd's contract.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use bytes::Bytes;

use swf_cluster::{MemoryLease, Node};
use swf_simcore::{now, sleep, DetRng, SimDuration};

use crate::cgroup::ResourceLimits;
use crate::error::ContainerError;
use crate::image::ImageRef;
use crate::overhead::OverheadModel;
use crate::registry::Registry;

/// Identifier of a container on one runtime.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ContainerId(pub u64);

impl std::fmt::Display for ContainerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ctr-{}", self.0)
    }
}

/// Lifecycle phase of a container.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ContainerPhase {
    /// Created but not started.
    Created,
    /// Entry point running; can accept execs.
    Running,
    /// Stopped; restartable only by re-create in this model.
    Exited,
}

impl ContainerPhase {
    fn name(self) -> &'static str {
        match self {
            ContainerPhase::Created => "created",
            ContainerPhase::Running => "running",
            ContainerPhase::Exited => "exited",
        }
    }
}

/// A unit of containerized work.
pub struct Workload {
    /// Single-core compute time at full (1000m) quota.
    pub compute: SimDuration,
    /// Real computation executed at the virtual instant the compute window
    /// ends; its output becomes the task output.
    pub run: Box<dyn FnOnce() -> Result<Bytes, String>>,
}

impl Workload {
    /// A workload with modelled time and a real computation.
    pub fn new(
        compute: SimDuration,
        run: impl FnOnce() -> Result<Bytes, String> + 'static,
    ) -> Self {
        Workload {
            compute,
            run: Box::new(run),
        }
    }

    /// Purely synthetic workload: charges time, returns empty output.
    pub fn synthetic(compute: SimDuration) -> Self {
        Workload::new(compute, || Ok(Bytes::new()))
    }
}

/// Result of an exec.
#[derive(Clone, Debug)]
pub struct ExecResult {
    /// Task output bytes.
    pub output: Bytes,
    /// Time spent waiting for a CPU core.
    pub core_wait: SimDuration,
    /// Core time charged (compute scaled by the cgroup quota).
    pub busy: SimDuration,
}

struct Ctr {
    image: ImageRef,
    limits: ResourceLimits,
    phase: ContainerPhase,
    _memory: MemoryLease,
    execs: u64,
}

struct RtState {
    containers: BTreeMap<u64, Ctr>,
    next_id: u64,
    created_total: u64,
    removed_total: u64,
    execs_total: u64,
    crashed_total: u64,
}

/// The per-node container runtime.
#[derive(Clone)]
pub struct ContainerRuntime {
    node: Node,
    registry: Registry,
    overheads: OverheadModel,
    rng: Rc<RefCell<DetRng>>,
    state: Rc<RefCell<RtState>>,
}

impl ContainerRuntime {
    /// Runtime on `node` pulling from `registry`.
    pub fn new(node: Node, registry: Registry, overheads: OverheadModel, seed: u64) -> Self {
        let stream = format!("container-runtime/{}", node.name());
        ContainerRuntime {
            node,
            registry,
            overheads,
            rng: Rc::new(RefCell::new(DetRng::new(seed, &stream))),
            state: Rc::new(RefCell::new(RtState {
                containers: BTreeMap::new(),
                next_id: 0,
                created_total: 0,
                removed_total: 0,
                execs_total: 0,
                crashed_total: 0,
            })),
        }
    }

    /// The node this runtime manages.
    pub fn node(&self) -> &Node {
        &self.node
    }

    /// The registry this runtime pulls from.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Ensure `image` is in the node cache, pulling when missing. Returns
    /// the time spent pulling (zero when cached).
    pub async fn ensure_image(&self, image: &ImageRef) -> Result<SimDuration, ContainerError> {
        if self.registry.is_cached(self.node.id(), image) {
            return Ok(SimDuration::ZERO);
        }
        let start = now();
        self.registry.pull(self.node.id(), image).await?;
        Ok(now() - start)
    }

    /// Create a container from a locally cached image.
    pub async fn create(
        &self,
        image: &ImageRef,
        limits: ResourceLimits,
    ) -> Result<ContainerId, ContainerError> {
        if !self.registry.is_cached(self.node.id(), image) {
            return Err(ContainerError::ImageNotFound(format!(
                "{image} not cached on {}",
                self.node.name()
            )));
        }
        let memory = self.node.memory().reserve(limits.memory)?;
        let d = {
            let mut rng = self.rng.borrow_mut();
            self.overheads.sample(self.overheads.create, &mut rng)
        };
        sleep(d).await;
        let mut s = self.state.borrow_mut();
        let id = s.next_id;
        s.next_id += 1;
        s.created_total += 1;
        s.containers.insert(
            id,
            Ctr {
                image: image.clone(),
                limits,
                phase: ContainerPhase::Created,
                _memory: memory,
                execs: 0,
            },
        );
        Ok(ContainerId(id))
    }

    /// Start a created container (boot the entrypoint).
    pub async fn start(&self, id: ContainerId) -> Result<(), ContainerError> {
        self.expect_phase(id, ContainerPhase::Created, "start")?;
        let d = {
            let mut rng = self.rng.borrow_mut();
            self.overheads.sample(self.overheads.start, &mut rng)
        };
        sleep(d).await;
        self.set_phase(id, ContainerPhase::Running)
    }

    /// Execute a workload inside a running container.
    pub async fn exec(
        &self,
        id: ContainerId,
        workload: Workload,
    ) -> Result<ExecResult, ContainerError> {
        let limits = {
            let s = self.state.borrow();
            let ctr = s
                .containers
                .get(&id.0)
                .ok_or(ContainerError::NoSuchContainer(id.0))?;
            if ctr.phase != ContainerPhase::Running {
                return Err(ContainerError::InvalidState {
                    id: id.0,
                    state: ctr.phase.name(),
                    op: "exec",
                });
            }
            ctr.limits
        };
        let scaled = limits.scale_compute(workload.compute);
        let t0 = now();
        let core_wait = self.node.cores().serve(scaled).await;
        let output = (workload.run)().map_err(ContainerError::TaskFailed)?;
        {
            let mut s = self.state.borrow_mut();
            s.execs_total += 1;
            if let Some(ctr) = s.containers.get_mut(&id.0) {
                ctr.execs += 1;
            }
        }
        Ok(ExecResult {
            output,
            core_wait,
            busy: (now() - t0) - core_wait,
        })
    }

    /// Stop a running container.
    pub async fn stop(&self, id: ContainerId) -> Result<(), ContainerError> {
        self.expect_phase(id, ContainerPhase::Running, "stop")?;
        let d = {
            let mut rng = self.rng.borrow_mut();
            self.overheads.sample(self.overheads.stop, &mut rng)
        };
        sleep(d).await;
        self.set_phase(id, ContainerPhase::Exited)
    }

    /// Crash a running container: it drops to Exited instantly, with no
    /// orderly-stop overhead. This is the chaos-injection hook a liveness
    /// probe later detects; it never fires on calm runs.
    pub fn crash(&self, id: ContainerId) -> Result<(), ContainerError> {
        self.expect_phase(id, ContainerPhase::Running, "crash")?;
        self.state.borrow_mut().crashed_total += 1;
        self.set_phase(id, ContainerPhase::Exited)
    }

    /// Remove a created or exited container, releasing its memory.
    pub async fn remove(&self, id: ContainerId) -> Result<(), ContainerError> {
        {
            let s = self.state.borrow();
            let ctr = s
                .containers
                .get(&id.0)
                .ok_or(ContainerError::NoSuchContainer(id.0))?;
            if ctr.phase == ContainerPhase::Running {
                return Err(ContainerError::InvalidState {
                    id: id.0,
                    state: ctr.phase.name(),
                    op: "remove",
                });
            }
        }
        let d = {
            let mut rng = self.rng.borrow_mut();
            self.overheads.sample(self.overheads.remove, &mut rng)
        };
        sleep(d).await;
        let mut s = self.state.borrow_mut();
        s.containers.remove(&id.0);
        s.removed_total += 1;
        Ok(())
    }

    /// Current phase of a container.
    pub fn phase(&self, id: ContainerId) -> Result<ContainerPhase, ContainerError> {
        self.state
            .borrow()
            .containers
            .get(&id.0)
            .map(|c| c.phase)
            .ok_or(ContainerError::NoSuchContainer(id.0))
    }

    /// Image of a container.
    pub fn image_of(&self, id: ContainerId) -> Result<ImageRef, ContainerError> {
        self.state
            .borrow()
            .containers
            .get(&id.0)
            .map(|c| c.image.clone())
            .ok_or(ContainerError::NoSuchContainer(id.0))
    }

    /// Execs completed inside a container (container-reuse accounting).
    pub fn execs_of(&self, id: ContainerId) -> Result<u64, ContainerError> {
        self.state
            .borrow()
            .containers
            .get(&id.0)
            .map(|c| c.execs)
            .ok_or(ContainerError::NoSuchContainer(id.0))
    }

    /// Containers currently present (any phase).
    pub fn container_count(&self) -> usize {
        self.state.borrow().containers.len()
    }

    /// Containers ever created.
    pub fn created_total(&self) -> u64 {
        self.state.borrow().created_total
    }

    /// Containers ever removed.
    pub fn removed_total(&self) -> u64 {
        self.state.borrow().removed_total
    }

    /// Total execs across all containers.
    pub fn execs_total(&self) -> u64 {
        self.state.borrow().execs_total
    }

    /// Containers ever crashed via [`ContainerRuntime::crash`].
    pub fn crashed_total(&self) -> u64 {
        self.state.borrow().crashed_total
    }

    fn expect_phase(
        &self,
        id: ContainerId,
        want: ContainerPhase,
        op: &'static str,
    ) -> Result<(), ContainerError> {
        let s = self.state.borrow();
        let ctr = s
            .containers
            .get(&id.0)
            .ok_or(ContainerError::NoSuchContainer(id.0))?;
        if ctr.phase != want {
            return Err(ContainerError::InvalidState {
                id: id.0,
                state: ctr.phase.name(),
                op,
            });
        }
        Ok(())
    }

    fn set_phase(&self, id: ContainerId, phase: ContainerPhase) -> Result<(), ContainerError> {
        let mut s = self.state.borrow_mut();
        let ctr = s
            .containers
            .get_mut(&id.0)
            .ok_or(ContainerError::NoSuchContainer(id.0))?;
        ctr.phase = phase;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::Image;
    use crate::registry::RegistryConfig;
    use swf_cluster::{mib, NodeId, NodeSpec};
    use swf_simcore::{secs, Sim, SimTime};

    fn setup() -> (ContainerRuntime, ImageRef) {
        let node = Node::new(
            NodeId(1),
            NodeSpec {
                cores: 2,
                memory: mib(4096),
            },
        );
        let registry = Registry::new(RegistryConfig::default());
        let image = ImageRef::parse("hpc/matmul:1.0");
        registry.push(Image::single_layer(image.clone(), 1, mib(100)));
        let rt = ContainerRuntime::new(node, registry, OverheadModel::default(), 42);
        (rt, image)
    }

    #[test]
    fn full_lifecycle_charges_overheads() {
        let sim = Sim::new();
        sim.block_on(async {
            let (rt, image) = setup();
            rt.ensure_image(&image).await.unwrap();
            let t0 = now();
            let id = rt.create(&image, ResourceLimits::default()).await.unwrap();
            assert_eq!(rt.phase(id).unwrap(), ContainerPhase::Created);
            rt.start(id).await.unwrap();
            assert_eq!(rt.phase(id).unwrap(), ContainerPhase::Running);
            let r = rt.exec(id, Workload::synthetic(secs(1.0))).await.unwrap();
            assert_eq!(r.busy, secs(1.0));
            rt.stop(id).await.unwrap();
            rt.remove(id).await.unwrap();
            let elapsed = now() - t0;
            let m = OverheadModel::default();
            assert_eq!(elapsed, m.lifecycle_total() + secs(1.0));
            assert_eq!(rt.container_count(), 0);
            assert_eq!(rt.created_total(), 1);
            assert_eq!(rt.removed_total(), 1);
        });
    }

    #[test]
    fn create_requires_cached_image() {
        let sim = Sim::new();
        sim.block_on(async {
            let (rt, image) = setup();
            let err = rt
                .create(&image, ResourceLimits::default())
                .await
                .unwrap_err();
            assert!(matches!(err, ContainerError::ImageNotFound(_)));
        });
    }

    #[test]
    fn ensure_image_pull_then_cached() {
        let sim = Sim::new();
        sim.block_on(async {
            let (rt, image) = setup();
            let d1 = rt.ensure_image(&image).await.unwrap();
            assert!(d1 > SimDuration::ZERO);
            let d2 = rt.ensure_image(&image).await.unwrap();
            assert_eq!(d2, SimDuration::ZERO);
        });
    }

    #[test]
    fn exec_requires_running() {
        let sim = Sim::new();
        sim.block_on(async {
            let (rt, image) = setup();
            rt.ensure_image(&image).await.unwrap();
            let id = rt.create(&image, ResourceLimits::default()).await.unwrap();
            let err = rt
                .exec(id, Workload::synthetic(secs(1.0)))
                .await
                .unwrap_err();
            assert!(matches!(
                err,
                ContainerError::InvalidState { op: "exec", .. }
            ));
        });
    }

    #[test]
    fn crash_drops_a_running_container_instantly() {
        let sim = Sim::new();
        sim.block_on(async {
            let (rt, image) = setup();
            rt.ensure_image(&image).await.unwrap();
            let id = rt.create(&image, ResourceLimits::default()).await.unwrap();
            // Crash requires a running container.
            assert!(matches!(
                rt.crash(id),
                Err(ContainerError::InvalidState { op: "crash", .. })
            ));
            rt.start(id).await.unwrap();
            let t0 = now();
            rt.crash(id).unwrap();
            assert_eq!(now(), t0, "crash must not consume virtual time");
            assert_eq!(rt.phase(id).unwrap(), ContainerPhase::Exited);
            assert_eq!(rt.crashed_total(), 1);
            // Exec against the carcass is a typed error.
            let err = rt
                .exec(id, Workload::synthetic(secs(1.0)))
                .await
                .unwrap_err();
            assert!(matches!(err, ContainerError::InvalidState { .. }));
        });
    }

    #[test]
    fn remove_running_is_rejected() {
        let sim = Sim::new();
        sim.block_on(async {
            let (rt, image) = setup();
            rt.ensure_image(&image).await.unwrap();
            let id = rt.create(&image, ResourceLimits::default()).await.unwrap();
            rt.start(id).await.unwrap();
            let err = rt.remove(id).await.unwrap_err();
            assert!(matches!(
                err,
                ContainerError::InvalidState { op: "remove", .. }
            ));
        });
    }

    #[test]
    fn container_reuse_counts_execs() {
        let sim = Sim::new();
        sim.block_on(async {
            let (rt, image) = setup();
            rt.ensure_image(&image).await.unwrap();
            let id = rt.create(&image, ResourceLimits::default()).await.unwrap();
            rt.start(id).await.unwrap();
            for _ in 0..5 {
                rt.exec(id, Workload::synthetic(secs(0.1))).await.unwrap();
            }
            assert_eq!(rt.execs_of(id).unwrap(), 5);
            assert_eq!(rt.execs_total(), 5);
            assert_eq!(rt.created_total(), 1); // reuse: one container, many tasks
        });
    }

    #[test]
    fn half_quota_stretches_compute() {
        let sim = Sim::new();
        sim.block_on(async {
            let (rt, image) = setup();
            rt.ensure_image(&image).await.unwrap();
            let id = rt
                .create(
                    &image,
                    ResourceLimits {
                        cpu_millis: 500,
                        memory: mib(128),
                    },
                )
                .await
                .unwrap();
            rt.start(id).await.unwrap();
            let r = rt.exec(id, Workload::synthetic(secs(1.0))).await.unwrap();
            assert_eq!(r.busy, secs(2.0));
        });
    }

    #[test]
    fn real_computation_output_flows_through() {
        let sim = Sim::new();
        sim.block_on(async {
            let (rt, image) = setup();
            rt.ensure_image(&image).await.unwrap();
            let id = rt.create(&image, ResourceLimits::default()).await.unwrap();
            rt.start(id).await.unwrap();
            let w = Workload::new(secs(0.1), || Ok(Bytes::from(vec![1u8, 2, 3])));
            let r = rt.exec(id, w).await.unwrap();
            assert_eq!(&r.output[..], &[1, 2, 3]);
            let failing = Workload::new(secs(0.1), || Err("boom".into()));
            let err = rt.exec(id, failing).await.unwrap_err();
            assert_eq!(err, ContainerError::TaskFailed("boom".into()));
        });
    }

    #[test]
    fn memory_limit_enforced_on_create() {
        let sim = Sim::new();
        sim.block_on(async {
            let node = Node::new(
                NodeId(0),
                NodeSpec {
                    cores: 1,
                    memory: mib(256),
                },
            );
            let registry = Registry::new(RegistryConfig::default());
            let image = ImageRef::parse("m");
            registry.push(Image::single_layer(image.clone(), 1, mib(1)));
            let rt = ContainerRuntime::new(node, registry, OverheadModel::zero(), 1);
            rt.ensure_image(&image).await.unwrap();
            let _a = rt
                .create(
                    &image,
                    ResourceLimits {
                        cpu_millis: 1000,
                        memory: mib(200),
                    },
                )
                .await
                .unwrap();
            let err = rt
                .create(
                    &image,
                    ResourceLimits {
                        cpu_millis: 1000,
                        memory: mib(100),
                    },
                )
                .await
                .unwrap_err();
            assert!(matches!(err, ContainerError::OutOfMemory(_)));
        });
    }

    #[test]
    fn cores_contend_across_containers() {
        let sim = Sim::new();
        sim.block_on(async {
            let (rt, image) = setup(); // 2 cores
            rt.ensure_image(&image).await.unwrap();
            let mut ids = Vec::new();
            for _ in 0..3 {
                let id = rt
                    .create(
                        &image,
                        ResourceLimits {
                            cpu_millis: 1000,
                            memory: mib(64),
                        },
                    )
                    .await
                    .unwrap();
                rt.start(id).await.unwrap();
                ids.push(id);
            }
            let t0 = now();
            let handles: Vec<_> = ids
                .iter()
                .map(|&id| {
                    let rt = rt.clone();
                    swf_simcore::spawn(async move {
                        rt.exec(id, Workload::synthetic(secs(1.0))).await.unwrap()
                    })
                })
                .collect();
            let results = swf_simcore::join_all(handles).await;
            assert_eq!(now() - t0, secs(2.0)); // 3 tasks, 2 cores
            assert_eq!(
                results
                    .iter()
                    .filter(|r| r.core_wait > SimDuration::ZERO)
                    .count(),
                1
            );
        });
    }

    #[test]
    fn zero_time_ops_work() {
        let sim = Sim::new();
        let _ = SimTime::ZERO;
        sim.block_on(async {
            let node = Node::new(NodeId(0), NodeSpec::default());
            let registry = Registry::new(RegistryConfig::default());
            let image = ImageRef::parse("z");
            registry.push(Image::single_layer(image.clone(), 2, 0));
            let rt = ContainerRuntime::new(node, registry, OverheadModel::zero(), 1);
            rt.ensure_image(&image).await.unwrap();
            let id = rt.create(&image, ResourceLimits::default()).await.unwrap();
            rt.start(id).await.unwrap();
            let r = rt
                .exec(id, Workload::synthetic(SimDuration::ZERO))
                .await
                .unwrap();
            assert_eq!(r.busy, SimDuration::ZERO);
        });
    }
}
