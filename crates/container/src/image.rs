//! Container images and layers.
//!
//! Images are content-addressed stacks of layers; layer-level granularity
//! matters because a node that already holds an image's base layers only
//! pulls the delta — the mechanism behind Knative's fast re-provisioning.

use std::fmt;

use swf_cluster::mib;

/// Identifier of a layer (content digest in real registries).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct LayerId(pub u64);

/// One image layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layer {
    /// Content digest.
    pub id: LayerId,
    /// Compressed size in bytes (what a pull moves).
    pub size: u64,
}

/// An image reference, e.g. `dockerhub.io/hpc/matmul:1.0`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ImageRef {
    /// Repository name.
    pub name: String,
    /// Tag.
    pub tag: String,
}

impl ImageRef {
    /// Build a reference from `name` and `tag`.
    pub fn new(name: impl Into<String>, tag: impl Into<String>) -> Self {
        ImageRef {
            name: name.into(),
            tag: tag.into(),
        }
    }

    /// Parse `name[:tag]`, defaulting the tag to `latest`.
    pub fn parse(s: &str) -> Self {
        match s.split_once(':') {
            Some((n, t)) => ImageRef::new(n, t),
            None => ImageRef::new(s, "latest"),
        }
    }
}

impl fmt::Display for ImageRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.name, self.tag)
    }
}

/// A complete image manifest.
#[derive(Clone, Debug)]
pub struct Image {
    /// The reference this manifest is published under.
    pub reference: ImageRef,
    /// Layer stack, base first.
    pub layers: Vec<Layer>,
}

impl Image {
    /// Total compressed size.
    pub fn total_size(&self) -> u64 {
        self.layers.iter().map(|l| l.size).sum()
    }

    /// A typical Python-scientific-stack image like the paper's matmul
    /// container: a base OS layer, a Python+NumPy layer and a thin app
    /// layer. `seed` decorrelates layer digests between distinct images.
    pub fn python_scientific(reference: ImageRef, seed: u64) -> Self {
        Image {
            reference,
            layers: vec![
                Layer {
                    id: LayerId(0xBA5E_0000_0000 | (seed & 0xFF)),
                    size: mib(80),
                },
                Layer {
                    id: LayerId(0x9A7A_0000_0000 | (seed & 0xFF)),
                    size: mib(350),
                },
                Layer {
                    id: LayerId(0xA4B0_0000_0000 + seed),
                    size: mib(20),
                },
            ],
        }
    }

    /// A minimal image with one layer of `size` bytes.
    pub fn single_layer(reference: ImageRef, id: u64, size: u64) -> Self {
        Image {
            reference,
            layers: vec![Layer {
                id: LayerId(id),
                size,
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_with_and_without_tag() {
        assert_eq!(
            ImageRef::parse("hpc/matmul:1.2"),
            ImageRef::new("hpc/matmul", "1.2")
        );
        assert_eq!(
            ImageRef::parse("busybox"),
            ImageRef::new("busybox", "latest")
        );
        assert_eq!(format!("{}", ImageRef::parse("a:b")), "a:b");
    }

    #[test]
    fn scientific_image_size() {
        let img = Image::python_scientific(ImageRef::parse("m"), 1);
        assert_eq!(img.total_size(), mib(450));
        assert_eq!(img.layers.len(), 3);
    }

    #[test]
    fn shared_base_layers_across_seeds() {
        let a = Image::python_scientific(ImageRef::parse("a"), 1);
        let b = Image::python_scientific(ImageRef::parse("b"), 1);
        // Same seed byte → same base/python layers, app layer may match too.
        assert_eq!(a.layers[0].id, b.layers[0].id);
        let c = Image::python_scientific(ImageRef::parse("c"), 0x100 + 1);
        // Different app layer digest.
        assert_ne!(a.layers[2].id, c.layers[2].id);
    }
}
