//! Calibrated container lifecycle overheads.
//!
//! The defaults are derived from the paper's Figure 1: at 160 sequential
//! tasks Docker totals ≈ 100 s against Knative's ≈ 78 s with per-task
//! compute ≈ 0.46 s, which puts the full Docker per-task lifecycle
//! (create + start + app boot + stop + remove) at ≈ 0.17 s beyond compute,
//! and the one-off Knative cold start at 1.48 s (stated directly in §III-B).

use swf_simcore::{DetRng, SimDuration};

/// Fixed lifecycle costs with optional multiplicative jitter.
#[derive(Clone, Copy, Debug)]
pub struct OverheadModel {
    /// `create`: namespace/cgroup/rootfs snapshot setup.
    pub create: SimDuration,
    /// `start`: runtime exec and application boot (interpreter, imports).
    pub start: SimDuration,
    /// `stop`: SIGTERM, grace, teardown of the process tree.
    pub stop: SimDuration,
    /// `remove`: rootfs + metadata cleanup.
    pub remove: SimDuration,
    /// Coefficient of variation of lognormal jitter (0 = deterministic).
    pub jitter_cv: f64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            create: SimDuration::from_millis(45),
            start: SimDuration::from_millis(80),
            stop: SimDuration::from_millis(25),
            remove: SimDuration::from_millis(17),
            jitter_cv: 0.0,
        }
    }
}

impl OverheadModel {
    /// A deterministic model with every phase set to `d`.
    pub fn uniform(d: SimDuration) -> Self {
        OverheadModel {
            create: d,
            start: d,
            stop: d,
            remove: d,
            jitter_cv: 0.0,
        }
    }

    /// Zero overhead (for isolating other effects in tests/ablations).
    pub fn zero() -> Self {
        OverheadModel::uniform(SimDuration::ZERO)
    }

    /// Total fixed cost of one full lifecycle.
    pub fn lifecycle_total(&self) -> SimDuration {
        self.create + self.start + self.stop + self.remove
    }

    /// Sample a phase duration with jitter.
    pub fn sample(&self, base: SimDuration, rng: &mut DetRng) -> SimDuration {
        if self.jitter_cv <= 0.0 || base.is_zero() {
            return base;
        }
        SimDuration::from_secs_f64(rng.lognormal(base.as_secs_f64(), self.jitter_cv))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_simcore::secs;

    #[test]
    fn default_lifecycle_matches_fig1_calibration() {
        let m = OverheadModel::default();
        let total = m.lifecycle_total().as_secs_f64();
        assert!((total - 0.167).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn zero_model() {
        assert_eq!(OverheadModel::zero().lifecycle_total(), SimDuration::ZERO);
    }

    #[test]
    fn deterministic_sampling_without_jitter() {
        let m = OverheadModel::default();
        let mut rng = DetRng::new(1, "t");
        assert_eq!(m.sample(secs(1.0), &mut rng), secs(1.0));
    }

    #[test]
    fn jittered_sampling_varies_but_centers() {
        let m = OverheadModel {
            jitter_cv: 0.2,
            ..OverheadModel::default()
        };
        let mut rng = DetRng::new(1, "t");
        let n = 5000;
        let sum: f64 = (0..n)
            .map(|_| m.sample(secs(0.1), &mut rng).as_secs_f64())
            .sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.1).abs() < 0.01, "mean {mean}");
    }
}
