//! Cgroup-style resource limits.
//!
//! The paper motivates containers with cgroup-based *performance isolation*:
//! a container's CPU quota bounds how much core time its task receives, so
//! co-located workloads cannot starve it (and it cannot starve others).
//! The model charges a task `compute × 1000 / min(quota, 1000)` of core
//! time — a sub-core quota stretches single-threaded work proportionally.

use swf_simcore::SimDuration;

/// Resource limits attached to a container.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResourceLimits {
    /// CPU quota in millicores (1000 = one full core).
    pub cpu_millis: u32,
    /// Memory limit in bytes.
    pub memory: u64,
}

impl Default for ResourceLimits {
    fn default() -> Self {
        ResourceLimits {
            cpu_millis: 1000,
            memory: swf_cluster::mib(512),
        }
    }
}

impl ResourceLimits {
    /// One full core with `memory_mib` MiB.
    pub fn one_core(memory_mib: u64) -> Self {
        ResourceLimits {
            cpu_millis: 1000,
            memory: swf_cluster::mib(memory_mib),
        }
    }

    /// Stretch single-threaded compute time for this quota. Quotas above
    /// 1000m do not shrink single-threaded work.
    pub fn scale_compute(&self, compute: SimDuration) -> SimDuration {
        if self.cpu_millis >= 1000 || self.cpu_millis == 0 {
            return compute;
        }
        compute.mul_f64(1000.0 / f64::from(self.cpu_millis))
    }

    /// Number of whole cores this limit can occupy at once (≥ 1 core slot is
    /// always claimed while running so quota enforcement is conservative).
    pub fn core_slots(&self) -> usize {
        usize::max(1, (self.cpu_millis / 1000) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_simcore::secs;

    #[test]
    fn full_core_is_identity() {
        let l = ResourceLimits::one_core(256);
        assert_eq!(l.scale_compute(secs(2.0)), secs(2.0));
        assert_eq!(l.core_slots(), 1);
    }

    #[test]
    fn half_core_doubles_time() {
        let l = ResourceLimits {
            cpu_millis: 500,
            memory: 0,
        };
        assert_eq!(l.scale_compute(secs(2.0)), secs(4.0));
    }

    #[test]
    fn multi_core_quota_claims_slots_but_does_not_shrink() {
        let l = ResourceLimits {
            cpu_millis: 2500,
            memory: 0,
        };
        assert_eq!(l.scale_compute(secs(2.0)), secs(2.0));
        assert_eq!(l.core_slots(), 2);
    }

    #[test]
    fn zero_quota_treated_as_unlimited() {
        let l = ResourceLimits {
            cpu_millis: 0,
            memory: 0,
        };
        assert_eq!(l.scale_compute(secs(1.0)), secs(1.0));
        assert_eq!(l.core_slots(), 1);
    }
}
