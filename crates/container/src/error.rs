//! Container runtime errors.

use std::fmt;

/// Errors from the container substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    /// Image (or manifest) not present in the registry.
    ImageNotFound(String),
    /// Container id not known to this runtime.
    NoSuchContainer(u64),
    /// Operation invalid in the container's current state.
    InvalidState {
        /// Container id.
        id: u64,
        /// State the container is in.
        state: &'static str,
        /// Operation that was attempted.
        op: &'static str,
    },
    /// Node memory exhausted while creating the container.
    OutOfMemory(String),
    /// The containerized task itself failed.
    TaskFailed(String),
    /// The registry refused the pull (fault-injected outage).
    RegistryUnavailable(String),
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::ImageNotFound(r) => write!(f, "image not found: {r}"),
            ContainerError::NoSuchContainer(id) => write!(f, "no such container: {id}"),
            ContainerError::InvalidState { id, state, op } => {
                write!(f, "container {id} is {state}; cannot {op}")
            }
            ContainerError::OutOfMemory(m) => write!(f, "out of memory: {m}"),
            ContainerError::TaskFailed(m) => write!(f, "task failed: {m}"),
            ContainerError::RegistryUnavailable(m) => write!(f, "registry unavailable: {m}"),
        }
    }
}

impl std::error::Error for ContainerError {}

impl From<swf_cluster::ClusterError> for ContainerError {
    fn from(e: swf_cluster::ClusterError) -> Self {
        match e {
            swf_cluster::ClusterError::OutOfMemory {
                node,
                requested,
                available,
            } => ContainerError::OutOfMemory(format!(
                "{node}: requested {requested}B, available {available}B"
            )),
            other => ContainerError::TaskFailed(other.to_string()),
        }
    }
}
