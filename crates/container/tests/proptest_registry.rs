//! Property tests for the registry and container runtime: byte
//! conservation, cache monotonicity, and lifecycle accounting under
//! arbitrary pull/run sequences.

use proptest::prelude::*;

use swf_cluster::{mib, Node, NodeId, NodeSpec};
use swf_container::{
    ContainerRuntime, DockerCli, Image, ImageRef, OverheadModel, PullPolicy, Registry,
    RegistryConfig, ResourceLimits, Workload,
};
use swf_simcore::{secs, Sim};

fn registry_with_images(n_images: usize) -> (Registry, Vec<ImageRef>) {
    let registry = Registry::new(RegistryConfig::default());
    let refs: Vec<ImageRef> = (0..n_images)
        .map(|i| {
            let r = ImageRef::parse(&format!("img{i}"));
            registry.push(Image::python_scientific(r.clone(), i as u64));
            r
        })
        .collect();
    (registry, refs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Bytes served by the registry equal the sum of bytes pulled across
    /// all pulls, and re-pulling a cached image transfers nothing.
    #[test]
    fn registry_conserves_bytes(
        pulls in proptest::collection::vec((0usize..3, 0usize..4), 1..20),
    ) {
        let sim = Sim::new();
        sim.block_on(async move {
            let (registry, refs) = registry_with_images(3);
            let mut total = 0u64;
            for (img, node) in pulls {
                let stats = registry
                    .pull(NodeId(node), &refs[img])
                    .await
                    .expect("image exists");
                total += stats.bytes_pulled;
                // After a pull the image is always fully cached there.
                prop_assert!(registry.is_cached(NodeId(node), &refs[img]));
                // Immediate re-pull is free.
                let again = registry.pull(NodeId(node), &refs[img]).await.unwrap();
                prop_assert_eq!(again.bytes_pulled, 0);
                prop_assert_eq!(again.layers_pulled, 0);
            }
            prop_assert_eq!(registry.bytes_served(), total);
            Ok(())
        })?;
    }

    /// A node never stores more unique layer bytes than the distinct
    /// layers of all images (dedup works), and eviction restores pull cost.
    #[test]
    fn evict_then_pull_is_never_cheaper_than_cached(
        seq in proptest::collection::vec(0usize..3, 1..10),
    ) {
        let sim = Sim::new();
        sim.block_on(async move {
            let (registry, refs) = registry_with_images(3);
            let node = NodeId(1);
            for &i in &seq {
                registry.pull(node, &refs[i]).await.unwrap();
            }
            for &i in &seq {
                prop_assert!(registry.is_cached(node, &refs[i]));
            }
            // Evict one image: a fresh pull must transfer at least its
            // unshared layer bytes (> 0 for distinct-seed app layers).
            registry.evict(node, &refs[seq[0]]);
            prop_assert!(!registry.is_cached(node, &refs[seq[0]]));
            let stats = registry.pull(node, &refs[seq[0]]).await.unwrap();
            prop_assert!(stats.bytes_pulled > 0);
            Ok(())
        })?;
    }

    /// Arbitrary docker-run sequences leave the runtime clean: zero live
    /// containers, created == removed, and full node memory restored.
    #[test]
    fn docker_runs_always_clean_up(
        runs in proptest::collection::vec(1u64..400, 1..12),
    ) {
        let sim = Sim::new();
        sim.block_on(async move {
            let node = Node::new(NodeId(2), NodeSpec::default());
            let registry = Registry::new(RegistryConfig::default());
            let image = ImageRef::parse("m");
            registry.push(Image::single_layer(image.clone(), 9, mib(64)));
            let runtime =
                ContainerRuntime::new(node.clone(), registry, OverheadModel::default(), 3);
            let cli = DockerCli::new(runtime.clone());
            for ms in runs.iter().copied() {
                cli.run(
                    &image,
                    ResourceLimits::one_core(128),
                    Workload::synthetic(secs(ms as f64 / 1000.0)),
                    PullPolicy::IfNotPresent,
                )
                .await
                .unwrap();
            }
            prop_assert_eq!(runtime.container_count(), 0);
            prop_assert_eq!(runtime.created_total(), runs.len() as u64);
            prop_assert_eq!(runtime.removed_total(), runs.len() as u64);
            prop_assert_eq!(runtime.execs_total(), runs.len() as u64);
            prop_assert_eq!(node.memory().used(), 0);
            Ok(())
        })?;
    }

    /// Total docker-run time is at least lifecycle + compute for every
    /// task, and exactly that when runs are sequential and cached.
    #[test]
    fn docker_run_time_lower_bound(n in 1usize..8, compute_ms in 1u64..300) {
        let sim = Sim::new();
        sim.block_on(async move {
            let node = Node::new(NodeId(0), NodeSpec::default());
            let registry = Registry::new(RegistryConfig::default());
            let image = ImageRef::parse("m");
            registry.push(Image::single_layer(image.clone(), 4, mib(16)));
            let runtime = ContainerRuntime::new(node, registry, OverheadModel::default(), 1);
            runtime.ensure_image(&image).await.unwrap();
            let cli = DockerCli::new(runtime);
            let t0 = swf_simcore::now();
            for _ in 0..n {
                cli.run(
                    &image,
                    ResourceLimits::one_core(64),
                    Workload::synthetic(swf_simcore::SimDuration::from_millis(compute_ms)),
                    PullPolicy::Never,
                )
                .await
                .unwrap();
            }
            let elapsed = (swf_simcore::now() - t0).as_secs_f64();
            let expected = n as f64
                * (OverheadModel::default().lifecycle_total().as_secs_f64()
                    + compute_ms as f64 / 1000.0);
            prop_assert!((elapsed - expected).abs() < 1e-9, "{elapsed} vs {expected}");
            Ok(())
        })?;
    }
}
