//! The injector: replays a [`FaultPlan`] against a booted stack, strictly
//! through public fault hooks, recording every injection in swf-obs.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use swf_cluster::{Cluster, LinkQuality, NodeId};
use swf_condor::Condor;
use swf_container::Registry;
use swf_core::TestBed;
use swf_k8s::K8s;
use swf_knative::Revision;
use swf_simcore::{now, sleep, DetRng, SimDuration, SimTime};

use crate::plan::{FaultKind, FaultPlan};

/// Cloneable handles to every subsystem the injector can fault. Extracted
/// from a [`TestBed`] so the injector can run as a spawned task.
#[derive(Clone)]
pub struct Stack {
    /// The cluster fabric (partitions, link degradation).
    pub cluster: Cluster,
    /// The image registry (outages).
    pub registry: Registry,
    /// The HTCondor pool (crashes, drains).
    pub condor: Condor,
    /// The Kubernetes control plane (node failures, pod kills).
    pub k8s: K8s,
}

impl Stack {
    /// Borrow the handles out of a booted testbed.
    pub fn of(bed: &TestBed) -> Stack {
        Stack {
            cluster: bed.cluster.clone(),
            registry: bed.registry.clone(),
            condor: bed.condor.clone(),
            k8s: bed.k8s.clone(),
        }
    }
}

struct DisruptorState {
    flaky_until: SimTime,
    fail_chance: f64,
    slow_until: SimTime,
    slow_factor: f64,
    rng: DetRng,
    injected_failures: u64,
}

/// The task-level fault hook: workload closures consult it so flaky/slow
/// windows reach task executions that no infrastructure hook can touch.
/// Inert until the injector opens a window — outside windows it draws
/// nothing from its RNG and scales nothing, so calm runs are unchanged.
#[derive(Clone)]
pub struct Disruptor {
    state: Rc<RefCell<DisruptorState>>,
}

impl Disruptor {
    /// A disruptor with its own seeded coin-flip stream.
    pub fn new(seed: u64) -> Disruptor {
        Disruptor {
            state: Rc::new(RefCell::new(DisruptorState {
                flaky_until: SimTime::ZERO,
                fail_chance: 0.0,
                slow_until: SimTime::ZERO,
                slow_factor: 1.0,
                rng: DetRng::new(seed, "chaos-disruptor"),
                injected_failures: 0,
            })),
        }
    }

    /// Should this task execution fail? Flips the seeded coin only inside
    /// an open flaky window.
    pub fn should_fail(&self) -> bool {
        let mut s = self.state.borrow_mut();
        if now() >= s.flaky_until {
            return false;
        }
        let p = s.fail_chance;
        let fail = s.rng.chance(p);
        if fail {
            s.injected_failures += 1;
            swf_obs::current().counter_add("chaos.task_failures", 1);
        }
        fail
    }

    /// Stretch a task's compute time when a slow window is open.
    pub fn scale_compute(&self, d: SimDuration) -> SimDuration {
        let s = self.state.borrow();
        if now() < s.slow_until {
            d.mul_f64(s.slow_factor.max(1.0))
        } else {
            d
        }
    }

    /// Task failures injected so far.
    pub fn injected_failures(&self) -> u64 {
        self.state.borrow().injected_failures
    }

    fn open_flaky(&self, window: SimDuration, fail_chance: f64) {
        let mut s = self.state.borrow_mut();
        s.flaky_until = now() + window;
        s.fail_chance = fail_chance.clamp(0.0, 1.0);
    }

    fn open_slow(&self, window: SimDuration, factor: f64) {
        let mut s = self.state.borrow_mut();
        s.slow_until = now() + window;
        s.slow_factor = factor;
    }
}

/// Replays a [`FaultPlan`] against a [`Stack`] on the virtual clock.
pub struct Injector {
    plan: FaultPlan,
}

impl Injector {
    /// An injector for `plan` (events are applied in time order).
    pub fn new(mut plan: FaultPlan) -> Injector {
        plan.normalize();
        Injector { plan }
    }

    /// The plan this injector replays.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Apply every event at its scheduled offset from now. Each injection
    /// is recorded as a `chaos/injector` span and bumps both the global
    /// `chaos.injected` counter and a per-class `chaos.<kind>` counter.
    /// Paired start/end faults additionally observe the outage duration as
    /// `chaos.outage_s.<class>` when the end event lands, so goodput
    /// reports can relate salvage to how long each disruption lasted.
    /// Returns the number of injections applied.
    pub async fn run(self, stack: Stack, disruptor: Option<Disruptor>) -> u64 {
        let obs = swf_obs::current();
        let start = now();
        let mut injected = 0u64;
        let mut open: BTreeMap<String, SimTime> = BTreeMap::new();
        for ev in &self.plan.events {
            let due = start + ev.at;
            let t = now();
            if due > t {
                sleep(due - t).await;
            }
            let label = ev.kind.label();
            let _span = obs.span(
                swf_obs::SpanContext::NONE,
                "chaos/injector",
                format!("inject:{label}"),
                swf_obs::Category::Other,
            );
            Self::apply(&ev.kind, &stack, disruptor.as_ref()).await;
            Self::track_outage(&ev.kind, &mut open, &obs);
            obs.counter_add("chaos.injected", 1);
            // tidy: allow(metric-unknown) — per-kind counter; the name set is the
            // closed FaultKind::label() list, not free-form runtime input
            obs.counter_add(&format!("chaos.{label}"), 1);
            injected += 1;
        }
        injected
    }

    /// Match paired start/end events and observe the elapsed outage. An
    /// end without a recorded start (plan truncation) is ignored. A
    /// [`FaultKind::NodeRecover`] closes either a spot revocation or a
    /// plain crash of its node, whichever opened first — the observed
    /// class is the one recorded at the start event.
    fn track_outage(kind: &FaultKind, open: &mut BTreeMap<String, SimTime>, obs: &swf_obs::Obs) {
        let close = |open: &mut BTreeMap<String, SimTime>, key: String, class: &str| {
            if let Some(opened) = open.remove(&key) {
                // tidy: allow(metric-unknown) — per-class histogram; `class` is
                // the closed outage-class set below, not free-form runtime input
                obs.observe(
                    &format!("chaos.outage_s.{class}"),
                    (now() - opened).as_secs_f64(),
                );
                true
            } else {
                false
            }
        };
        match kind {
            FaultKind::NodeCrash { node } => {
                open.insert(format!("node-crash/{node}"), now());
            }
            FaultKind::SpotRevoke { node, .. } => {
                open.insert(format!("spot/{node}"), now());
            }
            FaultKind::NodeRecover { node } => {
                // A recovery ends whichever outage took this node down.
                let was_spot = close(open, format!("spot/{node}"), "spot");
                if !was_spot {
                    close(open, format!("node-crash/{node}"), "node-crash");
                }
            }
            FaultKind::CondorDrain { node } => {
                open.insert(format!("drain/{node}"), now());
            }
            FaultKind::CondorResume { node } => {
                close(open, format!("drain/{node}"), "drain");
            }
            FaultKind::Partition { a, b } => {
                open.insert(format!("partition/{a}-{b}"), now());
            }
            FaultKind::Heal { a, b } => {
                close(open, format!("partition/{a}-{b}"), "partition");
            }
            FaultKind::DegradeLink { a, b, .. } => {
                open.insert(format!("degrade/{a}-{b}"), now());
            }
            FaultKind::RestoreLink { a, b } => {
                close(open, format!("degrade/{a}-{b}"), "degrade");
            }
            FaultKind::RegistryOutageStart => {
                open.insert("registry-outage".to_string(), now());
            }
            FaultKind::RegistryOutageEnd => {
                close(open, "registry-outage".to_string(), "registry-outage");
            }
            _ => {}
        }
    }

    async fn apply(kind: &FaultKind, stack: &Stack, disruptor: Option<&Disruptor>) {
        match kind {
            FaultKind::NodeCrash { node } => {
                stack.condor.fail_node(NodeId(*node));
                stack.k8s.fail_node(NodeId(*node));
            }
            FaultKind::NodeRecover { node } => {
                stack.k8s.recover_node(NodeId(*node));
                stack.condor.recover_node(NodeId(*node));
            }
            FaultKind::CondorDrain { node } => {
                stack.condor.drain_node(NodeId(*node));
            }
            FaultKind::CondorResume { node } => {
                stack.condor.undrain_node(NodeId(*node));
            }
            FaultKind::PodKill { service } => {
                // Kill the first (name-ordered) pod of the service's active
                // revision; the ReplicaSet controller replaces it.
                let rev = format!("{service}-00001");
                let victim = stack
                    .k8s
                    .api()
                    .pods()
                    .filter(|p| p.meta.labels.get(Revision::pod_label()) == Some(&rev))
                    .into_iter()
                    .map(|p| p.meta.name)
                    .next();
                if let Some(name) = victim {
                    let _ = stack.k8s.api().delete_pod(&name).await;
                }
            }
            FaultKind::Partition { a, b } => {
                stack.cluster.network().partition(NodeId(*a), NodeId(*b));
            }
            FaultKind::Heal { a, b } => {
                stack.cluster.network().heal(NodeId(*a), NodeId(*b));
            }
            FaultKind::DegradeLink {
                a,
                b,
                latency_factor,
                bandwidth_factor,
            } => {
                stack.cluster.network().degrade_link(
                    NodeId(*a),
                    NodeId(*b),
                    LinkQuality {
                        latency_factor: *latency_factor,
                        bandwidth_factor: *bandwidth_factor,
                    },
                );
            }
            FaultKind::RestoreLink { a, b } => {
                stack.cluster.network().restore_link(NodeId(*a), NodeId(*b));
            }
            FaultKind::RegistryOutageStart => {
                stack.registry.set_outage(true);
            }
            FaultKind::RegistryOutageEnd => {
                stack.registry.set_outage(false);
            }
            FaultKind::FlakyTasks {
                window,
                fail_chance,
            } => {
                if let Some(d) = disruptor {
                    d.open_flaky(*window, *fail_chance);
                }
            }
            FaultKind::SlowTasks { window, factor } => {
                if let Some(d) = disruptor {
                    d.open_slow(*window, *factor);
                }
            }
            FaultKind::SpotRevoke { node, grace } => {
                // Revocation notice. Graceful drain starts immediately: the
                // startd stops matching (running jobs may finish inside the
                // grace window) and the k8s node goes unready so the node
                // controller evicts its pods and the endpoints controller
                // drops them from the revision router. A grace-expiry task
                // then hard-fails the node unless the provider returned it
                // early — that fallback is the ordinary crash path, so
                // claim-epoch requeue and rescue-resume remain the safety
                // net for whatever the drain could not finish in time.
                let id = NodeId(*node);
                stack.condor.drain_node(id);
                stack.k8s.fail_node(id);
                let grace = *grace;
                let stack = stack.clone();
                swf_simcore::spawn(async move {
                    sleep(grace).await;
                    if stack.k8s.node_is_ready(id) {
                        // Revocation was rescinded before the grace ran
                        // out; the node was never lost.
                        stack.condor.undrain_node(id);
                        return;
                    }
                    let idle = stack
                        .condor
                        .startds()
                        .iter()
                        .find(|s| s.node().id() == id)
                        .map(|s| s.free_slots() == s.total_slots())
                        .unwrap_or(true);
                    let obs = swf_obs::current();
                    if idle {
                        obs.counter_add("chaos.spot_graceful_exits", 1);
                    } else {
                        obs.counter_add("chaos.spot_forced_kills", 1);
                    }
                    stack.condor.fail_node(id);
                    // Clear the drain flag so the eventual NodeRecover
                    // restores the node to full service.
                    stack.condor.undrain_node(id);
                });
            }
            FaultKind::ContainerCrash { service } => {
                // Crash the backing container of the first (name-ordered)
                // running pod of the service's active revision. The pod
                // object stays; only a liveness probe brings it back.
                let rev = format!("{service}-00001");
                let victim = stack
                    .k8s
                    .api()
                    .pods()
                    .filter(|p| {
                        p.meta.labels.get(Revision::pod_label()) == Some(&rev)
                            && p.status.container.is_some()
                    })
                    .into_iter()
                    .next();
                if let Some(pod) = victim {
                    if let (Some(node), Some(container)) = (pod.status.node, pod.status.container) {
                        if let Some(rt) = stack.k8s.runtime(node) {
                            let _ = rt.crash(container);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_core::config::ExperimentConfig;
    use swf_simcore::{secs, Sim};

    #[test]
    fn explicit_plan_drives_every_hook_and_recovers() {
        let sim = Sim::new();
        sim.block_on(async {
            let bed = TestBed::boot(&ExperimentConfig::quick());
            let mut plan = FaultPlan::calm();
            plan.push(secs(1.0), FaultKind::NodeCrash { node: 2 });
            plan.push(secs(1.0), FaultKind::Partition { a: 0, b: 1 });
            plan.push(secs(1.0), FaultKind::RegistryOutageStart);
            plan.push(secs(1.0), FaultKind::CondorDrain { node: 3 });
            plan.push(secs(2.0), FaultKind::NodeRecover { node: 2 });
            plan.push(secs(2.0), FaultKind::Heal { a: 0, b: 1 });
            plan.push(secs(2.0), FaultKind::RegistryOutageEnd);
            plan.push(secs(2.0), FaultKind::CondorResume { node: 3 });
            let stack = Stack::of(&bed);
            let handle = swf_simcore::spawn(Injector::new(plan).run(stack.clone(), None));
            swf_simcore::sleep(secs(1.5)).await;
            assert!(stack.condor.node_is_failed(NodeId(2)));
            assert!(!stack.k8s.node_is_ready(NodeId(2)));
            assert!(stack.cluster.network().is_partitioned(NodeId(0), NodeId(1)));
            assert!(stack.registry.is_under_outage());
            let injected = handle.await;
            assert_eq!(injected, 8);
            assert!(!stack.condor.node_is_failed(NodeId(2)));
            assert!(stack.k8s.node_is_ready(NodeId(2)));
            assert!(!stack.cluster.network().is_partitioned(NodeId(0), NodeId(1)));
            assert!(!stack.registry.is_under_outage());
        });
    }

    #[test]
    fn spot_revocation_drains_gracefully_then_falls_back_to_the_crash_path() {
        let sim = Sim::new();
        sim.block_on(async {
            let bed = TestBed::boot(&ExperimentConfig::quick());
            let mut plan = FaultPlan::calm();
            plan.push(
                secs(1.0),
                FaultKind::SpotRevoke {
                    node: 2,
                    grace: secs(5.0),
                },
            );
            plan.push(secs(20.0), FaultKind::NodeRecover { node: 2 });
            let stack = Stack::of(&bed);
            let handle = swf_simcore::spawn(Injector::new(plan).run(stack.clone(), None));
            swf_simcore::sleep(secs(2.0)).await;
            // Inside the grace window: draining and evicted, but not crashed.
            let draining = |s: &Stack| {
                s.condor
                    .startds()
                    .iter()
                    .find(|d| d.node().id() == NodeId(2))
                    .map(|d| d.is_draining())
                    .unwrap()
            };
            assert!(draining(&stack), "notice must drain the startd");
            assert!(!stack.condor.node_is_failed(NodeId(2)));
            assert!(!stack.k8s.node_is_ready(NodeId(2)), "pods must be evicted");
            swf_simcore::sleep(secs(6.0)).await;
            // Grace expired: the crash path took over.
            assert!(stack.condor.node_is_failed(NodeId(2)));
            assert!(!draining(&stack), "drain flag cleared for recovery");
            let injected = handle.await;
            assert_eq!(injected, 2);
            assert!(!stack.condor.node_is_failed(NodeId(2)));
            assert!(stack.k8s.node_is_ready(NodeId(2)));
        });
    }

    #[test]
    fn rescinded_revocation_never_crashes_the_node() {
        let sim = Sim::new();
        sim.block_on(async {
            let bed = TestBed::boot(&ExperimentConfig::quick());
            let mut plan = FaultPlan::calm();
            plan.push(
                secs(1.0),
                FaultKind::SpotRevoke {
                    node: 3,
                    grace: secs(10.0),
                },
            );
            // The provider hands the capacity back before grace expires.
            plan.push(secs(4.0), FaultKind::NodeRecover { node: 3 });
            let stack = Stack::of(&bed);
            let handle = swf_simcore::spawn(Injector::new(plan).run(stack.clone(), None));
            handle.await;
            swf_simcore::sleep(secs(15.0)).await;
            assert!(!stack.condor.node_is_failed(NodeId(3)));
            assert!(stack.k8s.node_is_ready(NodeId(3)));
            let startd = stack
                .condor
                .startds()
                .iter()
                .find(|d| d.node().id() == NodeId(3))
                .unwrap();
            assert!(!startd.is_draining(), "rescind must undrain");
        });
    }

    #[test]
    fn disruptor_windows_open_and_close_on_the_virtual_clock() {
        let sim = Sim::new();
        sim.block_on(async {
            let d = Disruptor::new(9);
            // Closed: no failures, no scaling, no RNG draws.
            assert!(!d.should_fail());
            assert_eq!(d.scale_compute(secs(1.0)), secs(1.0));
            d.open_flaky(secs(5.0), 1.0);
            d.open_slow(secs(5.0), 3.0);
            assert!(d.should_fail(), "chance 1.0 inside the window");
            assert_eq!(d.scale_compute(secs(1.0)), secs(3.0));
            swf_simcore::sleep(secs(6.0)).await;
            assert!(!d.should_fail(), "window expired");
            assert_eq!(d.scale_compute(secs(1.0)), secs(1.0));
            assert_eq!(d.injected_failures(), 1);
        });
    }
}
