//! Fault plans: typed, virtual-time-ordered schedules of injections.
//!
//! A [`FaultPlan`] is the unit of reproducibility in chaos testing: it can
//! be authored explicitly, sampled from a [`ChaosProfile`] by seed, printed
//! as JSON when a seed-sweep invariant fails, and parsed back to replay the
//! exact failing run. All f64 parameters are serialized twice — once as a
//! readable number and once as their IEEE-754 bit pattern — so a plan that
//! round-trips through JSON replays bit-identically.

use serde_json::{Map, Value};
use swf_simcore::{DetRng, SimDuration};

use crate::profile::ChaosProfile;

/// One injectable fault (or its paired recovery).
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// Crash a worker: HTCondor reclaims its jobs, Kubernetes loses its
    /// kubelet and pods.
    NodeCrash {
        /// The node to crash.
        node: usize,
    },
    /// Bring a crashed worker back.
    NodeRecover {
        /// The node to recover.
        node: usize,
    },
    /// `condor_drain`: running jobs finish, no new matches land there.
    CondorDrain {
        /// The node to drain.
        node: usize,
    },
    /// Resume matching on a drained worker.
    CondorResume {
        /// The node to resume.
        node: usize,
    },
    /// Delete one ready pod of a Knative service (first in name order).
    PodKill {
        /// The KService whose pod dies.
        service: String,
    },
    /// Cut the link between two nodes; transfers fail with a typed error.
    Partition {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// Heal a partitioned link.
    Heal {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// Degrade a link's quality (latency multiplied, bandwidth divided).
    DegradeLink {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
        /// Propagation-latency multiplier (≥ 1 slows the link).
        latency_factor: f64,
        /// Bandwidth divisor (≥ 1 slows the link).
        bandwidth_factor: f64,
    },
    /// Restore a degraded link to nominal quality.
    RestoreLink {
        /// One endpoint.
        a: usize,
        /// The other endpoint.
        b: usize,
    },
    /// The image registry starts refusing pulls.
    RegistryOutageStart,
    /// The registry outage ends.
    RegistryOutageEnd,
    /// For `window`, task executions flip a seeded coin and fail with a
    /// typed error with probability `fail_chance` (DAGMan retries them).
    FlakyTasks {
        /// How long the flaky window lasts.
        window: SimDuration,
        /// Per-execution failure probability in `[0, 1]`.
        fail_chance: f64,
    },
    /// For `window`, task compute is stretched by `factor` (stragglers).
    SlowTasks {
        /// How long the slow window lasts.
        window: SimDuration,
        /// Compute-time multiplier (≥ 1 slows tasks).
        factor: f64,
    },
    /// Crash the backing container of one running pod of a Knative
    /// service (first in name order), leaving the pod object alive — the
    /// fault a liveness probe detects and heals in place.
    ContainerCrash {
        /// The KService whose container crashes.
        service: String,
    },
    /// A spot (preemptible) node is reclaimed: the typed revocation
    /// notice grants `grace` before the hard kill. At notice the node is
    /// drained gracefully (condor stops matching, running jobs may
    /// finish; its pods are evicted and leave the revision router); when
    /// the grace window expires without recovery the node is crashed
    /// through the same path as [`FaultKind::NodeCrash`], so claim
    /// epochs requeue whatever was still in flight. Paired with
    /// [`FaultKind::NodeRecover`] when capacity returns.
    SpotRevoke {
        /// The spot node being reclaimed.
        node: usize,
        /// Notice-to-kill grace window.
        grace: SimDuration,
    },
}

impl FaultKind {
    /// Stable kebab-case tag used in JSON, span labels and counters.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::NodeCrash { .. } => "node-crash",
            FaultKind::NodeRecover { .. } => "node-recover",
            FaultKind::CondorDrain { .. } => "condor-drain",
            FaultKind::CondorResume { .. } => "condor-resume",
            FaultKind::PodKill { .. } => "pod-kill",
            FaultKind::Partition { .. } => "partition",
            FaultKind::Heal { .. } => "heal",
            FaultKind::DegradeLink { .. } => "degrade-link",
            FaultKind::RestoreLink { .. } => "restore-link",
            FaultKind::RegistryOutageStart => "registry-outage-start",
            FaultKind::RegistryOutageEnd => "registry-outage-end",
            FaultKind::FlakyTasks { .. } => "flaky-tasks",
            FaultKind::SlowTasks { .. } => "slow-tasks",
            FaultKind::ContainerCrash { .. } => "container-crash",
            FaultKind::SpotRevoke { .. } => "spot-revoke",
        }
    }
}

/// A fault scheduled at an offset from the start of injection.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultEvent {
    /// When to inject, relative to `Injector::run` starting.
    pub at: SimDuration,
    /// What to inject.
    pub kind: FaultKind,
}

/// A reproducible schedule of fault events, ordered by virtual time.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultPlan {
    /// The seed the plan was sampled from (0 for hand-authored plans);
    /// carried for provenance in printed plans.
    pub seed: u64,
    /// The events, sorted by `at` (ties keep insertion order).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty (calm) plan.
    pub fn calm() -> FaultPlan {
        FaultPlan::default()
    }

    /// Append an event, keeping the plan sorted by time.
    pub fn push(&mut self, at: SimDuration, kind: FaultKind) {
        self.events.push(FaultEvent { at, kind });
        self.normalize();
    }

    /// Stable-sort events by injection time.
    pub fn normalize(&mut self) {
        self.events.sort_by_key(|e| e.at);
    }

    /// True when events are in non-decreasing time order.
    pub fn is_ordered(&self) -> bool {
        self.events.windows(2).all(|w| w[0].at <= w[1].at)
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are scheduled (a calm plan).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Sample a plan from a profile. Every fault class draws from its own
    /// named [`DetRng`] stream, so enabling one class never perturbs the
    /// schedule of another. Disruptions of the same class never overlap:
    /// the next window starts after the previous one ends. `submit` is the
    /// submit node (partitions and degradations cut submit↔worker links,
    /// the paths jobs and invocations actually cross), `workers` the
    /// crashable nodes, `services` the pod-kill targets.
    pub fn sample(
        profile: &ChaosProfile,
        seed: u64,
        horizon: SimDuration,
        submit: usize,
        workers: &[usize],
        services: &[String],
    ) -> FaultPlan {
        let h = horizon.as_secs_f64();
        let mut plan = FaultPlan {
            seed,
            events: Vec::new(),
        };

        if !workers.is_empty() {
            let mut rng = DetRng::new(seed, "chaos-node-crash");
            for (t, w) in windows(
                &mut rng,
                profile.node_crash_interval,
                profile.node_outage,
                h,
            ) {
                let node = workers[rng.index(workers.len())];
                push_pair(
                    &mut plan,
                    t,
                    w,
                    FaultKind::NodeCrash { node },
                    FaultKind::NodeRecover { node },
                );
            }

            let mut rng = DetRng::new(seed, "chaos-drain");
            for (t, w) in windows(&mut rng, profile.drain_interval, profile.drain_window, h) {
                let node = workers[rng.index(workers.len())];
                push_pair(
                    &mut plan,
                    t,
                    w,
                    FaultKind::CondorDrain { node },
                    FaultKind::CondorResume { node },
                );
            }

            let mut rng = DetRng::new(seed, "chaos-partition");
            for (t, w) in windows(
                &mut rng,
                profile.partition_interval,
                profile.partition_window,
                h,
            ) {
                let b = workers[rng.index(workers.len())];
                push_pair(
                    &mut plan,
                    t,
                    w,
                    FaultKind::Partition { a: submit, b },
                    FaultKind::Heal { a: submit, b },
                );
            }

            let mut rng = DetRng::new(seed, "chaos-degrade");
            for (t, w) in windows(
                &mut rng,
                profile.degrade_interval,
                profile.degrade_window,
                h,
            ) {
                let b = workers[rng.index(workers.len())];
                push_pair(
                    &mut plan,
                    t,
                    w,
                    FaultKind::DegradeLink {
                        a: submit,
                        b,
                        latency_factor: profile.degrade_latency_factor,
                        bandwidth_factor: profile.degrade_bandwidth_factor,
                    },
                    FaultKind::RestoreLink { a: submit, b },
                );
            }

            sample_spot_class(&mut plan, profile, seed, h, workers);
        }

        if !services.is_empty() {
            let mut rng = DetRng::new(seed, "chaos-pod-kill");
            for (t, _) in windows(&mut rng, profile.pod_kill_interval, 1.0, h) {
                let service = services[rng.index(services.len())].clone();
                plan.events.push(FaultEvent {
                    at: SimDuration::from_secs_f64(t),
                    kind: FaultKind::PodKill { service },
                });
            }

            let mut rng = DetRng::new(seed, "chaos-container-crash");
            for (t, _) in windows(&mut rng, profile.container_crash_interval, 1.0, h) {
                let service = services[rng.index(services.len())].clone();
                plan.events.push(FaultEvent {
                    at: SimDuration::from_secs_f64(t),
                    kind: FaultKind::ContainerCrash { service },
                });
            }
        }

        let mut rng = DetRng::new(seed, "chaos-registry");
        for (t, w) in windows(
            &mut rng,
            profile.registry_outage_interval,
            profile.registry_outage_window,
            h,
        ) {
            push_pair(
                &mut plan,
                t,
                w,
                FaultKind::RegistryOutageStart,
                FaultKind::RegistryOutageEnd,
            );
        }

        let mut rng = DetRng::new(seed, "chaos-flaky");
        for (t, w) in windows(&mut rng, profile.flaky_interval, profile.flaky_window, h) {
            plan.events.push(FaultEvent {
                at: SimDuration::from_secs_f64(t),
                kind: FaultKind::FlakyTasks {
                    window: SimDuration::from_secs_f64(w),
                    fail_chance: profile.flaky_fail_chance,
                },
            });
        }

        let mut rng = DetRng::new(seed, "chaos-slow");
        for (t, w) in windows(&mut rng, profile.slow_interval, profile.slow_window, h) {
            plan.events.push(FaultEvent {
                at: SimDuration::from_secs_f64(t),
                kind: FaultKind::SlowTasks {
                    window: SimDuration::from_secs_f64(w),
                    factor: profile.slow_factor,
                },
            });
        }

        plan.normalize();
        plan
    }

    /// Sample only the spot-revocation class over an explicit pool of
    /// preemptible nodes. Draws from the same `"chaos-spot"` stream as
    /// [`FaultPlan::sample`], so an elastic harness that samples its
    /// non-spot classes over all workers and its revocations over the
    /// spot pool gets the same per-class independence guarantee. Merge
    /// the result into a base plan with [`FaultPlan::merge`].
    pub fn sample_spots(
        profile: &ChaosProfile,
        seed: u64,
        horizon: SimDuration,
        spot_nodes: &[usize],
    ) -> FaultPlan {
        let mut plan = FaultPlan {
            seed,
            events: Vec::new(),
        };
        if !spot_nodes.is_empty() {
            sample_spot_class(&mut plan, profile, seed, horizon.as_secs_f64(), spot_nodes);
        }
        plan.normalize();
        plan
    }

    /// Fold another plan's events into this one, keeping time order.
    /// The receiver's seed is retained for provenance.
    pub fn merge(&mut self, other: FaultPlan) {
        self.events.extend(other.events);
        self.normalize();
    }

    /// Serialize to a JSON tree. Durations are carried as exact nanosecond
    /// integers and every f64 parameter also carries its bit pattern, so
    /// `from_json(to_json(p)) == p` bit-for-bit.
    pub fn to_json(&self) -> Value {
        let mut root = Map::new();
        root.insert("seed", Value::from(self.seed));
        let events: Vec<Value> = self
            .events
            .iter()
            .map(|e| {
                let mut m = Map::new();
                m.insert("at_ns", Value::from(e.at.as_nanos()));
                m.insert("kind", Value::from(e.kind.label()));
                match &e.kind {
                    FaultKind::NodeCrash { node }
                    | FaultKind::NodeRecover { node }
                    | FaultKind::CondorDrain { node }
                    | FaultKind::CondorResume { node } => {
                        m.insert("node", Value::from(*node));
                    }
                    FaultKind::PodKill { service } => {
                        m.insert("service", Value::from(service.clone()));
                    }
                    FaultKind::Partition { a, b }
                    | FaultKind::Heal { a, b }
                    | FaultKind::RestoreLink { a, b } => {
                        m.insert("a", Value::from(*a));
                        m.insert("b", Value::from(*b));
                    }
                    FaultKind::DegradeLink {
                        a,
                        b,
                        latency_factor,
                        bandwidth_factor,
                    } => {
                        m.insert("a", Value::from(*a));
                        m.insert("b", Value::from(*b));
                        put_f64(&mut m, "latency_factor", *latency_factor);
                        put_f64(&mut m, "bandwidth_factor", *bandwidth_factor);
                    }
                    FaultKind::RegistryOutageStart | FaultKind::RegistryOutageEnd => {}
                    FaultKind::FlakyTasks {
                        window,
                        fail_chance,
                    } => {
                        m.insert("window_ns", Value::from(window.as_nanos()));
                        put_f64(&mut m, "fail_chance", *fail_chance);
                    }
                    FaultKind::SlowTasks { window, factor } => {
                        m.insert("window_ns", Value::from(window.as_nanos()));
                        put_f64(&mut m, "factor", *factor);
                    }
                    FaultKind::ContainerCrash { service } => {
                        m.insert("service", Value::from(service.clone()));
                    }
                    FaultKind::SpotRevoke { node, grace } => {
                        m.insert("node", Value::from(*node));
                        m.insert("grace_ns", Value::from(grace.as_nanos()));
                    }
                }
                Value::Object(m)
            })
            .collect();
        root.insert("events", Value::Array(events));
        Value::Object(root)
    }

    /// Parse a plan back from [`FaultPlan::to_json`] output.
    pub fn from_json(v: &Value) -> Result<FaultPlan, String> {
        let seed = get_u64(v, "seed")?;
        let events = v
            .get("events")
            .and_then(|e| e.as_array())
            .ok_or_else(|| "fault plan: missing events array".to_string())?;
        let mut plan = FaultPlan {
            seed,
            events: Vec::with_capacity(events.len()),
        };
        for ev in events {
            let at = SimDuration::from_nanos(get_u64(ev, "at_ns")?);
            let kind = ev
                .get("kind")
                .and_then(|k| k.as_str())
                .ok_or_else(|| "fault event: missing kind".to_string())?;
            let kind = match kind {
                "node-crash" => FaultKind::NodeCrash {
                    node: get_usize(ev, "node")?,
                },
                "node-recover" => FaultKind::NodeRecover {
                    node: get_usize(ev, "node")?,
                },
                "condor-drain" => FaultKind::CondorDrain {
                    node: get_usize(ev, "node")?,
                },
                "condor-resume" => FaultKind::CondorResume {
                    node: get_usize(ev, "node")?,
                },
                "pod-kill" => FaultKind::PodKill {
                    service: ev
                        .get("service")
                        .and_then(|s| s.as_str())
                        .ok_or_else(|| "pod-kill: missing service".to_string())?
                        .to_string(),
                },
                "partition" => FaultKind::Partition {
                    a: get_usize(ev, "a")?,
                    b: get_usize(ev, "b")?,
                },
                "heal" => FaultKind::Heal {
                    a: get_usize(ev, "a")?,
                    b: get_usize(ev, "b")?,
                },
                "degrade-link" => FaultKind::DegradeLink {
                    a: get_usize(ev, "a")?,
                    b: get_usize(ev, "b")?,
                    latency_factor: get_f64(ev, "latency_factor")?,
                    bandwidth_factor: get_f64(ev, "bandwidth_factor")?,
                },
                "restore-link" => FaultKind::RestoreLink {
                    a: get_usize(ev, "a")?,
                    b: get_usize(ev, "b")?,
                },
                "registry-outage-start" => FaultKind::RegistryOutageStart,
                "registry-outage-end" => FaultKind::RegistryOutageEnd,
                "flaky-tasks" => FaultKind::FlakyTasks {
                    window: SimDuration::from_nanos(get_u64(ev, "window_ns")?),
                    fail_chance: get_f64(ev, "fail_chance")?,
                },
                "slow-tasks" => FaultKind::SlowTasks {
                    window: SimDuration::from_nanos(get_u64(ev, "window_ns")?),
                    factor: get_f64(ev, "factor")?,
                },
                "container-crash" => FaultKind::ContainerCrash {
                    service: ev
                        .get("service")
                        .and_then(|s| s.as_str())
                        .ok_or_else(|| "container-crash: missing service".to_string())?
                        .to_string(),
                },
                "spot-revoke" => FaultKind::SpotRevoke {
                    node: get_usize(ev, "node")?,
                    grace: SimDuration::from_nanos(get_u64(ev, "grace_ns")?),
                },
                other => return Err(format!("fault event: unknown kind {other:?}")),
            };
            plan.events.push(FaultEvent { at, kind });
        }
        Ok(plan)
    }

    /// Parse a plan from its JSON text (the printed form).
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let v = serde_json::from_str(text).map_err(|e| format!("fault plan: {e}"))?;
        FaultPlan::from_json(&v)
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_json())
    }
}

/// Non-overlapping (start, length) windows in seconds: exponential gaps of
/// mean `interval` between windows of mean length `window_mean`, within
/// `[0, horizon)`. An `interval` of zero disables the class entirely (and
/// draws nothing, so disabled classes cost no randomness).
fn windows(rng: &mut DetRng, interval: f64, window_mean: f64, horizon: f64) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    if interval <= 0.0 {
        return out;
    }
    let mut t = rng.exponential(interval);
    while t < horizon {
        let w = rng.exponential(window_mean.max(0.1)).max(0.25);
        out.push((t, w));
        t += w + rng.exponential(interval);
    }
    out
}

/// Sample the spot-revocation class into `plan`: each revocation delivers
/// a [`FaultKind::SpotRevoke`] notice at `t` and returns capacity via
/// [`FaultKind::NodeRecover`] after the grace window plus the sampled
/// outage. Its own named stream keeps it independent of every other class.
fn sample_spot_class(
    plan: &mut FaultPlan,
    profile: &ChaosProfile,
    seed: u64,
    h: f64,
    nodes: &[usize],
) {
    let mut rng = DetRng::new(seed, "chaos-spot");
    let grace = profile.spot_grace.max(0.0);
    for (t, w) in windows(
        &mut rng,
        profile.spot_revoke_interval,
        profile.spot_outage,
        h,
    ) {
        let node = nodes[rng.index(nodes.len())];
        plan.events.push(FaultEvent {
            at: SimDuration::from_secs_f64(t),
            kind: FaultKind::SpotRevoke {
                node,
                grace: SimDuration::from_secs_f64(grace),
            },
        });
        plan.events.push(FaultEvent {
            at: SimDuration::from_secs_f64(t + grace + w),
            kind: FaultKind::NodeRecover { node },
        });
    }
}

fn push_pair(plan: &mut FaultPlan, t: f64, window: f64, start: FaultKind, end: FaultKind) {
    plan.events.push(FaultEvent {
        at: SimDuration::from_secs_f64(t),
        kind: start,
    });
    plan.events.push(FaultEvent {
        at: SimDuration::from_secs_f64(t + window),
        kind: end,
    });
}

fn put_f64(m: &mut Map, name: &str, v: f64) {
    m.insert(name, Value::from(v));
    m.insert(format!("{name}_bits"), Value::from(v.to_bits()));
}

fn get_u64(v: &Value, name: &str) -> Result<u64, String> {
    v.get(name)
        .and_then(|x| x.as_u64())
        .ok_or_else(|| format!("fault plan: missing integer field {name:?}"))
}

fn get_usize(v: &Value, name: &str) -> Result<usize, String> {
    Ok(get_u64(v, name)? as usize)
}

/// Read an f64 field, preferring the exact `<name>_bits` encoding.
fn get_f64(v: &Value, name: &str) -> Result<f64, String> {
    if let Some(bits) = v.get(&format!("{name}_bits")).and_then(|x| x.as_u64()) {
        return Ok(f64::from_bits(bits));
    }
    v.get(name)
        .and_then(|x| x.as_f64())
        .ok_or_else(|| format!("fault plan: missing float field {name:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_simcore::secs;

    fn sample_heavy(seed: u64) -> FaultPlan {
        FaultPlan::sample(
            &ChaosProfile::heavy(),
            seed,
            secs(300.0),
            0,
            &[1, 2, 3],
            &["chaos-fn".to_string()],
        )
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = sample_heavy(7);
        let b = sample_heavy(7);
        let c = sample_heavy(8);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should draw different plans");
        assert!(!a.is_empty());
        assert!(a.is_ordered());
    }

    #[test]
    fn json_round_trip_is_bit_exact() {
        let mut plan = sample_heavy(42);
        // Include an irrational factor that a decimal rendering would lose.
        plan.push(
            secs(1.0),
            FaultKind::DegradeLink {
                a: 0,
                b: 2,
                latency_factor: std::f64::consts::PI,
                bandwidth_factor: 1.0 / 3.0,
            },
        );
        let text = plan.to_string();
        let back = FaultPlan::parse(&text).unwrap();
        assert_eq!(plan, back);
        // Spot-check bit-exactness of the irrational factor.
        let degraded = back.events.iter().find_map(|e| match &e.kind {
            FaultKind::DegradeLink { latency_factor, .. } if e.at == secs(1.0) => {
                Some(*latency_factor)
            }
            _ => None,
        });
        assert_eq!(
            degraded.map(f64::to_bits),
            Some(std::f64::consts::PI.to_bits())
        );
    }

    #[test]
    fn calm_profile_samples_an_empty_plan() {
        let plan = FaultPlan::sample(
            &ChaosProfile::calm(),
            1,
            secs(1000.0),
            0,
            &[1, 2, 3],
            &["chaos-fn".to_string()],
        );
        assert!(plan.is_empty());
    }

    #[test]
    fn spot_class_pairs_revocations_with_recoveries() {
        let plan = FaultPlan::sample(
            &ChaosProfile::spot(),
            11,
            secs(300.0),
            0,
            &[1, 2, 3],
            &["chaos-fn".to_string()],
        );
        assert!(!plan.is_empty(), "spot profile must sample revocations");
        let revokes: Vec<_> = plan
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::SpotRevoke { node, grace } => Some((e.at, node, grace)),
                _ => None,
            })
            .collect();
        let recovers = plan
            .events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::NodeRecover { .. }))
            .count();
        assert_eq!(revokes.len(), recovers, "every revocation pairs a recovery");
        for (at, node, grace) in &revokes {
            assert_eq!(*grace, secs(10.0), "spot() grants a 10 s grace window");
            // The paired recovery lands after the grace window expires.
            assert!(plan.events.iter().any(|e| {
                matches!(e.kind, FaultKind::NodeRecover { node: n } if n == *node)
                    && e.at >= *at + *grace
            }));
        }
        // Round-trips bit-exactly like every other kind.
        let back = FaultPlan::parse(&plan.to_string()).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn sample_spots_draws_only_from_the_spot_pool() {
        let spots = FaultPlan::sample_spots(&ChaosProfile::heavy_spot(), 4, secs(300.0), &[2, 3]);
        assert!(!spots.is_empty());
        for e in &spots.events {
            match e.kind {
                FaultKind::SpotRevoke { node, .. } | FaultKind::NodeRecover { node } => {
                    assert!(
                        node == 2 || node == 3,
                        "node {node} is not in the spot pool"
                    );
                }
                ref other => panic!("unexpected kind in spot-only plan: {other:?}"),
            }
        }
        // Merging keeps time order and the base plan's seed.
        let mut base = FaultPlan::sample(
            &ChaosProfile::heavy(),
            4,
            secs(300.0),
            0,
            &[1, 2, 3],
            &["chaos-fn".to_string()],
        );
        let base_len = base.len();
        let spot_len = spots.len();
        base.merge(spots);
        assert_eq!(base.len(), base_len + spot_len);
        assert!(base.is_ordered());
        assert_eq!(base.seed, 4);
    }

    #[test]
    fn push_keeps_order() {
        let mut plan = FaultPlan::calm();
        plan.push(secs(5.0), FaultKind::RegistryOutageEnd);
        plan.push(secs(1.0), FaultKind::RegistryOutageStart);
        assert!(plan.is_ordered());
        assert_eq!(plan.events[0].kind, FaultKind::RegistryOutageStart);
    }
}
