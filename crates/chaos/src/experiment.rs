//! The chaos experiment: concurrent workflows through the full stack under
//! a fault plan, with typed per-workflow outcomes.
//!
//! The harness is the seed-sweep counterpart of
//! `swf_core::experiments::concurrent`: it boots the same testbed, but
//! with every jitter stream zeroed (so `makespan(chaos) ≥ makespan(calm)`
//! is a structural fact, not a statistical one), with spaced retry
//! policies in DAGMan and the Knative router (so the stack rides out
//! faults instead of exhausting immediate retries), and with workflow
//! tasks wired to the [`Disruptor`] so flaky/slow windows reach them.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use bytes::Bytes;
use swf_cluster::Request;
use swf_condor::{
    run_dag, run_dag_resumable, DagRun, DagSpec, FailurePolicy, JobContext, JobSpec, RescueDag,
};
use swf_container::Workload;
use swf_core::config::ExperimentConfig;
use swf_core::TestBed;
use swf_knative::{BreakerConfig, KService};
use swf_simcore::{
    join_all, now, secs, sleep, spawn, timeout, Elapsed, RetryPolicy, Sim, SimDuration, SimTime,
};

use crate::inject::{Disruptor, Injector, Stack};
use crate::plan::FaultPlan;

/// The KService chaos workflows invoke for their serverless tasks.
pub const SERVICE: &str = "chaos-fn";

/// Shape of one chaos experiment run.
#[derive(Clone, Debug)]
pub struct ChaosRunConfig {
    /// Concurrent workflow chains.
    pub workflows: usize,
    /// Tasks per chain.
    pub tasks_per_workflow: usize,
    /// Every n-th task invokes the Knative function instead of running
    /// natively (0 = all-native).
    pub serverless_every: usize,
    /// Nominal per-task compute.
    pub task_secs: f64,
    /// DAGMan retries per node.
    pub node_retries: u32,
    /// Per-workflow liveness deadline; exceeding it is a typed failure.
    pub deadline: SimDuration,
    /// Root seed: drives the testbed, the disruptor coin flips, and the
    /// router's retry jitter.
    pub seed: u64,
    /// Run DAGs under [`FailurePolicy::ContinueOthers`] and resume every
    /// halted workflow from its rescue DAG (persisted through a JSON
    /// round-trip each round) until it completes or `max_rescue_rounds`
    /// is spent. Also arms the self-healing stack: liveness probes on
    /// function pods, the per-revision circuit breaker, and a bounded
    /// queue-proxy depth.
    pub rescue: bool,
    /// Rescue-resume rounds allowed per workflow (ignored unless
    /// `rescue` is set).
    pub max_rescue_rounds: u32,
}

impl ChaosRunConfig {
    /// The seed-sweep shape: 3 chains × 4 tasks with a serverless task in
    /// each chain — small enough that 24 slots never contend, so faults
    /// compose monotonically into the makespan.
    pub fn quick(seed: u64) -> ChaosRunConfig {
        ChaosRunConfig {
            workflows: 3,
            tasks_per_workflow: 4,
            serverless_every: 4,
            task_secs: 2.0,
            node_retries: 4,
            deadline: secs(3600.0),
            seed,
            rescue: false,
            max_rescue_rounds: 0,
        }
    }

    /// The self-healing shape: `quick` plus rescue-resume with a generous
    /// round budget, for sweeps that must complete every workflow even
    /// under the heavy profile.
    pub fn rescue(seed: u64) -> ChaosRunConfig {
        let mut c = ChaosRunConfig::quick(seed);
        c.rescue = true;
        c.max_rescue_rounds = 16;
        c
    }
}

/// How one workflow ended.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkflowOutcome {
    /// Every node ran to success.
    Completed {
        /// Submission-to-last-node makespan.
        makespan: SimDuration,
    },
    /// The workflow surfaced a typed error (DAG node exhausted its
    /// retries, or the liveness deadline elapsed).
    Failed {
        /// The error, stringified.
        error: String,
    },
}

/// Goodput accounting for a rescue-resume run: how much completed work
/// the rescue DAGs carried across rounds versus how much compute failed
/// attempts threw away. All zeros when rescue mode is off.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GoodputReport {
    /// Task-seconds of completed work injected from rescue DAGs instead
    /// of being re-executed (summed over every resume round).
    pub salvaged_task_s: f64,
    /// Task-seconds burned by failed attempts across all rounds.
    pub wasted_task_s: f64,
    /// Resume rounds spent across all workflows.
    pub rescue_rounds: u64,
    /// Node results carried over from rescue DAGs (summed over rounds).
    pub nodes_salvaged: u64,
    /// Workflows that needed at least one rescue round.
    pub workflows_rescued: u64,
    /// Mean virtual-time gap between a workflow's first halt and its
    /// eventual completion, over rescued workflows that completed.
    pub mean_recovery_s: f64,
    /// Completed nodes whose execution counter moved after they were
    /// recorded done in a rescue DAG. The sweep invariant requires zero.
    pub reexecuted_nodes: u64,
    /// Salvaged node outputs that did not compare bit-identical to the
    /// final report's results. The sweep invariant requires zero.
    pub output_mismatches: u64,
}

/// Everything a seed-sweep invariant needs from one run.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// The plan that was injected.
    pub plan: FaultPlan,
    /// Per-workflow outcomes, in workflow order.
    pub outcomes: Vec<WorkflowOutcome>,
    /// Start-to-settle time of the whole batch (last workflow outcome).
    pub makespan: SimDuration,
    /// Injections applied by the injector.
    pub injected: u64,
    /// Task failures the disruptor injected inside flaky windows.
    pub task_failures: u64,
    /// Per-node registry byte ledger (node id, bytes pulled to it).
    pub registry_ledger: Vec<(usize, u64)>,
    /// Total bytes the registry served (ledger conservation partner).
    pub registry_bytes_served: u64,
    /// Pulls refused during registry outages.
    pub registry_failed_pulls: u64,
    /// Virtual instant the workflow batch started (after harness setup).
    pub started_at: SimTime,
    /// Virtual instant the last workflow outcome settled. Billing spans
    /// `[started_at, settled_at]`; `makespan` is their difference.
    pub settled_at: SimTime,
    /// Full metrics registry snapshot (fault counters live here).
    pub metrics: swf_obs::MetricsSnapshot,
    /// Goodput accounting (all zeros unless the run used rescue mode).
    pub goodput: GoodputReport,
    /// Final rescue DAGs (workflow name, JSON text) of workflows that
    /// still failed after the round budget — the artifacts CI uploads.
    pub rescue_dags: Vec<(String, String)>,
}

impl ChaosOutcome {
    /// Did every workflow complete successfully?
    pub fn all_completed(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| matches!(o, WorkflowOutcome::Completed { .. }))
    }

    /// Number of completed workflows.
    pub fn completed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, WorkflowOutcome::Completed { .. }))
            .count()
    }

    /// An order-sensitive FNV-1a digest of the run's observable timing:
    /// two runs of the same seed must fingerprint identically, bit for
    /// bit. Folds the batch makespan and every per-workflow outcome.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.makespan.as_nanos());
        for o in &self.outcomes {
            match o {
                WorkflowOutcome::Completed { makespan } => {
                    eat(1);
                    eat(makespan.as_secs_f64().to_bits());
                }
                WorkflowOutcome::Failed { error } => {
                    eat(2);
                    eat(error.len() as u64);
                }
            }
        }
        eat(self.injected);
        eat(self.task_failures);
        eat(self.goodput.rescue_rounds);
        eat(self.goodput.nodes_salvaged);
        h
    }
}

/// The calm experiment configuration chaos runs perturb: `quick()` with
/// every jitter stream zeroed and spaced (but deterministic) retry
/// policies, so a run under an empty plan is the bitwise baseline for the
/// monotonicity invariant.
pub fn experiment_config(seed: u64) -> ExperimentConfig {
    let mut c = ExperimentConfig::quick();
    c.seed = seed;
    c.condor.negotiator.seed = seed;
    c.condor.negotiator.cycle_jitter_cv = 0.0;
    c.condor.negotiator.activation_jitter_cv = 0.0;
    c.condor.negotiator.activation_delay = SimDuration::ZERO;
    c.dagman.poll_jitter_cv = 0.0;
    c.dagman.retry = RetryPolicy::exponential(4, secs(1.0), secs(8.0));
    c.overheads.jitter_cv = 0.0;
    c.k8s.overheads.jitter_cv = 0.0;
    c.knative.invoke_retry = RetryPolicy::exponential(12, secs(0.25), secs(4.0));
    c.knative.attempt_timeout = Some(secs(30.0));
    c.knative.seed = seed;
    c
}

/// Run one chaos experiment: boot the stack, spawn the injector, run
/// `cfg.workflows` concurrent chains, and collect typed outcomes. Returns
/// `Err` only on harness setup failure (e.g. the function never became
/// ready); workflow failures are data, not errors.
pub fn run_chaos(cfg: &ChaosRunConfig, plan: &FaultPlan) -> Result<ChaosOutcome, String> {
    run_chaos_with(cfg, plan, |_| {})
}

/// [`run_chaos`] with a setup hook that runs inside the simulation right
/// after the testbed boots, before the service registers and workflows
/// start. Elastic infrastructure (autoscalers, cost ledgers) attaches
/// here; `run_chaos` itself passes a no-op, so runs without a hook are
/// bit-identical to runs before the hook existed.
pub fn run_chaos_with(
    cfg: &ChaosRunConfig,
    plan: &FaultPlan,
    setup: impl FnOnce(&TestBed) + 'static,
) -> Result<ChaosOutcome, String> {
    let sim = Sim::new();
    let cfg = cfg.clone();
    let plan = plan.clone();
    sim.block_on(async move {
        // Reuse an ambient enabled collector (so a tracing CLI run sees the
        // injector's spans); otherwise install a private enabled one so the
        // outcome's metrics snapshot is always populated.
        let ambient = swf_obs::current();
        let (obs, _obs_guard) = if ambient.is_enabled() {
            (ambient, None)
        } else {
            let o = swf_obs::Obs::enabled();
            let g = swf_obs::install(o.clone());
            (o, Some(g))
        };
        let mut config = experiment_config(cfg.seed);
        if cfg.rescue {
            // Arm the self-healing stack: continue-others DAGs, liveness
            // probes on function pods, the per-revision circuit breaker,
            // and a bounded queue-proxy depth with typed overload 503s.
            config.dagman.on_failure = FailurePolicy::ContinueOthers;
            config.knative.pod_probe = Some(swf_k8s::ProbeSpec {
                period: secs(1.0),
                unready_threshold: 1,
                failure_threshold: 2,
            });
            config.knative.breaker = BreakerConfig::enabled(5, secs(8.0));
            config.knative.data_plane.queue_depth = 8;
        }
        let bed = TestBed::boot(&config);
        setup(&bed);
        let disruptor = Disruptor::new(cfg.seed);

        if cfg.serverless_every > 0 {
            let task = SimDuration::from_secs_f64(cfg.task_secs);
            let d = disruptor.clone();
            bed.knative.register_fn(
                KService::new(SERVICE, bed.image.clone()).with_min_scale(1),
                move |req| {
                    let body = req.body.clone();
                    let dur = d.scale_compute(task);
                    Workload::new(dur, move || Ok(body))
                },
            );
            bed.knative
                .wait_ready(SERVICE, 1, secs(3600.0))
                .await
                .map_err(|e| format!("chaos harness: {SERVICE} never became ready: {e}"))?;
        }

        let t0 = now();
        let injector = Injector::new(plan.clone());
        let inj_handle = spawn(injector.run(Stack::of(&bed), Some(disruptor.clone())));

        let mut handles = Vec::new();
        for w in 0..cfg.workflows {
            // Per-node execution counters: every job closure bumps its
            // node's entry, so the sweep can prove salvaged nodes never
            // re-execute after a resume.
            let execs: Rc<RefCell<BTreeMap<String, u64>>> = Rc::new(RefCell::new(BTreeMap::new()));
            let dag = build_chain(&cfg, w, &bed, &disruptor, &execs)?;
            let condor = bed.condor.clone();
            let dagman = config.dagman;
            let deadline = cfg.deadline;
            let rescue_mode = cfg.rescue;
            let max_rounds = cfg.max_rescue_rounds;
            // Deterministic stagger stands in for the zeroed phase jitter.
            let stagger = SimDuration::from_secs_f64(0.25 * w as f64);
            handles.push(spawn(async move {
                sleep(stagger).await;
                let run = if rescue_mode {
                    timeout(
                        deadline,
                        run_workflow_rescued(condor, dag, dagman, max_rounds, execs),
                    )
                    .await
                } else {
                    timeout(deadline, async {
                        match run_dag(&condor, &dag, dagman).await {
                            Ok(report) => (
                                WorkflowOutcome::Completed {
                                    makespan: report.makespan(),
                                },
                                WorkflowStats::default(),
                            ),
                            Err(e) => (
                                WorkflowOutcome::Failed {
                                    error: e.to_string(),
                                },
                                WorkflowStats::default(),
                            ),
                        }
                    })
                    .await
                };
                let (outcome, stats) = match run {
                    Ok(pair) => pair,
                    Err(Elapsed) => (
                        WorkflowOutcome::Failed {
                            error: "workflow deadline elapsed".to_string(),
                        },
                        WorkflowStats::default(),
                    ),
                };
                (outcome, now(), stats)
            }));
        }
        let settled = join_all(handles).await;
        let injected = inj_handle.await;
        let settle_at = settled.iter().map(|(_, t, _)| *t).fold(t0, SimTime::max);
        let mut goodput = GoodputReport::default();
        let mut rescue_dags = Vec::new();
        let mut recovery_sum = 0.0;
        let mut recovered = 0u64;
        let mut outcomes = Vec::new();
        for (w, (outcome, _, stats)) in settled.into_iter().enumerate() {
            goodput.salvaged_task_s += stats.salvaged_s;
            goodput.wasted_task_s += stats.wasted_s;
            goodput.rescue_rounds += stats.rounds;
            goodput.nodes_salvaged += stats.nodes_salvaged;
            goodput.reexecuted_nodes += stats.reexecuted;
            goodput.output_mismatches += stats.output_mismatches;
            if stats.rounds > 0 {
                goodput.workflows_rescued += 1;
            }
            if let Some(s) = stats.recovery_s {
                recovery_sum += s;
                recovered += 1;
            }
            if let Some(json) = stats.rescue_json {
                rescue_dags.push((format!("chaos-wf{w}"), json));
            }
            outcomes.push(outcome);
        }
        if recovered > 0 {
            goodput.mean_recovery_s = recovery_sum / recovered as f64;
        }
        Ok(ChaosOutcome {
            plan,
            outcomes,
            makespan: settle_at - t0,
            started_at: t0,
            settled_at: settle_at,
            injected,
            task_failures: disruptor.injected_failures(),
            registry_ledger: bed
                .registry
                .bytes_ledger()
                .into_iter()
                .map(|(n, b)| (n.0, b))
                .collect(),
            registry_bytes_served: bed.registry.bytes_served(),
            registry_failed_pulls: bed.registry.failed_pulls(),
            metrics: obs.metrics(),
            goodput,
            rescue_dags,
        })
    })
}

/// Per-workflow bookkeeping the rescue loop threads back to [`run_chaos`].
#[derive(Clone, Debug, Default)]
struct WorkflowStats {
    rounds: u64,
    salvaged_s: f64,
    wasted_s: f64,
    nodes_salvaged: u64,
    reexecuted: u64,
    output_mismatches: u64,
    recovery_s: Option<f64>,
    rescue_json: Option<String>,
}

/// Run one workflow to completion through rescue-resume rounds: each halt
/// persists a rescue DAG as JSON text, parses it back (the durability
/// path a real submit node would take through disk), waits out the fault,
/// and resubmits the same DAG against the parsed rescue. Completed nodes
/// are frozen the first time a rescue records them done: their execution
/// counters must never move again and their final outputs must compare
/// bit-identical to the recorded bytes.
async fn run_workflow_rescued(
    condor: swf_condor::Condor,
    dag: DagSpec,
    dagman: swf_condor::DagmanConfig,
    max_rounds: u32,
    execs: Rc<RefCell<BTreeMap<String, u64>>>,
) -> (WorkflowOutcome, WorkflowStats) {
    let mut stats = WorkflowStats::default();
    // Node name → (execution count at freeze, recorded output bytes).
    let mut frozen: BTreeMap<String, (u64, Bytes)> = BTreeMap::new();
    let mut rescue: Option<RescueDag> = None;
    let mut first_halt: Option<SimTime> = None;
    loop {
        let run = run_dag_resumable(&condor, &dag, dagman, rescue.as_ref()).await;
        {
            // No frozen node may have executed again this round.
            let counts = execs.borrow();
            for (name, (frozen_count, _)) in &frozen {
                if counts.get(name).copied().unwrap_or(0) > *frozen_count {
                    stats.reexecuted += 1;
                }
            }
        }
        match run {
            Ok(DagRun::Completed(report)) => {
                stats.wasted_s += report.wasted_compute.as_secs_f64();
                for (name, (_, recorded)) in &frozen {
                    match report.node_results.get(name) {
                        Some(r) if r.output == *recorded => {}
                        _ => stats.output_mismatches += 1,
                    }
                }
                if let Some(h) = first_halt {
                    stats.recovery_s = Some((now() - h).as_secs_f64());
                }
                return (
                    WorkflowOutcome::Completed {
                        makespan: report.makespan(),
                    },
                    stats,
                );
            }
            Ok(DagRun::Halted { rescue: r, report }) => {
                stats.wasted_s += report.wasted_compute.as_secs_f64();
                first_halt.get_or_insert(now());
                let text = r.to_json().to_string();
                if stats.rounds >= u64::from(max_rounds) {
                    stats.rescue_json = Some(text);
                    return (
                        WorkflowOutcome::Failed {
                            error: format!("rescue budget exhausted after {} rounds", stats.rounds),
                        },
                        stats,
                    );
                }
                {
                    let counts = execs.borrow();
                    for n in &r.nodes {
                        if let swf_condor::NodeOutcome::Done { result } = &n.outcome {
                            frozen.entry(n.name.clone()).or_insert_with(|| {
                                (
                                    counts.get(&n.name).copied().unwrap_or(0),
                                    result.output.clone(),
                                )
                            });
                        }
                    }
                }
                // Persist through the JSON text form and resume from the
                // parsed copy — a parse failure is a typed workflow
                // failure, never a panic.
                match RescueDag::parse(&text) {
                    Ok(back) => {
                        stats.rounds += 1;
                        stats.salvaged_s += back.salvaged_compute().as_secs_f64();
                        stats.nodes_salvaged += back.done_nodes().len() as u64;
                        rescue = Some(back);
                    }
                    Err(e) => {
                        stats.rescue_json = Some(text);
                        return (
                            WorkflowOutcome::Failed {
                                error: format!("rescue persistence: {e}"),
                            },
                            stats,
                        );
                    }
                }
                // Give the fault that halted us time to clear before the
                // resume round resubmits.
                sleep(secs(5.0)).await;
            }
            Err(e) => {
                return (
                    WorkflowOutcome::Failed {
                        error: e.to_string(),
                    },
                    stats,
                )
            }
        }
    }
}

/// One workflow: a sequential chain of `tasks_per_workflow` tasks, every
/// `serverless_every`-th one invoking the Knative function from the node
/// the wrapper job landed on, the rest computing natively. Every task
/// consults the disruptor.
fn build_chain(
    cfg: &ChaosRunConfig,
    w: usize,
    bed: &TestBed,
    disruptor: &Disruptor,
    execs: &Rc<RefCell<BTreeMap<String, u64>>>,
) -> Result<DagSpec, String> {
    let base = SimDuration::from_secs_f64(cfg.task_secs);
    let mut dag = DagSpec::named(format!("chaos-wf{w}"));
    let mut prev: Option<usize> = None;
    for t in 0..cfg.tasks_per_workflow {
        let serverless = cfg.serverless_every > 0 && (t + 1) % cfg.serverless_every == 0;
        let name = format!("wf{w}-t{t}");
        let job = if serverless {
            let kn = bed.knative.clone();
            let d = disruptor.clone();
            let execs = execs.clone();
            let name = name.clone();
            JobSpec::new(move |ctx: JobContext| {
                let kn = kn.clone();
                let d = d.clone();
                *execs.borrow_mut().entry(name.clone()).or_insert(0) += 1;
                Box::pin(async move {
                    if d.should_fail() {
                        return Err("chaos: injected task failure".to_string());
                    }
                    let from = ctx.node.id();
                    match kn
                        .invoke(from, SERVICE, Request::post("/", Bytes::from_static(b"x")))
                        .await
                    {
                        Ok(resp) if resp.is_success() => Ok(resp.body),
                        Ok(resp) => Err(format!("{SERVICE}: http {}", resp.status)),
                        Err(e) => Err(e.to_string()),
                    }
                })
            })
        } else {
            let d = disruptor.clone();
            let execs = execs.clone();
            let name = name.clone();
            JobSpec::new(move |ctx: JobContext| {
                let d = d.clone();
                *execs.borrow_mut().entry(name.clone()).or_insert(0) += 1;
                Box::pin(async move {
                    if d.should_fail() {
                        return Err("chaos: injected task failure".to_string());
                    }
                    ctx.compute(d.scale_compute(base)).await;
                    Ok(Bytes::from_static(b"ok"))
                })
            })
        };
        let idx = dag.add_node_with_retries(name, job, cfg.node_retries);
        if let Some(p) = prev {
            dag.add_edge(p, idx).map_err(|e| e.to_string())?;
        }
        prev = Some(idx);
    }
    Ok(dag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ChaosProfile;

    #[test]
    fn calm_run_completes_everything_and_replays_bitwise() {
        let cfg = ChaosRunConfig::quick(3);
        let a = run_chaos(&cfg, &FaultPlan::calm()).unwrap();
        let b = run_chaos(&cfg, &FaultPlan::calm()).unwrap();
        assert!(a.all_completed());
        assert_eq!(a.injected, 0);
        assert_eq!(a.task_failures, 0);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(
            a.makespan.as_secs_f64().to_bits(),
            b.makespan.as_secs_f64().to_bits()
        );
    }

    #[test]
    fn rescue_resume_completes_after_a_forced_node_failure() {
        use crate::plan::FaultKind;
        let cfg = ChaosRunConfig::rescue(21);
        // Let the first task of each chain finish, then make every task
        // attempt fail long enough to exhaust DAGMan's retries: the run
        // must halt, write rescues, and complete on a later resume round
        // without re-executing the salvaged first tasks.
        let mut plan = FaultPlan::calm();
        plan.push(
            secs(5.0),
            FaultKind::FlakyTasks {
                window: secs(30.0),
                fail_chance: 1.0,
            },
        );
        let out = run_chaos(&cfg, &plan).unwrap();
        assert!(
            out.all_completed(),
            "rescue-resume must complete every workflow: {:?}",
            out.outcomes
        );
        assert!(out.goodput.rescue_rounds >= 1, "must have resumed");
        assert!(out.goodput.nodes_salvaged >= 1, "must have salvaged work");
        assert!(out.goodput.salvaged_task_s > 0.0);
        assert_eq!(out.goodput.reexecuted_nodes, 0, "salvaged nodes re-ran");
        assert_eq!(out.goodput.output_mismatches, 0, "salvaged outputs drifted");
        assert!(out.goodput.mean_recovery_s > 0.0);
        assert!(out.rescue_dags.is_empty(), "no workflow exhausted rounds");
    }

    #[test]
    fn rescue_mode_is_inert_on_a_calm_run() {
        let quick = run_chaos(&ChaosRunConfig::quick(3), &FaultPlan::calm()).unwrap();
        let rescue = run_chaos(&ChaosRunConfig::rescue(3), &FaultPlan::calm()).unwrap();
        assert!(rescue.all_completed());
        assert_eq!(rescue.goodput, GoodputReport::default());
        // The armed stack (probes, breaker, queue depth) changes no calm
        // outcome: same completions, zero rescue machinery engaged.
        assert_eq!(quick.completed(), rescue.completed());
    }

    #[test]
    fn chaotic_run_is_slower_than_calm_and_conserves_registry_bytes() {
        let cfg = ChaosRunConfig::quick(5);
        let calm = run_chaos(&cfg, &FaultPlan::calm()).unwrap();
        let plan = FaultPlan::sample(
            &ChaosProfile::light(),
            5,
            secs(120.0),
            0,
            &[1, 2, 3],
            &[SERVICE.to_string()],
        );
        let chaos = run_chaos(&cfg, &plan).unwrap();
        assert!(chaos.injected > 0, "the sampled plan must inject something");
        if chaos.all_completed() {
            assert!(
                chaos.makespan >= calm.makespan,
                "faults must not speed the batch up: chaos {:?} vs calm {:?}",
                chaos.makespan,
                calm.makespan
            );
        }
        let ledger_total: u64 = chaos.registry_ledger.iter().map(|(_, b)| *b).sum();
        assert_eq!(ledger_total, chaos.registry_bytes_served);
    }
}
