//! The chaos experiment: concurrent workflows through the full stack under
//! a fault plan, with typed per-workflow outcomes.
//!
//! The harness is the seed-sweep counterpart of
//! `swf_core::experiments::concurrent`: it boots the same testbed, but
//! with every jitter stream zeroed (so `makespan(chaos) ≥ makespan(calm)`
//! is a structural fact, not a statistical one), with spaced retry
//! policies in DAGMan and the Knative router (so the stack rides out
//! faults instead of exhausting immediate retries), and with workflow
//! tasks wired to the [`Disruptor`] so flaky/slow windows reach them.

use bytes::Bytes;
use swf_cluster::Request;
use swf_condor::{run_dag, DagSpec, JobContext, JobSpec};
use swf_container::Workload;
use swf_core::config::ExperimentConfig;
use swf_core::TestBed;
use swf_knative::KService;
use swf_simcore::{
    join_all, now, secs, sleep, spawn, timeout, Elapsed, RetryPolicy, Sim, SimDuration, SimTime,
};

use crate::inject::{Disruptor, Injector, Stack};
use crate::plan::FaultPlan;

/// The KService chaos workflows invoke for their serverless tasks.
pub const SERVICE: &str = "chaos-fn";

/// Shape of one chaos experiment run.
#[derive(Clone, Debug)]
pub struct ChaosRunConfig {
    /// Concurrent workflow chains.
    pub workflows: usize,
    /// Tasks per chain.
    pub tasks_per_workflow: usize,
    /// Every n-th task invokes the Knative function instead of running
    /// natively (0 = all-native).
    pub serverless_every: usize,
    /// Nominal per-task compute.
    pub task_secs: f64,
    /// DAGMan retries per node.
    pub node_retries: u32,
    /// Per-workflow liveness deadline; exceeding it is a typed failure.
    pub deadline: SimDuration,
    /// Root seed: drives the testbed, the disruptor coin flips, and the
    /// router's retry jitter.
    pub seed: u64,
}

impl ChaosRunConfig {
    /// The seed-sweep shape: 3 chains × 4 tasks with a serverless task in
    /// each chain — small enough that 24 slots never contend, so faults
    /// compose monotonically into the makespan.
    pub fn quick(seed: u64) -> ChaosRunConfig {
        ChaosRunConfig {
            workflows: 3,
            tasks_per_workflow: 4,
            serverless_every: 4,
            task_secs: 2.0,
            node_retries: 4,
            deadline: secs(3600.0),
            seed,
        }
    }
}

/// How one workflow ended.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkflowOutcome {
    /// Every node ran to success.
    Completed {
        /// Submission-to-last-node makespan.
        makespan: SimDuration,
    },
    /// The workflow surfaced a typed error (DAG node exhausted its
    /// retries, or the liveness deadline elapsed).
    Failed {
        /// The error, stringified.
        error: String,
    },
}

/// Everything a seed-sweep invariant needs from one run.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// The plan that was injected.
    pub plan: FaultPlan,
    /// Per-workflow outcomes, in workflow order.
    pub outcomes: Vec<WorkflowOutcome>,
    /// Start-to-settle time of the whole batch (last workflow outcome).
    pub makespan: SimDuration,
    /// Injections applied by the injector.
    pub injected: u64,
    /// Task failures the disruptor injected inside flaky windows.
    pub task_failures: u64,
    /// Per-node registry byte ledger (node id, bytes pulled to it).
    pub registry_ledger: Vec<(usize, u64)>,
    /// Total bytes the registry served (ledger conservation partner).
    pub registry_bytes_served: u64,
    /// Pulls refused during registry outages.
    pub registry_failed_pulls: u64,
    /// Full metrics registry snapshot (fault counters live here).
    pub metrics: swf_obs::MetricsSnapshot,
}

impl ChaosOutcome {
    /// Did every workflow complete successfully?
    pub fn all_completed(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| matches!(o, WorkflowOutcome::Completed { .. }))
    }

    /// Number of completed workflows.
    pub fn completed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, WorkflowOutcome::Completed { .. }))
            .count()
    }

    /// An order-sensitive FNV-1a digest of the run's observable timing:
    /// two runs of the same seed must fingerprint identically, bit for
    /// bit. Folds the batch makespan and every per-workflow outcome.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |x: u64| {
            for byte in x.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.makespan.as_nanos());
        for o in &self.outcomes {
            match o {
                WorkflowOutcome::Completed { makespan } => {
                    eat(1);
                    eat(makespan.as_secs_f64().to_bits());
                }
                WorkflowOutcome::Failed { error } => {
                    eat(2);
                    eat(error.len() as u64);
                }
            }
        }
        eat(self.injected);
        eat(self.task_failures);
        h
    }
}

/// The calm experiment configuration chaos runs perturb: `quick()` with
/// every jitter stream zeroed and spaced (but deterministic) retry
/// policies, so a run under an empty plan is the bitwise baseline for the
/// monotonicity invariant.
pub fn experiment_config(seed: u64) -> ExperimentConfig {
    let mut c = ExperimentConfig::quick();
    c.seed = seed;
    c.condor.negotiator.seed = seed;
    c.condor.negotiator.cycle_jitter_cv = 0.0;
    c.condor.negotiator.activation_jitter_cv = 0.0;
    c.condor.negotiator.activation_delay = SimDuration::ZERO;
    c.dagman.poll_jitter_cv = 0.0;
    c.dagman.retry = RetryPolicy::exponential(4, secs(1.0), secs(8.0));
    c.overheads.jitter_cv = 0.0;
    c.k8s.overheads.jitter_cv = 0.0;
    c.knative.invoke_retry = RetryPolicy::exponential(12, secs(0.25), secs(4.0));
    c.knative.attempt_timeout = Some(secs(30.0));
    c.knative.seed = seed;
    c
}

/// Run one chaos experiment: boot the stack, spawn the injector, run
/// `cfg.workflows` concurrent chains, and collect typed outcomes. Returns
/// `Err` only on harness setup failure (e.g. the function never became
/// ready); workflow failures are data, not errors.
pub fn run_chaos(cfg: &ChaosRunConfig, plan: &FaultPlan) -> Result<ChaosOutcome, String> {
    let sim = Sim::new();
    let cfg = cfg.clone();
    let plan = plan.clone();
    sim.block_on(async move {
        // Reuse an ambient enabled collector (so a tracing CLI run sees the
        // injector's spans); otherwise install a private enabled one so the
        // outcome's metrics snapshot is always populated.
        let ambient = swf_obs::current();
        let (obs, _obs_guard) = if ambient.is_enabled() {
            (ambient, None)
        } else {
            let o = swf_obs::Obs::enabled();
            let g = swf_obs::install(o.clone());
            (o, Some(g))
        };
        let config = experiment_config(cfg.seed);
        let bed = TestBed::boot(&config);
        let disruptor = Disruptor::new(cfg.seed);

        if cfg.serverless_every > 0 {
            let task = SimDuration::from_secs_f64(cfg.task_secs);
            let d = disruptor.clone();
            bed.knative.register_fn(
                KService::new(SERVICE, bed.image.clone()).with_min_scale(1),
                move |req| {
                    let body = req.body.clone();
                    let dur = d.scale_compute(task);
                    Workload::new(dur, move || Ok(body))
                },
            );
            bed.knative
                .wait_ready(SERVICE, 1, secs(3600.0))
                .await
                .map_err(|e| format!("chaos harness: {SERVICE} never became ready: {e}"))?;
        }

        let t0 = now();
        let injector = Injector::new(plan.clone());
        let inj_handle = spawn(injector.run(Stack::of(&bed), Some(disruptor.clone())));

        let mut handles = Vec::new();
        for w in 0..cfg.workflows {
            let dag = build_chain(&cfg, w, &bed, &disruptor)?;
            let condor = bed.condor.clone();
            let dagman = config.dagman;
            let deadline = cfg.deadline;
            // Deterministic stagger stands in for the zeroed phase jitter.
            let stagger = SimDuration::from_secs_f64(0.25 * w as f64);
            handles.push(spawn(async move {
                sleep(stagger).await;
                let outcome = match timeout(deadline, run_dag(&condor, &dag, dagman)).await {
                    Ok(Ok(report)) => WorkflowOutcome::Completed {
                        makespan: report.makespan(),
                    },
                    Ok(Err(e)) => WorkflowOutcome::Failed {
                        error: e.to_string(),
                    },
                    Err(Elapsed) => WorkflowOutcome::Failed {
                        error: "workflow deadline elapsed".to_string(),
                    },
                };
                (outcome, now())
            }));
        }
        let settled = join_all(handles).await;
        let injected = inj_handle.await;
        let settle_at = settled.iter().map(|(_, t)| *t).fold(t0, SimTime::max);
        let outcomes: Vec<WorkflowOutcome> = settled.into_iter().map(|(o, _)| o).collect();
        Ok(ChaosOutcome {
            plan,
            outcomes,
            makespan: settle_at - t0,
            injected,
            task_failures: disruptor.injected_failures(),
            registry_ledger: bed
                .registry
                .bytes_ledger()
                .into_iter()
                .map(|(n, b)| (n.0, b))
                .collect(),
            registry_bytes_served: bed.registry.bytes_served(),
            registry_failed_pulls: bed.registry.failed_pulls(),
            metrics: obs.metrics(),
        })
    })
}

/// One workflow: a sequential chain of `tasks_per_workflow` tasks, every
/// `serverless_every`-th one invoking the Knative function from the node
/// the wrapper job landed on, the rest computing natively. Every task
/// consults the disruptor.
fn build_chain(
    cfg: &ChaosRunConfig,
    w: usize,
    bed: &TestBed,
    disruptor: &Disruptor,
) -> Result<DagSpec, String> {
    let base = SimDuration::from_secs_f64(cfg.task_secs);
    let mut dag = DagSpec::named(format!("chaos-wf{w}"));
    let mut prev: Option<usize> = None;
    for t in 0..cfg.tasks_per_workflow {
        let serverless = cfg.serverless_every > 0 && (t + 1) % cfg.serverless_every == 0;
        let job = if serverless {
            let kn = bed.knative.clone();
            let d = disruptor.clone();
            JobSpec::new(move |ctx: JobContext| {
                let kn = kn.clone();
                let d = d.clone();
                Box::pin(async move {
                    if d.should_fail() {
                        return Err("chaos: injected task failure".to_string());
                    }
                    let from = ctx.node.id();
                    match kn
                        .invoke(from, SERVICE, Request::post("/", Bytes::from_static(b"x")))
                        .await
                    {
                        Ok(resp) if resp.is_success() => Ok(resp.body),
                        Ok(resp) => Err(format!("{SERVICE}: http {}", resp.status)),
                        Err(e) => Err(e.to_string()),
                    }
                })
            })
        } else {
            let d = disruptor.clone();
            JobSpec::new(move |ctx: JobContext| {
                let d = d.clone();
                Box::pin(async move {
                    if d.should_fail() {
                        return Err("chaos: injected task failure".to_string());
                    }
                    ctx.compute(d.scale_compute(base)).await;
                    Ok(Bytes::from_static(b"ok"))
                })
            })
        };
        let idx = dag.add_node_with_retries(format!("wf{w}-t{t}"), job, cfg.node_retries);
        if let Some(p) = prev {
            dag.add_edge(p, idx).map_err(|e| e.to_string())?;
        }
        prev = Some(idx);
    }
    Ok(dag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ChaosProfile;

    #[test]
    fn calm_run_completes_everything_and_replays_bitwise() {
        let cfg = ChaosRunConfig::quick(3);
        let a = run_chaos(&cfg, &FaultPlan::calm()).unwrap();
        let b = run_chaos(&cfg, &FaultPlan::calm()).unwrap();
        assert!(a.all_completed());
        assert_eq!(a.injected, 0);
        assert_eq!(a.task_failures, 0);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(
            a.makespan.as_secs_f64().to_bits(),
            b.makespan.as_secs_f64().to_bits()
        );
    }

    #[test]
    fn chaotic_run_is_slower_than_calm_and_conserves_registry_bytes() {
        let cfg = ChaosRunConfig::quick(5);
        let calm = run_chaos(&cfg, &FaultPlan::calm()).unwrap();
        let plan = FaultPlan::sample(
            &ChaosProfile::light(),
            5,
            secs(120.0),
            0,
            &[1, 2, 3],
            &[SERVICE.to_string()],
        );
        let chaos = run_chaos(&cfg, &plan).unwrap();
        assert!(chaos.injected > 0, "the sampled plan must inject something");
        if chaos.all_completed() {
            assert!(
                chaos.makespan >= calm.makespan,
                "faults must not speed the batch up: chaos {:?} vs calm {:?}",
                chaos.makespan,
                calm.makespan
            );
        }
        let ledger_total: u64 = chaos.registry_ledger.iter().map(|(_, b)| *b).sum();
        assert_eq!(ledger_total, chaos.registry_bytes_served);
    }
}
