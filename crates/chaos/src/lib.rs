//! swf-chaos: deterministic fault injection for the simulated stack.
//!
//! Chaos testing in this workspace is fully reproducible: every fault is a
//! typed event on the virtual clock, every random choice flows through a
//! seeded [`swf_simcore::DetRng`], and a failing run is replayable from its
//! printed [`FaultPlan`] alone.
//!
//! The pieces:
//!
//! - [`FaultPlan`] ([`plan`]): a virtual-time-ordered schedule of typed
//!   fault events — node crashes and recoveries, HTCondor drains, pod
//!   kills, network partitions and link degradations, registry outages,
//!   spot revocations with grace windows, and flaky/slow task-execution
//!   windows. Plans are authored explicitly or sampled from a
//!   [`ChaosProfile`] by seed, and round-trip through JSON bit-exactly
//!   (f64 parameters are carried as IEEE-754 bit patterns alongside
//!   their readable values).
//! - [`Injector`] ([`inject`]): replays a plan against a booted
//!   [`swf_core::TestBed`] strictly through public fault hooks
//!   (`Condor::fail_node`, `K8s::fail_node`, `Network::partition`,
//!   `Registry::set_outage`, …), recording each injection as an swf-obs
//!   span and per-class counter.
//! - [`Disruptor`] ([`inject`]): the task-level hook the injector toggles
//!   for flaky/slow execution windows; workload closures consult it.
//! - [`run_chaos`] ([`experiment`]): a concurrent-workflow experiment under
//!   a fault plan, returning per-workflow typed outcomes plus the registry
//!   byte ledger and fault counters that the seed-sweep invariants check.
//!   With [`ChaosRunConfig::rescue`] set, halted workflows persist rescue
//!   DAGs (JSON round-trip) and resume until they complete, and the
//!   outcome carries a [`GoodputReport`] — task-seconds salvaged versus
//!   wasted, rounds spent, and recovery latency.

#![warn(missing_docs)]

pub mod experiment;
pub mod inject;
pub mod plan;
pub mod profile;

pub use experiment::{
    experiment_config, run_chaos, run_chaos_with, ChaosOutcome, ChaosRunConfig, GoodputReport,
    WorkflowOutcome, SERVICE,
};
pub use inject::{Disruptor, Injector, Stack};
pub use plan::{FaultEvent, FaultKind, FaultPlan};
pub use profile::{ChaosProfile, UnknownProfile};
