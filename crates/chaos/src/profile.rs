//! Chaos profiles: per-class rates that [`crate::FaultPlan::sample`] turns
//! into a concrete, seed-reproducible schedule.

/// Mean inter-arrival times (seconds of virtual time) and disruption
/// parameters per fault class. An interval of `0.0` disables the class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosProfile {
    /// Mean gap between node crashes.
    pub node_crash_interval: f64,
    /// Mean time a crashed node stays down.
    pub node_outage: f64,
    /// Mean gap between `condor_drain`s.
    pub drain_interval: f64,
    /// Mean length of a drain.
    pub drain_window: f64,
    /// Mean gap between pod kills.
    pub pod_kill_interval: f64,
    /// Mean gap between container crashes (pod survives, container dies —
    /// the fault liveness probes heal in place).
    pub container_crash_interval: f64,
    /// Mean gap between network partitions (submit ↔ worker).
    pub partition_interval: f64,
    /// Mean length of a partition.
    pub partition_window: f64,
    /// Mean gap between link degradations.
    pub degrade_interval: f64,
    /// Mean length of a degradation.
    pub degrade_window: f64,
    /// Latency multiplier while a link is degraded.
    pub degrade_latency_factor: f64,
    /// Bandwidth divisor while a link is degraded.
    pub degrade_bandwidth_factor: f64,
    /// Mean gap between registry outages.
    pub registry_outage_interval: f64,
    /// Mean length of a registry outage.
    pub registry_outage_window: f64,
    /// Mean gap between flaky-task windows.
    pub flaky_interval: f64,
    /// Mean length of a flaky-task window.
    pub flaky_window: f64,
    /// Per-execution failure probability inside a flaky window.
    pub flaky_fail_chance: f64,
    /// Mean gap between slow-task windows.
    pub slow_interval: f64,
    /// Mean length of a slow-task window.
    pub slow_window: f64,
    /// Compute multiplier inside a slow window.
    pub slow_factor: f64,
}

impl ChaosProfile {
    /// No faults at all: sampling yields an empty plan.
    pub fn calm() -> ChaosProfile {
        ChaosProfile {
            node_crash_interval: 0.0,
            node_outage: 0.0,
            drain_interval: 0.0,
            drain_window: 0.0,
            pod_kill_interval: 0.0,
            container_crash_interval: 0.0,
            partition_interval: 0.0,
            partition_window: 0.0,
            degrade_interval: 0.0,
            degrade_window: 0.0,
            degrade_latency_factor: 1.0,
            degrade_bandwidth_factor: 1.0,
            registry_outage_interval: 0.0,
            registry_outage_window: 0.0,
            flaky_interval: 0.0,
            flaky_window: 0.0,
            flaky_fail_chance: 0.0,
            slow_interval: 0.0,
            slow_window: 0.0,
            slow_factor: 1.0,
        }
    }

    /// Occasional single-class disruptions — the seed-sweep default. Rates
    /// are tuned so a ~2-minute quick experiment sees a handful of faults
    /// and still completes every workflow through retries and re-matching.
    pub fn light() -> ChaosProfile {
        ChaosProfile {
            node_crash_interval: 90.0,
            node_outage: 8.0,
            drain_interval: 120.0,
            drain_window: 10.0,
            pod_kill_interval: 60.0,
            container_crash_interval: 0.0,
            partition_interval: 100.0,
            partition_window: 3.0,
            degrade_interval: 70.0,
            degrade_window: 12.0,
            degrade_latency_factor: 4.0,
            degrade_bandwidth_factor: 3.0,
            registry_outage_interval: 150.0,
            registry_outage_window: 5.0,
            flaky_interval: 80.0,
            flaky_window: 10.0,
            flaky_fail_chance: 0.5,
            slow_interval: 60.0,
            slow_window: 15.0,
            slow_factor: 2.0,
        }
    }

    /// Frequent, overlapping disruptions across every class — the storm
    /// profile used by `examples/chaos_storm.rs`.
    pub fn heavy() -> ChaosProfile {
        ChaosProfile {
            node_crash_interval: 30.0,
            node_outage: 10.0,
            drain_interval: 40.0,
            drain_window: 12.0,
            pod_kill_interval: 20.0,
            container_crash_interval: 45.0,
            partition_interval: 35.0,
            partition_window: 4.0,
            degrade_interval: 25.0,
            degrade_window: 15.0,
            degrade_latency_factor: 8.0,
            degrade_bandwidth_factor: 6.0,
            registry_outage_interval: 50.0,
            registry_outage_window: 8.0,
            flaky_interval: 30.0,
            flaky_window: 12.0,
            flaky_fail_chance: 0.7,
            slow_interval: 25.0,
            slow_window: 18.0,
            slow_factor: 3.0,
        }
    }
}

impl Default for ChaosProfile {
    fn default() -> Self {
        ChaosProfile::light()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_intensity() {
        let calm = ChaosProfile::calm();
        let light = ChaosProfile::light();
        let heavy = ChaosProfile::heavy();
        assert_eq!(calm.node_crash_interval, 0.0);
        assert!(light.node_crash_interval > heavy.node_crash_interval);
        assert!(heavy.flaky_fail_chance >= light.flaky_fail_chance);
        assert_eq!(ChaosProfile::default(), light);
    }
}
