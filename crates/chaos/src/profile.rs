//! Chaos profiles: per-class rates that [`crate::FaultPlan::sample`] turns
//! into a concrete, seed-reproducible schedule.

/// Mean inter-arrival times (seconds of virtual time) and disruption
/// parameters per fault class. An interval of `0.0` disables the class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosProfile {
    /// Mean gap between node crashes.
    pub node_crash_interval: f64,
    /// Mean time a crashed node stays down.
    pub node_outage: f64,
    /// Mean gap between `condor_drain`s.
    pub drain_interval: f64,
    /// Mean length of a drain.
    pub drain_window: f64,
    /// Mean gap between pod kills.
    pub pod_kill_interval: f64,
    /// Mean gap between container crashes (pod survives, container dies —
    /// the fault liveness probes heal in place).
    pub container_crash_interval: f64,
    /// Mean gap between network partitions (submit ↔ worker).
    pub partition_interval: f64,
    /// Mean length of a partition.
    pub partition_window: f64,
    /// Mean gap between link degradations.
    pub degrade_interval: f64,
    /// Mean length of a degradation.
    pub degrade_window: f64,
    /// Latency multiplier while a link is degraded.
    pub degrade_latency_factor: f64,
    /// Bandwidth divisor while a link is degraded.
    pub degrade_bandwidth_factor: f64,
    /// Mean gap between registry outages.
    pub registry_outage_interval: f64,
    /// Mean length of a registry outage.
    pub registry_outage_window: f64,
    /// Mean gap between flaky-task windows.
    pub flaky_interval: f64,
    /// Mean length of a flaky-task window.
    pub flaky_window: f64,
    /// Per-execution failure probability inside a flaky window.
    pub flaky_fail_chance: f64,
    /// Mean gap between slow-task windows.
    pub slow_interval: f64,
    /// Mean length of a slow-task window.
    pub slow_window: f64,
    /// Compute multiplier inside a slow window.
    pub slow_factor: f64,
    /// Mean gap between spot revocations (preemptible-node reclaims).
    pub spot_revoke_interval: f64,
    /// Grace window a revocation notice grants before the hard kill.
    pub spot_grace: f64,
    /// Mean time a revoked spot node stays gone after its grace expires.
    pub spot_outage: f64,
}

impl ChaosProfile {
    /// No faults at all: sampling yields an empty plan.
    pub fn calm() -> ChaosProfile {
        ChaosProfile {
            node_crash_interval: 0.0,
            node_outage: 0.0,
            drain_interval: 0.0,
            drain_window: 0.0,
            pod_kill_interval: 0.0,
            container_crash_interval: 0.0,
            partition_interval: 0.0,
            partition_window: 0.0,
            degrade_interval: 0.0,
            degrade_window: 0.0,
            degrade_latency_factor: 1.0,
            degrade_bandwidth_factor: 1.0,
            registry_outage_interval: 0.0,
            registry_outage_window: 0.0,
            flaky_interval: 0.0,
            flaky_window: 0.0,
            flaky_fail_chance: 0.0,
            slow_interval: 0.0,
            slow_window: 0.0,
            slow_factor: 1.0,
            spot_revoke_interval: 0.0,
            spot_grace: 0.0,
            spot_outage: 0.0,
        }
    }

    /// Occasional single-class disruptions — the seed-sweep default. Rates
    /// are tuned so a ~2-minute quick experiment sees a handful of faults
    /// and still completes every workflow through retries and re-matching.
    pub fn light() -> ChaosProfile {
        ChaosProfile {
            node_crash_interval: 90.0,
            node_outage: 8.0,
            drain_interval: 120.0,
            drain_window: 10.0,
            pod_kill_interval: 60.0,
            container_crash_interval: 0.0,
            partition_interval: 100.0,
            partition_window: 3.0,
            degrade_interval: 70.0,
            degrade_window: 12.0,
            degrade_latency_factor: 4.0,
            degrade_bandwidth_factor: 3.0,
            registry_outage_interval: 150.0,
            registry_outage_window: 5.0,
            flaky_interval: 80.0,
            flaky_window: 10.0,
            flaky_fail_chance: 0.5,
            slow_interval: 60.0,
            slow_window: 15.0,
            slow_factor: 2.0,
            spot_revoke_interval: 0.0,
            spot_grace: 0.0,
            spot_outage: 0.0,
        }
    }

    /// Frequent, overlapping disruptions across every class — the storm
    /// profile used by `examples/chaos_storm.rs`.
    pub fn heavy() -> ChaosProfile {
        ChaosProfile {
            node_crash_interval: 30.0,
            node_outage: 10.0,
            drain_interval: 40.0,
            drain_window: 12.0,
            pod_kill_interval: 20.0,
            container_crash_interval: 45.0,
            partition_interval: 35.0,
            partition_window: 4.0,
            degrade_interval: 25.0,
            degrade_window: 15.0,
            degrade_latency_factor: 8.0,
            degrade_bandwidth_factor: 6.0,
            registry_outage_interval: 50.0,
            registry_outage_window: 8.0,
            flaky_interval: 30.0,
            flaky_window: 12.0,
            flaky_fail_chance: 0.7,
            slow_interval: 25.0,
            slow_window: 18.0,
            slow_factor: 3.0,
            spot_revoke_interval: 0.0,
            spot_grace: 0.0,
            spot_outage: 0.0,
        }
    }

    /// Spot revocations only: preemptible nodes are reclaimed with a
    /// grace window, every other class is quiet. Isolates the cost of
    /// elasticity — any makespan or goodput delta against `calm` is
    /// attributable to revocation alone.
    pub fn spot() -> ChaosProfile {
        ChaosProfile {
            spot_revoke_interval: 45.0,
            spot_grace: 10.0,
            spot_outage: 20.0,
            ..ChaosProfile::calm()
        }
    }

    /// The storm profile with spot revocations armed on top: the
    /// elasticity acceptance sweep — graceful drain plus rescue-resume
    /// must still complete every workflow.
    pub fn heavy_spot() -> ChaosProfile {
        ChaosProfile {
            spot_revoke_interval: 40.0,
            spot_grace: 8.0,
            spot_outage: 15.0,
            ..ChaosProfile::heavy()
        }
    }

    /// Every named preset the CLIs accept, in intensity order.
    pub const NAMES: [&'static str; 5] = ["calm", "light", "spot", "heavy", "heavy-spot"];

    /// Look a preset up by its CLI name. Unknown names are a typed
    /// [`UnknownProfile`] error carrying the valid list, so callers
    /// reject typos instead of silently falling back to a default.
    pub fn by_name(name: &str) -> Result<ChaosProfile, UnknownProfile> {
        match name {
            "calm" => Ok(ChaosProfile::calm()),
            "light" => Ok(ChaosProfile::light()),
            "spot" => Ok(ChaosProfile::spot()),
            "heavy" => Ok(ChaosProfile::heavy()),
            "heavy-spot" => Ok(ChaosProfile::heavy_spot()),
            other => Err(UnknownProfile {
                name: other.to_string(),
            }),
        }
    }
}

/// A profile name that matches no preset (see [`ChaosProfile::by_name`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownProfile {
    /// The name that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown chaos profile {:?}; valid profiles: {}",
            self.name,
            ChaosProfile::NAMES.join(", ")
        )
    }
}

impl std::error::Error for UnknownProfile {}

impl Default for ChaosProfile {
    fn default() -> Self {
        ChaosProfile::light()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_intensity() {
        let calm = ChaosProfile::calm();
        let light = ChaosProfile::light();
        let heavy = ChaosProfile::heavy();
        assert_eq!(calm.node_crash_interval, 0.0);
        assert!(light.node_crash_interval > heavy.node_crash_interval);
        assert!(heavy.flaky_fail_chance >= light.flaky_fail_chance);
        assert_eq!(ChaosProfile::default(), light);
    }

    #[test]
    fn spot_revocations_are_inert_in_the_pre_elastic_presets() {
        for p in [
            ChaosProfile::calm(),
            ChaosProfile::light(),
            ChaosProfile::heavy(),
        ] {
            assert_eq!(p.spot_revoke_interval, 0.0);
        }
        assert!(ChaosProfile::spot().spot_revoke_interval > 0.0);
        assert!(ChaosProfile::spot().spot_grace > 0.0);
        // heavy-spot is heavy plus revocations, nothing removed.
        let hs = ChaosProfile::heavy_spot();
        assert_eq!(
            hs.node_crash_interval,
            ChaosProfile::heavy().node_crash_interval
        );
        assert!(hs.spot_revoke_interval > 0.0);
    }

    #[test]
    fn by_name_resolves_presets_and_rejects_typos() {
        for name in ChaosProfile::NAMES {
            assert!(ChaosProfile::by_name(name).is_ok(), "preset {name}");
        }
        assert_eq!(
            ChaosProfile::by_name("heavy").unwrap(),
            ChaosProfile::heavy()
        );
        let err = ChaosProfile::by_name("hevy").unwrap_err();
        assert_eq!(err.name, "hevy");
        let msg = err.to_string();
        for name in ChaosProfile::NAMES {
            assert!(msg.contains(name), "error must list {name}: {msg}");
        }
    }
}
