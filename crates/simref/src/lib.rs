//! # swf-simref
//!
//! The **reference oracle executor**: a verbatim copy of `swf-simcore`'s
//! original simple executor (FIFO `VecDeque` ready queue, `BTreeMap` task
//! storage, `BinaryHeap` timer queue) from before the timer-wheel/slab
//! rewrite, with the engine self-profiling hooks stripped.
//!
//! This crate exists for exactly one purpose: the differential scheduler
//! harness in `tests/executor_equivalence.rs` runs seeded random
//! task/timer/wake programs through this oracle and through the production
//! executor in lockstep, asserting identical virtual timestamps and wake
//! orders. It is a **dev-dependency only** — no production crate may depend
//! on it, and it must never be "improved": its value is that it stays the
//! simple, obviously-correct implementation the rewrite is measured
//! against (DESIGN.md §16, "the oracle-vs-production testing contract").
//!
//! The determinism contract both executors implement: tasks run in FIFO
//! wake order; when no task is ready the clock jumps to the earliest
//! pending timer; timers scheduled for the same instant fire in creation
//! order; a run is a pure function of the program and its RNG seeds.

#![warn(missing_docs)]

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
// `Waker` must be `Send + Sync`, so the ready queue lives behind a real
// mutex even though the simulation is single-threaded (see `WakeQueue`).
// tidy: allow(real-sync) — required by the Waker contract; never contended
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use swf_simcore::{SimDuration, SimTime};

/// Identifier of a spawned task.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TaskId(pub u64);

type LocalFuture = Pin<Box<dyn Future<Output = ()>>>;

/// The wake-side of the executor. `Waker`s must be `Send + Sync`, so the
/// ready queue lives behind a real mutex even though the simulation itself
/// is single-threaded (the lock is never contended).
struct WakeQueue {
    ready: Mutex<VecDeque<TaskId>>,
}

impl WakeQueue {
    fn push(&self, id: TaskId) {
        let mut ready = self.ready.lock().unwrap();
        ready.push_back(id);
    }

    fn pop(&self) -> Option<TaskId> {
        self.ready.lock().unwrap().pop_front()
    }
}

struct TaskWaker {
    id: TaskId,
    queue: Arc<WakeQueue>,
    /// Deduplicates wakes between polls so a task is queued at most once.
    queued: AtomicBool,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        if !self.queued.swap(true, Ordering::Relaxed) {
            self.queue.push(self.id);
        }
    }
}

struct TimerState {
    waker: RefCell<Option<Waker>>,
    fired: Cell<bool>,
    cancelled: Cell<bool>,
}

struct TimerEntry {
    at: SimTime,
    seq: u64,
    state: Rc<TimerState>,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Inner {
    clock: Cell<SimTime>,
    tasks: RefCell<BTreeMap<TaskId, (LocalFuture, Arc<TaskWaker>)>>,
    wake_queue: Arc<WakeQueue>,
    timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
    next_task_id: Cell<u64>,
    next_timer_seq: Cell<u64>,
    steps: Cell<u64>,
    step_limit: Cell<u64>,
    spawned_total: Cell<u64>,
}

/// Handle to a simulation. Cloning is cheap; all clones refer to the same
/// virtual world.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<Inner>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<Sim>> = const { RefCell::new(Vec::new()) };
}

struct EnterGuard;

impl Drop for EnterGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

fn enter(sim: &Sim) -> EnterGuard {
    CURRENT.with(|c| c.borrow_mut().push(sim.clone()));
    EnterGuard
}

/// The simulation handle of the currently running task.
///
/// # Panics
/// Panics when called outside a running simulation.
pub fn current() -> Sim {
    CURRENT.with(|c| {
        c.borrow()
            .last()
            .cloned()
            .expect("swf-simref: no simulation is running on this thread")
    })
}

/// The simulation handle of the currently running task, or `None` when no
/// simulation is active on this thread.
pub fn try_current() -> Option<Sim> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// The current virtual time of the running simulation.
pub fn now() -> SimTime {
    current().now()
}

/// Spawn a task onto the currently running simulation.
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    current().spawn(fut)
}

impl Sim {
    /// Create a fresh simulation at `t = 0`.
    pub fn new() -> Self {
        Sim {
            inner: Rc::new(Inner {
                clock: Cell::new(SimTime::ZERO),
                tasks: RefCell::new(BTreeMap::new()),
                wake_queue: Arc::new(WakeQueue {
                    ready: Mutex::new(VecDeque::new()),
                }),
                timers: RefCell::new(BinaryHeap::new()),
                next_task_id: Cell::new(0),
                next_timer_seq: Cell::new(0),
                steps: Cell::new(0),
                step_limit: Cell::new(u64::MAX),
                spawned_total: Cell::new(0),
            }),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.clock.get()
    }

    /// Number of task polls executed so far.
    pub fn steps(&self) -> u64 {
        self.inner.steps.get()
    }

    /// Total number of tasks ever spawned.
    pub fn spawned_total(&self) -> u64 {
        self.inner.spawned_total.get()
    }

    /// Number of tasks that have not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.inner.tasks.borrow().len()
    }

    /// Cap the number of task polls; exceeding it panics.
    pub fn set_step_limit(&self, limit: u64) {
        self.inner.step_limit.set(limit);
    }

    /// Spawn a task. The task starts the next time the executor runs.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let id = TaskId(self.inner.next_task_id.get());
        self.inner.next_task_id.set(id.0 + 1);
        self.inner
            .spawned_total
            .set(self.inner.spawned_total.get() + 1);

        let result: Rc<RefCell<JoinState<F::Output>>> =
            Rc::new(RefCell::new(JoinState::Pending(None)));
        let result2 = Rc::clone(&result);
        let wrapped: LocalFuture = Box::pin(async move {
            let out = fut.await;
            let waker = match std::mem::replace(&mut *result2.borrow_mut(), JoinState::Done(out)) {
                JoinState::Pending(w) => w,
                JoinState::Done(_) | JoinState::Taken => None,
            };
            if let Some(w) = waker {
                w.wake();
            }
        });

        let waker = Arc::new(TaskWaker {
            id,
            queue: Arc::clone(&self.inner.wake_queue),
            queued: AtomicBool::new(true), // queued right below
        });
        self.inner
            .tasks
            .borrow_mut()
            .insert(id, (wrapped, Arc::clone(&waker)));
        self.inner.wake_queue.push(id);
        JoinHandle { state: result, id }
    }

    /// Register a timer at absolute time `at`; used by `sleep` and friends.
    fn register_timer(&self, at: SimTime) -> TimerHandle {
        let seq = self.inner.next_timer_seq.get();
        self.inner.next_timer_seq.set(seq + 1);
        let state = Rc::new(TimerState {
            waker: RefCell::new(None),
            fired: Cell::new(at <= self.now()),
            cancelled: Cell::new(false),
        });
        if !state.fired.get() {
            self.inner.timers.borrow_mut().push(Reverse(TimerEntry {
                at,
                seq,
                state: Rc::clone(&state),
            }));
        }
        TimerHandle { state }
    }

    fn poll_one(&self, id: TaskId) {
        let entry = self.inner.tasks.borrow_mut().remove(&id);
        let Some((mut fut, waker)) = entry else {
            return; // already completed; stale wake
        };
        waker.queued.store(false, Ordering::Relaxed);
        let steps = self.inner.steps.get() + 1;
        self.inner.steps.set(steps);
        if steps > self.inner.step_limit.get() {
            panic!(
                "swf-simref: step limit {} exceeded (possible wake loop); {} live tasks",
                self.inner.step_limit.get(),
                self.inner.tasks.borrow().len() + 1
            );
        }
        let w = Waker::from(Arc::clone(&waker));
        let mut cx = Context::from_waker(&w);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {}
            Poll::Pending => {
                self.inner.tasks.borrow_mut().insert(id, (fut, waker));
            }
        }
    }

    /// Fire every timer scheduled for the earliest pending instant, advancing
    /// the clock to it. Returns false if no timers remain.
    fn advance_to_next_timer(&self) -> bool {
        // Skip cancelled timers without advancing time for them.
        let next_at = loop {
            let mut timers = self.inner.timers.borrow_mut();
            match timers.peek() {
                None => return false,
                Some(Reverse(e)) if e.state.cancelled.get() => {
                    timers.pop();
                }
                Some(Reverse(e)) => break e.at,
            }
        };
        debug_assert!(next_at >= self.now(), "timer in the past");
        self.inner.clock.set(next_at);
        loop {
            let entry = {
                let mut timers = self.inner.timers.borrow_mut();
                match timers.peek() {
                    Some(Reverse(e)) if e.at == next_at => timers.pop().map(|r| r.0),
                    _ => None,
                }
            };
            let Some(entry) = entry else { break };
            if entry.state.cancelled.get() {
                continue;
            }
            entry.state.fired.set(true);
            let waker = entry.state.waker.borrow_mut().take();
            if let Some(w) = waker {
                w.wake();
            }
        }
        true
    }

    /// Run until no task is ready and no timer is pending.
    pub fn run_until_idle(&self) {
        let _guard = enter(self);
        loop {
            while let Some(id) = self.inner.wake_queue.pop() {
                self.poll_one(id);
            }
            if !self.advance_to_next_timer() {
                break;
            }
        }
    }

    /// Run the future to completion on this simulation, driving all spawned
    /// tasks as needed.
    ///
    /// # Panics
    /// Panics if the simulation goes idle before the future completes.
    pub fn block_on<F>(&self, fut: F) -> F::Output
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let handle = self.spawn(fut);
        let _guard = enter(self);
        loop {
            while let Some(id) = self.inner.wake_queue.pop() {
                self.poll_one(id);
            }
            if handle.is_finished() {
                break;
            }
            if !self.advance_to_next_timer() {
                break;
            }
        }
        match handle.try_take() {
            Some(out) => out,
            None => panic!(
                "swf-simref: block_on deadlocked at {} with {} live tasks",
                self.now(),
                self.live_tasks()
            ),
        }
    }
}

struct TimerHandle {
    state: Rc<TimerState>,
}

impl TimerHandle {
    fn fired(&self) -> bool {
        self.state.fired.get()
    }

    fn set_waker(&self, waker: &Waker) {
        *self.state.waker.borrow_mut() = Some(waker.clone());
    }

    fn cancel(&self) {
        self.state.cancelled.set(true);
    }
}

enum JoinState<T> {
    Pending(Option<Waker>),
    Done(T),
    Taken,
}

/// Awaitable handle to a spawned task's result.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
    id: TaskId,
}

impl<T> JoinHandle<T> {
    /// The spawned task's id.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Take the result if the task has completed.
    pub fn try_take(&self) -> Option<T> {
        let mut s = self.state.borrow_mut();
        match &*s {
            JoinState::Done(_) => match std::mem::replace(&mut *s, JoinState::Taken) {
                JoinState::Done(v) => Some(v),
                _ => unreachable!(),
            },
            _ => None,
        }
    }

    /// True once the task has finished (even if the result was taken).
    pub fn is_finished(&self) -> bool {
        !matches!(&*self.state.borrow(), JoinState::Pending(_))
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut s = self.state.borrow_mut();
        match &mut *s {
            JoinState::Pending(w) => {
                *w = Some(cx.waker().clone());
                Poll::Pending
            }
            JoinState::Done(_) => match std::mem::replace(&mut *s, JoinState::Taken) {
                JoinState::Done(v) => Poll::Ready(v),
                _ => unreachable!(),
            },
            JoinState::Taken => panic!("JoinHandle polled after completion"),
        }
    }
}

/// Sleep for `d` of virtual time.
pub fn sleep(d: SimDuration) -> Sleep {
    let sim = current();
    let at = sim.now() + d;
    Sleep {
        handle: sim.register_timer(at),
    }
}

/// Sleep until the absolute virtual instant `at`.
pub fn sleep_until(at: SimTime) -> Sleep {
    let sim = current();
    Sleep {
        handle: sim.register_timer(at),
    }
}

/// Future returned by [`sleep`] / [`sleep_until`].
pub struct Sleep {
    handle: TimerHandle,
}

impl Future for Sleep {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.handle.fired() {
            Poll::Ready(())
        } else {
            self.handle.set_waker(cx.waker());
            Poll::Pending
        }
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        self.handle.cancel();
    }
}

/// A fixed-rate virtual ticker on a drift-free grid.
pub struct Interval {
    next: SimTime,
    period: SimDuration,
}

/// Create a ticker firing every `period`, first at `now + period`.
pub fn interval(period: SimDuration) -> Interval {
    assert!(!period.is_zero(), "interval period must be non-zero");
    Interval {
        next: current().now() + period,
        period,
    }
}

impl Interval {
    /// Wait for the next grid point and return the instant it fired at.
    pub async fn tick(&mut self) -> SimTime {
        let at = self.next;
        sleep_until(at).await;
        self.next = at + self.period;
        at
    }

    /// The instant the next [`tick`](Interval::tick) will complete at.
    pub fn next_at(&self) -> SimTime {
        self.next
    }
}

/// Yield once, letting every other ready task run before this one resumes.
pub async fn yield_now() {
    struct YieldNow(bool);
    impl Future for YieldNow {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.0 {
                Poll::Ready(())
            } else {
                self.0 = true;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }
    YieldNow(false).await
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_simcore::secs;

    #[test]
    fn block_on_returns_value() {
        let sim = Sim::new();
        assert_eq!(sim.block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn sleep_advances_virtual_clock() {
        let sim = Sim::new();
        let t = sim.block_on(async {
            sleep(secs(10.0)).await;
            sleep(secs(2.5)).await;
            now()
        });
        assert_eq!(t, SimTime::ZERO + secs(12.5));
    }

    #[test]
    fn simultaneous_timers_fire_in_creation_order() {
        let sim = Sim::new();
        let log = sim.block_on(async {
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut handles = Vec::new();
            for i in 0..5u32 {
                let log = Rc::clone(&log);
                handles.push(spawn(async move {
                    sleep(secs(1.0)).await;
                    log.borrow_mut().push(i);
                }));
            }
            for h in handles {
                h.await;
            }
            Rc::try_unwrap(log).unwrap().into_inner()
        });
        assert_eq!(log, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn yield_now_lets_others_run() {
        let sim = Sim::new();
        let order = sim.block_on(async {
            let order = Rc::new(RefCell::new(Vec::new()));
            let o1 = Rc::clone(&order);
            let h = spawn(async move {
                o1.borrow_mut().push("spawned");
            });
            order.borrow_mut().push("before-yield");
            yield_now().await;
            order.borrow_mut().push("after-yield");
            h.await;
            Rc::try_unwrap(order).unwrap().into_inner()
        });
        assert_eq!(order, vec!["before-yield", "spawned", "after-yield"]);
    }

    #[test]
    fn dropping_sleep_cancels_timer() {
        let sim = Sim::new();
        sim.block_on(async {
            {
                let _s = sleep(secs(1000.0));
            }
            sleep(secs(1.0)).await;
        });
        sim.run_until_idle();
        assert_eq!(sim.now(), SimTime::ZERO + secs(1.0));
    }
}
