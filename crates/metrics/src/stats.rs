//! Summary statistics.

/// Summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Compute over a sample; empty input yields zeros.
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        Summary {
            n: xs.len(),
            mean,
            std_dev: var.sqrt(),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Percentile via linear interpolation on the sorted sample (p in 0..=100).
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let p = p.clamp(0.0, 100.0) / 100.0;
    let idx = p * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = idx - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Geometric mean (positive samples).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| x.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev - 1.118033988749895).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert_eq!(percentile(&xs, 50.0), 25.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn geomean_value() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }
}
