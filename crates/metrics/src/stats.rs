//! Summary statistics.
//!
//! All entry points reject `NaN` observations up front instead of letting
//! them poison an aggregate: a single `NaN` would otherwise make `mean`
//! non-comparable while `min`/`max` (whose `f64::min`/`max` skip `NaN`)
//! silently stayed finite — the worst kind of half-poisoned result for
//! the bench-suite comparisons built on top of these paths.

/// Summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size (after `NaN` rejection).
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Compute over a sample. `NaN` observations are dropped before
    /// aggregation; an empty (or all-`NaN`) input yields zeros.
    pub fn of(xs: &[f64]) -> Summary {
        let kept: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
        if kept.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = kept.len() as f64;
        let mean = kept.iter().sum::<f64>() / n;
        let var = kept.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        Summary {
            n: kept.len(),
            mean,
            std_dev: var.sqrt(),
            min: kept.iter().copied().fold(f64::INFINITY, f64::min),
            max: kept.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Percentile via linear interpolation on the sorted sample (p in 0..=100).
///
/// `NaN` observations are dropped first (they would otherwise sort to the
/// top under `total_cmp` and surface as high percentiles); an empty or
/// all-`NaN` sample — or a `NaN` `p` — yields 0.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
    if sorted.is_empty() || p.is_nan() {
        return 0.0;
    }
    sorted.sort_by(|a, b| a.total_cmp(b));
    let p = p.clamp(0.0, 100.0) / 100.0;
    let idx = p * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = idx - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Geometric mean (positive samples; non-positive values are clamped to
/// the smallest positive float, `NaN`s are dropped).
pub fn geomean(xs: &[f64]) -> f64 {
    let kept: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
    if kept.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = kept.iter().map(|x| x.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / kept.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std_dev - 1.118033988749895).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!((s.min, s.max), (0.0, 0.0));
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[7.25]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 7.25);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!((s.min, s.max), (7.25, 7.25));
    }

    #[test]
    fn summary_duplicates_have_zero_spread() {
        let s = Summary::of(&[3.0, 3.0, 3.0, 3.0, 3.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!((s.min, s.max), (3.0, 3.0));
    }

    #[test]
    fn summary_rejects_nan() {
        let s = Summary::of(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.n, 2);
        assert_eq!(s.mean, 2.0);
        assert_eq!((s.min, s.max), (1.0, 3.0));
        assert!(!s.std_dev.is_nan());
        // All-NaN behaves like empty.
        let all_nan = Summary::of(&[f64::NAN, f64::NAN]);
        assert_eq!(all_nan.n, 0);
        assert_eq!(all_nan.mean, 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert_eq!(percentile(&xs, 50.0), 25.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn percentile_single_and_duplicates() {
        assert_eq!(percentile(&[5.0], 0.0), 5.0);
        assert_eq!(percentile(&[5.0], 50.0), 5.0);
        assert_eq!(percentile(&[5.0], 100.0), 5.0);
        let dup = [2.0, 2.0, 2.0, 2.0];
        for p in [0.0, 25.0, 50.0, 75.0, 100.0] {
            assert_eq!(percentile(&dup, p), 2.0);
        }
    }

    #[test]
    fn percentile_out_of_range_p_clamps() {
        let xs = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&xs, -10.0), 1.0);
        assert_eq!(percentile(&xs, 250.0), 3.0);
    }

    #[test]
    fn percentile_rejects_nan() {
        // A NaN sample must not surface as the high percentile.
        let xs = [1.0, 2.0, f64::NAN, 3.0];
        assert_eq!(percentile(&xs, 100.0), 3.0);
        assert_eq!(percentile(&xs, 50.0), 2.0);
        // All-NaN behaves like empty; a NaN p yields 0 rather than NaN.
        assert_eq!(percentile(&[f64::NAN], 50.0), 0.0);
        assert_eq!(percentile(&xs, f64::NAN), 0.0);
    }

    #[test]
    fn geomean_value() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0, f64::NAN, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[f64::NAN]), 0.0);
    }
}
