//! Report rendering: aligned text tables, CSV, and JSON.
//!
//! Every figure-regeneration binary prints a table through this module so
//! outputs are uniform and machine-readable (EXPERIMENTS.md is generated
//! from them).

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics when the arity differs from the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Append a row from displayable values.
    pub fn push<D: std::fmt::Display>(&mut self, cells: &[D]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let line = |out: &mut String, cells: &[String]| {
            let mut parts = Vec::new();
            for (i, c) in cells.iter().enumerate() {
                parts.push(format!("{:<width$}", c, width = widths[i]));
            }
            let _ = writeln!(out, "| {} |", parts.join(" | "));
        };
        line(&mut out, &self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&mut out, &sep);
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Render as CSV (headers + rows, comma-separated, quotes on demand).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Render as a JSON array of objects keyed by header.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::Value::Array(
            self.rows
                .iter()
                .map(|row| {
                    let mut obj = serde_json::Map::new();
                    for (h, c) in self.headers.iter().zip(row) {
                        let v = c
                            .parse::<f64>()
                            .map(|f| {
                                serde_json::Number::from_f64(f)
                                    .map(serde_json::Value::Number)
                                    .unwrap_or_else(|| serde_json::Value::String(c.clone()))
                            })
                            .unwrap_or_else(|_| serde_json::Value::String(c.clone()));
                        obj.insert(h.clone(), v);
                    }
                    serde_json::Value::Object(obj)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Fig 1", &["tasks", "docker_s", "knative_s"]);
        t.push(&[10.0, 6.25, 6.26]);
        t.push(&[160.0, 100.0, 78.0]);
        t
    }

    #[test]
    fn render_aligns_and_includes_title() {
        let r = sample().render();
        assert!(r.contains("## Fig 1"));
        assert!(r.contains("| tasks"));
        assert!(r.lines().count() >= 5);
    }

    #[test]
    fn csv_and_json() {
        let t = sample();
        let csv = t.to_csv();
        assert!(csv.starts_with("tasks,docker_s,knative_s\n"));
        assert!(csv.contains("160,100,78"));
        let json = t.to_json();
        assert_eq!(json[1]["docker_s"], serde_json::json!(100.0));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("", &["name", "v"]);
        t.row(&["a,b".to_string(), "say \"hi\"".to_string()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(&["only-one".to_string()]);
    }

    #[test]
    fn len_and_empty() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert!(Table::new("", &["x"]).is_empty());
    }
}
