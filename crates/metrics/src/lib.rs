//! # swf-metrics
//!
//! Measurement toolkit for the reproduction's experiment harness: summary
//! statistics and percentiles, ordinary least-squares regression (the
//! paper's slope analysis in Figs. 1 and 2), ternary mix grids for Fig. 5,
//! uniform table/CSV/JSON report rendering, and benchmark-run comparison
//! (the drift / regression / improvement gate behind `suite compare`).

#![warn(missing_docs)]

pub mod compare;
pub mod regression;
pub mod report;
pub mod stats;
pub mod ternary;

pub use compare::{compare, CompareReport, Delta, DeltaClass};
pub use regression::{fit, Line};
pub use report::Table;
pub use stats::{geomean, percentile, Summary};
pub use ternary::{fig6_mixes, simplex_grid, MixPoint};
