//! Benchmark-run comparison: the perf-regression gate.
//!
//! [`compare`] takes two `BENCH_*.json` documents (see `swf-bench`'s
//! `suite` binary) and classifies every difference:
//!
//! - **Drift** — a virtual-time field differs *bitwise* (the `virtual`,
//!   `obs`, `slo`, and `cost` sections, plus document structure). The
//!   simulation is deterministic, so any such change means model behaviour
//!   changed; drift is always an error regardless of direction or magnitude.
//! - **Regression** / **Improvement** — a host-side wall-clock metric
//!   (`wall_ms` lower-is-better, `events_per_sec` higher-is-better)
//!   moved beyond the noise threshold. These never gate by default:
//!   shared CI runners are noisy, so callers opt in via
//!   [`CompareReport::exit_code`]'s `fail_on_regression`.
//! - **Info** — a deterministic host-side counter (polls, spawns, peak
//!   queue depth …) changed. Engine refactors legitimately change these
//!   without touching virtual results, so they are report-only.
//!
//! Bitwise comparison leans on the vendored `serde_json` serializer
//! being exact-roundtrip for `f64`: two numbers render to the same text
//! iff they are the same bits (modulo the integral-float form, which is
//! itself deterministic), so leaf text equality *is* bit equality.

use std::fmt::Write as _;

use serde_json::Value;

/// Classification of one observed difference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaClass {
    /// Virtual-time or structural difference — always an error.
    Drift,
    /// Host-side metric got worse beyond the noise threshold.
    Regression,
    /// Host-side metric got better beyond the noise threshold.
    Improvement,
    /// Deterministic host counter changed — report-only.
    Info,
}

impl DeltaClass {
    /// Stable lowercase label for tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            DeltaClass::Drift => "drift",
            DeltaClass::Regression => "regression",
            DeltaClass::Improvement => "improvement",
            DeltaClass::Info => "info",
        }
    }
}

/// One difference between the two documents.
#[derive(Clone, Debug)]
pub struct Delta {
    /// Dotted path of the differing field (e.g. `fig1.virtual.rows[2].mean_s`).
    pub path: String,
    /// How the difference is classified.
    pub class: DeltaClass,
    /// Rendering of the old value.
    pub old: String,
    /// Rendering of the new value.
    pub new: String,
    /// Human-readable note (e.g. `+12.3% (noise 10%)`).
    pub note: String,
}

/// The outcome of comparing two benchmark documents.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// Every observed difference, in document order.
    pub deltas: Vec<Delta>,
    /// Scenarios present in both documents.
    pub scenarios_compared: usize,
    /// Virtual-time leaves compared bitwise.
    pub virtual_leaves: usize,
}

impl CompareReport {
    /// True if any virtual-time field drifted.
    pub fn has_drift(&self) -> bool {
        self.deltas.iter().any(|d| d.class == DeltaClass::Drift)
    }

    /// True if any host metric regressed beyond the noise threshold.
    pub fn has_regression(&self) -> bool {
        self.deltas
            .iter()
            .any(|d| d.class == DeltaClass::Regression)
    }

    /// Process exit code: 1 for drift (always fatal), 2 for regression
    /// when `fail_on_regression`, otherwise 0.
    pub fn exit_code(&self, fail_on_regression: bool) -> i32 {
        if self.has_drift() {
            1
        } else if fail_on_regression && self.has_regression() {
            2
        } else {
            0
        }
    }

    /// Render the comparison as a table plus a one-line verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.deltas.is_empty() {
            let _ = writeln!(
                out,
                "identical: {} scenarios, {} virtual-time leaves compared bitwise",
                self.scenarios_compared, self.virtual_leaves
            );
            return out;
        }
        let path_w = self
            .deltas
            .iter()
            .map(|d| d.path.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let _ = writeln!(
            out,
            "  {:<12} {:<path_w$} {:>14} {:>14}  note",
            "class", "path", "old", "new"
        );
        for d in &self.deltas {
            let _ = writeln!(
                out,
                "  {:<12} {:<path_w$} {:>14} {:>14}  {}",
                d.class.label(),
                d.path,
                d.old,
                d.new,
                d.note
            );
        }
        let count = |class: DeltaClass| self.deltas.iter().filter(|d| d.class == class).count();
        let _ = writeln!(
            out,
            "{} drift, {} regression, {} improvement, {} info over {} scenarios ({} virtual leaves)",
            count(DeltaClass::Drift),
            count(DeltaClass::Regression),
            count(DeltaClass::Improvement),
            count(DeltaClass::Info),
            self.scenarios_compared,
            self.virtual_leaves
        );
        out
    }
}

/// Host metrics compared against the noise threshold, with direction.
/// `true` = higher is better.
const NOISY_HOST_METRICS: &[(&str, bool)] = &[("wall_ms", false), ("events_per_sec", true)];

/// Compare two benchmark documents; `noise` is the relative threshold
/// (e.g. `0.10` = 10%) for the wall-clock metrics.
pub fn compare(old: &Value, new: &Value, noise: f64) -> CompareReport {
    let mut report = CompareReport::default();

    // Document framing: schema and quick-mode must agree or the files
    // are not comparable — surfaced as drift rather than a panic.
    for key in ["schema", "quick"] {
        let (o, n) = (field(old, key), field(new, key));
        if o != n {
            push_drift(&mut report, key, &o, &n, "documents not comparable");
        }
    }

    let empty = serde_json::Map::new();
    let old_scen = old
        .get("scenarios")
        .and_then(Value::as_object)
        .unwrap_or(&empty);
    let new_scen = new
        .get("scenarios")
        .and_then(Value::as_object)
        .unwrap_or(&empty);

    let mut names: Vec<&String> = old_scen.iter().map(|(k, _)| k).collect();
    for (k, _) in new_scen.iter() {
        if old_scen.get(k).is_none() {
            names.push(k);
        }
    }

    for name in names {
        match (old_scen.get(name), new_scen.get(name)) {
            (Some(o), Some(n)) => {
                report.scenarios_compared += 1;
                // Virtual-time sections: bitwise (`slo` and `cost` are
                // pure functions of virtual results, so they get the
                // same treatment; scenarios without a `cost` section
                // compare Null against Null).
                for section in ["virtual", "obs", "slo", "cost"] {
                    let path = format!("{name}.{section}");
                    diff_bitwise(
                        &path,
                        o.get(section).unwrap_or(&Value::Null),
                        n.get(section).unwrap_or(&Value::Null),
                        &mut report,
                    );
                }
                // Host section: thresholded metrics + info counters.
                compare_host(
                    name,
                    o.get("host").unwrap_or(&Value::Null),
                    n.get("host").unwrap_or(&Value::Null),
                    noise,
                    &mut report,
                );
            }
            (Some(_), None) => {
                push_drift(&mut report, name, "present", "absent", "scenario removed");
            }
            (None, Some(_)) => {
                push_drift(&mut report, name, "absent", "present", "scenario added");
            }
            (None, None) => {}
        }
    }

    // Top-level host aggregate.
    compare_host(
        "total",
        old.get("host").unwrap_or(&Value::Null),
        new.get("host").unwrap_or(&Value::Null),
        noise,
        &mut report,
    );

    report
}

fn field(doc: &Value, key: &str) -> String {
    doc.get(key)
        .map_or_else(|| "absent".into(), Value::to_string)
}

fn push_drift(report: &mut CompareReport, path: &str, old: &str, new: &str, note: &str) {
    report.deltas.push(Delta {
        path: path.to_string(),
        class: DeltaClass::Drift,
        old: old.to_string(),
        new: new.to_string(),
        note: note.to_string(),
    });
}

/// Recursive bitwise diff of a virtual-time subtree. Leaf text equality
/// under the deterministic serializer is bit equality (see module docs).
fn diff_bitwise(path: &str, old: &Value, new: &Value, report: &mut CompareReport) {
    match (old, new) {
        (Value::Object(o), Value::Object(n)) => {
            for (k, ov) in o.iter() {
                match n.get(k) {
                    Some(nv) => diff_bitwise(&format!("{path}.{k}"), ov, nv, report),
                    None => push_drift(
                        report,
                        &format!("{path}.{k}"),
                        &ov.to_string(),
                        "absent",
                        "field removed",
                    ),
                }
            }
            for (k, nv) in n.iter() {
                if o.get(k).is_none() {
                    push_drift(
                        report,
                        &format!("{path}.{k}"),
                        "absent",
                        &nv.to_string(),
                        "field added",
                    );
                }
            }
        }
        (Value::Array(o), Value::Array(n)) => {
            if o.len() != n.len() {
                push_drift(
                    report,
                    path,
                    &format!("len {}", o.len()),
                    &format!("len {}", n.len()),
                    "array length changed",
                );
                return;
            }
            for (i, (ov, nv)) in o.iter().zip(n.iter()).enumerate() {
                diff_bitwise(&format!("{path}[{i}]"), ov, nv, report);
            }
        }
        _ => {
            report.virtual_leaves += 1;
            let (o, n) = (old.to_string(), new.to_string());
            if o != n {
                push_drift(report, path, &o, &n, "virtual-time value changed");
            }
        }
    }
}

/// Compare one scenario's (or the aggregate's) host section.
fn compare_host(scope: &str, old: &Value, new: &Value, noise: f64, report: &mut CompareReport) {
    if matches!(old, Value::Null) && matches!(new, Value::Null) {
        return;
    }
    // Thresholded wall-clock metrics — skipped when either side is
    // null/absent (default builds have no wall clock).
    for &(metric, higher_is_better) in NOISY_HOST_METRICS {
        let o = old.get(metric).and_then(Value::as_f64);
        let n = new.get(metric).and_then(Value::as_f64);
        let (Some(o), Some(n)) = (o, n) else { continue };
        if o <= 0.0 {
            continue;
        }
        let rel = (n - o) / o;
        if rel.abs() <= noise {
            continue;
        }
        let worse = if higher_is_better {
            rel < 0.0
        } else {
            rel > 0.0
        };
        report.deltas.push(Delta {
            path: format!("{scope}.host.{metric}"),
            class: if worse {
                DeltaClass::Regression
            } else {
                DeltaClass::Improvement
            },
            old: format!("{o:.1}"),
            new: format!("{n:.1}"),
            note: format!("{:+.1}% (noise {:.0}%)", rel * 100.0, noise * 100.0),
        });
    }
    // Deterministic counters — any change is report-only info.
    if let (Some(o), Some(n)) = (old.as_object(), new.as_object()) {
        for (k, ov) in o.iter() {
            if NOISY_HOST_METRICS.iter().any(|&(m, _)| m == k) {
                continue;
            }
            let Some(nv) = n.get(k) else { continue };
            if ov != nv {
                report.deltas.push(Delta {
                    path: format!("{scope}.host.{k}"),
                    class: DeltaClass::Info,
                    old: ov.to_string(),
                    new: nv.to_string(),
                    note: "host counter changed (report-only)".to_string(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn doc(makespan: f64, wall_ms: Option<f64>, polls: u64) -> Value {
        json!({
            "schema": "swf-bench/v1",
            "label": "quick",
            "quick": true,
            "scenarios": {
                "fig1": {
                    "virtual": {"makespan_s": makespan, "rows": [1.0, 2.0]},
                    "obs": {"metrics": {"counters": {"jobs": 5}}},
                    "host": {
                        "polls": polls,
                        "wall_ms": wall_ms,
                        "events_per_sec": (wall_ms.map(|ms| 1000.0 * polls as f64 / ms)),
                    },
                },
            },
            "host": {"wall_ms": wall_ms, "polls": polls},
        })
    }

    #[test]
    fn identical_documents_are_clean() {
        let a = doc(12.5, Some(100.0), 400);
        let report = compare(&a, &a.clone(), 0.10);
        assert!(report.deltas.is_empty(), "{:?}", report.deltas);
        assert_eq!(report.scenarios_compared, 1);
        assert!(report.virtual_leaves >= 4);
        assert_eq!(report.exit_code(true), 0);
        assert!(report.render().contains("identical"));
    }

    #[test]
    fn virtual_change_is_drift_and_fatal() {
        let report = compare(&doc(12.5, None, 400), &doc(12.6, None, 400), 0.10);
        assert!(report.has_drift());
        assert_eq!(report.exit_code(false), 1);
        let d = &report.deltas[0];
        assert_eq!(d.class, DeltaClass::Drift);
        assert!(d.path.contains("fig1.virtual"), "{}", d.path);
        assert!(report.render().contains("drift"));
    }

    #[test]
    fn tiny_virtual_change_is_still_drift() {
        // Bitwise means bitwise: one ulp is a drift.
        let base = 12.5_f64;
        let nudged = f64::from_bits(base.to_bits() + 1);
        let report = compare(&doc(base, None, 400), &doc(nudged, None, 400), 0.10);
        assert!(report.has_drift());
    }

    #[test]
    fn wall_clock_worse_is_regression_only_when_opted_in() {
        let report = compare(
            &doc(12.5, Some(100.0), 400),
            &doc(12.5, Some(130.0), 400),
            0.10,
        );
        assert!(!report.has_drift());
        assert!(report.has_regression());
        assert_eq!(report.exit_code(false), 0);
        assert_eq!(report.exit_code(true), 2);
    }

    #[test]
    fn wall_clock_better_is_improvement() {
        let report = compare(
            &doc(12.5, Some(100.0), 400),
            &doc(12.5, Some(70.0), 400),
            0.10,
        );
        assert!(!report.has_regression());
        assert!(report
            .deltas
            .iter()
            .any(|d| d.class == DeltaClass::Improvement));
        assert_eq!(report.exit_code(true), 0);
    }

    #[test]
    fn wall_clock_within_noise_is_silent() {
        let report = compare(
            &doc(12.5, Some(100.0), 400),
            &doc(12.5, Some(105.0), 400),
            0.10,
        );
        assert!(report.deltas.is_empty(), "{:?}", report.deltas);
    }

    #[test]
    fn null_wall_clock_is_skipped() {
        // Default builds have no wall clock: nothing to threshold.
        let report = compare(&doc(12.5, None, 400), &doc(12.5, None, 400), 0.10);
        assert!(report.deltas.is_empty(), "{:?}", report.deltas);
    }

    #[test]
    fn counter_change_is_report_only_info() {
        let report = compare(&doc(12.5, None, 400), &doc(12.5, None, 380), 0.10);
        assert!(!report.has_drift());
        assert!(report.deltas.iter().all(|d| d.class == DeltaClass::Info));
        assert!(!report.deltas.is_empty());
        assert_eq!(report.exit_code(true), 0);
    }

    #[test]
    fn missing_scenario_is_drift() {
        let a = doc(12.5, None, 400);
        let mut b = a.clone();
        if let Value::Object(root) = &mut b {
            root.insert("scenarios", json!({}));
        }
        let report = compare(&a, &b, 0.10);
        assert!(report.has_drift());
        assert!(report.deltas.iter().any(|d| d.note.contains("removed")));
        // And the reverse direction: a scenario appearing is also drift.
        let report = compare(&b, &a, 0.10);
        assert!(report.deltas.iter().any(|d| d.note.contains("added")));
    }

    #[test]
    fn structural_virtual_changes_are_drift() {
        let a = doc(12.5, None, 400);
        let mut b = a.clone();
        // Drop a virtual field.
        if let Some(Value::Object(v)) = b
            .get_mut("scenarios")
            .and_then(|s| s.get_mut("fig1"))
            .and_then(|f| f.get_mut("virtual"))
        {
            v.remove("rows");
        }
        let report = compare(&a, &b, 0.10);
        assert!(report.has_drift());
        assert!(report.deltas.iter().any(|d| d.note.contains("removed")));
    }

    #[test]
    fn cost_section_change_is_drift_and_absence_is_clean() {
        // Scenarios without a `cost` section (all pre-elastic documents)
        // compare Null against Null: no delta.
        let a = doc(12.5, None, 400);
        let report = compare(&a, &a.clone(), 0.10);
        assert!(report.deltas.is_empty(), "{:?}", report.deltas);
        // A cost leaf moving is drift, same as virtual.
        let with_cost = |dollars: f64| {
            let mut d = doc(12.5, None, 400);
            if let Some(Value::Object(s)) = d.get_mut("scenarios").and_then(|s| s.get_mut("fig1")) {
                s.insert("cost", json!({"dollars": dollars}));
            }
            d
        };
        let report = compare(&with_cost(1.0), &with_cost(1.25), 0.10);
        assert!(report.has_drift());
        assert!(report
            .deltas
            .iter()
            .any(|d| d.path.contains("fig1.cost.dollars")));
    }

    #[test]
    fn incompatible_framing_is_drift() {
        let a = doc(12.5, None, 400);
        let mut b = a.clone();
        if let Value::Object(root) = &mut b {
            root.insert("quick", json!(false));
        }
        let report = compare(&a, &b, 0.10);
        assert!(report.has_drift());
        assert!(report.deltas.iter().any(|d| d.path == "quick"));
    }
}
