//! Ternary mix grids for Figure 5.
//!
//! Fig. 5 plots makespan over the simplex of task-environment mixes
//! (native, serverless, container). This module enumerates a uniform grid
//! of barycentric mix points and converts them to 2-D plot coordinates.

/// A point on the mix simplex; fractions sum to 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MixPoint {
    /// Fraction of native tasks.
    pub native: f64,
    /// Fraction of serverless tasks.
    pub serverless: f64,
    /// Fraction of traditional-container tasks.
    pub container: f64,
}

impl MixPoint {
    /// Build, asserting the fractions are a distribution.
    pub fn new(native: f64, serverless: f64, container: f64) -> MixPoint {
        let sum = native + serverless + container;
        assert!((sum - 1.0).abs() < 1e-9, "mix must sum to 1 (got {sum})");
        MixPoint {
            native,
            serverless,
            container,
        }
    }

    /// Cartesian coordinates in the unit triangle (equilateral, native at
    /// bottom-right, serverless bottom-left, container top — the paper's
    /// orientation).
    pub fn to_cartesian(&self) -> (f64, f64) {
        // Standard barycentric → cartesian with vertices:
        // serverless (0,0), native (1,0), container (0.5, √3/2).
        let x = self.native + 0.5 * self.container;
        let y = self.container * (3.0f64.sqrt() / 2.0);
        (x, y)
    }
}

/// Enumerate all grid points with `steps` subdivisions per axis
/// (`steps = 4` → fractions in {0, .25, .5, .75, 1}); the count is the
/// triangular number `(steps+1)(steps+2)/2`.
pub fn simplex_grid(steps: usize) -> Vec<MixPoint> {
    let mut points = Vec::new();
    for i in 0..=steps {
        for j in 0..=(steps - i) {
            let k = steps - i - j;
            points.push(MixPoint {
                native: i as f64 / steps as f64,
                serverless: j as f64 / steps as f64,
                container: k as f64 / steps as f64,
            });
        }
    }
    points
}

/// The five highlighted mixes of Fig. 6, in paper bar order:
/// all-native, half-serverless, all-serverless, half-container,
/// all-container.
pub fn fig6_mixes() -> [(&'static str, MixPoint); 5] {
    [
        ("all-native", MixPoint::new(1.0, 0.0, 0.0)),
        ("half-serverless-half-native", MixPoint::new(0.5, 0.5, 0.0)),
        ("all-serverless", MixPoint::new(0.0, 1.0, 0.0)),
        ("half-container-half-native", MixPoint::new(0.5, 0.0, 0.5)),
        ("all-container", MixPoint::new(0.0, 0.0, 1.0)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_counts_are_triangular() {
        assert_eq!(simplex_grid(1).len(), 3);
        assert_eq!(simplex_grid(2).len(), 6);
        assert_eq!(simplex_grid(4).len(), 15);
        assert_eq!(simplex_grid(10).len(), 66);
    }

    #[test]
    fn grid_points_are_distributions() {
        for p in simplex_grid(5) {
            let sum = p.native + p.serverless + p.container;
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(p.native >= 0.0 && p.serverless >= 0.0 && p.container >= 0.0);
        }
    }

    #[test]
    fn cartesian_corners() {
        let (x, y) = MixPoint::new(1.0, 0.0, 0.0).to_cartesian();
        assert_eq!((x, y), (1.0, 0.0));
        let (x, y) = MixPoint::new(0.0, 1.0, 0.0).to_cartesian();
        assert_eq!((x, y), (0.0, 0.0));
        let (x, y) = MixPoint::new(0.0, 0.0, 1.0).to_cartesian();
        assert!((x - 0.5).abs() < 1e-12 && (y - 0.866).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "mix must sum to 1")]
    fn bad_mix_panics() {
        let _ = MixPoint::new(0.5, 0.5, 0.5);
    }

    #[test]
    fn fig6_has_five_bars() {
        let mixes = fig6_mixes();
        assert_eq!(mixes.len(), 5);
        assert_eq!(mixes[0].0, "all-native");
        assert_eq!(mixes[4].0, "all-container");
    }
}
