//! Ordinary least-squares linear regression — the analysis behind the
//! paper's slope comparisons (Fig. 1's "up to 30%" and Fig. 2's
//! 0.28 / 0.30 / 0.96 s-per-task slopes).

/// Fitted line `y = slope·x + intercept`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Line {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

/// Fit OLS over `(x, y)` pairs. Fewer than two distinct x values yield a
/// horizontal line through the mean.
pub fn fit(points: &[(f64, f64)]) -> Line {
    let n = points.len() as f64;
    if points.is_empty() {
        return Line {
            slope: 0.0,
            intercept: 0.0,
            r_squared: 0.0,
        };
    }
    let mean_x = points.iter().map(|(x, _)| x).sum::<f64>() / n;
    let mean_y = points.iter().map(|(_, y)| y).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
    let sxy: f64 = points
        .iter()
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    if sxx == 0.0 {
        return Line {
            slope: 0.0,
            intercept: mean_y,
            r_squared: 0.0,
        };
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let ss_tot: f64 = points.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|(x, y)| (y - (slope * x + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Line {
        slope,
        intercept,
        r_squared,
    }
}

impl Line {
    /// Predicted y at x.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Relative slope reduction of `self` versus `other` — the paper's
    /// "Knative can reduce overall execution time by up to 30% compared to
    /// Docker" comes from `1 - slope_knative / slope_docker`.
    pub fn slope_reduction_vs(&self, other: &Line) -> f64 {
        if other.slope == 0.0 {
            return 0.0;
        }
        1.0 - self.slope / other.slope
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_recovers_parameters() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        let l = fit(&pts);
        assert!((l.slope - 3.0).abs() < 1e-12);
        assert!((l.intercept - 2.0).abs() < 1e-12);
        assert!((l.r_squared - 1.0).abs() < 1e-12);
        assert!((l.predict(20.0) - 62.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_r2_below_one() {
        let pts = [(0.0, 0.1), (1.0, 0.9), (2.0, 2.2), (3.0, 2.8)];
        let l = fit(&pts);
        assert!(l.slope > 0.8 && l.slope < 1.1);
        assert!(l.r_squared > 0.9 && l.r_squared < 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(fit(&[]).slope, 0.0);
        let l = fit(&[(2.0, 5.0), (2.0, 7.0)]);
        assert_eq!(l.slope, 0.0);
        assert_eq!(l.intercept, 6.0);
    }

    #[test]
    fn slope_reduction_matches_fig1_claim() {
        // Docker 0.625 s/task vs Knative 0.478 s/task → ≈ 23.5% reduction;
        // the paper reports "up to 30%".
        let docker = Line {
            slope: 0.625,
            intercept: 0.0,
            r_squared: 1.0,
        };
        let knative = Line {
            slope: 0.478,
            intercept: 1.48,
            r_squared: 1.0,
        };
        let red = knative.slope_reduction_vs(&docker);
        assert!(red > 0.2 && red < 0.3, "reduction {red}");
        assert_eq!(
            knative.slope_reduction_vs(&Line {
                slope: 0.0,
                intercept: 0.0,
                r_squared: 0.0
            }),
            0.0
        );
    }
}
