//! Criterion bench over the Fig. 5/6 engine: concurrent workflows at one
//! mix per benchmark id (the five paper bars).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use swf_core::experiments::{run_once, ConcurrentParams};
use swf_core::ExperimentConfig;
use swf_workloads::EnvMix;

fn fig56(c: &mut Criterion) {
    let mut config = ExperimentConfig::quick();
    config.matrix_dim = 16;
    let mixes = [
        ("all-native", EnvMix::ALL_NATIVE),
        ("half-serverless", EnvMix::HALF_SERVERLESS),
        ("all-serverless", EnvMix::ALL_SERVERLESS),
        ("half-container", EnvMix::HALF_CONTAINER),
        ("all-container", EnvMix::ALL_CONTAINER),
    ];
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    for (label, mix) in mixes {
        group.bench_with_input(BenchmarkId::new("mix", label), &mix, |b, &mix| {
            b.iter(|| {
                let o = run_once(
                    &config,
                    ConcurrentParams {
                        workflows: 3,
                        tasks_per_workflow: 3,
                        mix,
                        ..ConcurrentParams::default()
                    },
                    0,
                );
                assert!(o.slowest > 0.0);
                o.slowest
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig56);
criterion_main!(benches);
