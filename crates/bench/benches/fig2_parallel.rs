//! Criterion bench over the Fig. 2 engine: parallel-task scaling across
//! the three execution venues.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use swf_core::experiments::fig2;
use swf_core::ExperimentConfig;

fn fig2_parallel(c: &mut Criterion) {
    let mut config = ExperimentConfig::quick();
    config.matrix_dim = 16;
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    for k in [8usize, 16] {
        group.bench_with_input(BenchmarkId::new("three_venues", k), &k, |b, &k| {
            b.iter(|| {
                let r = fig2::run(&config, &[k]);
                assert!(r.rows[0].container > r.rows[0].native);
                r.rows[0].knative
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig2_parallel);
criterion_main!(benches);
