//! Criterion bench over the Fig. 1 engine: container-reuse advantage.
//! Benchmarks the full simulated Docker and Knative arms at a fixed task
//! count, reporting wall time of the simulation itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use swf_core::experiments::fig1;
use swf_core::ExperimentConfig;

fn bench_config() -> ExperimentConfig {
    let mut c = ExperimentConfig::quick();
    c.matrix_dim = 32;
    c
}

fn fig1_reuse(c: &mut Criterion) {
    let config = bench_config();
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    for tasks in [20usize, 40] {
        group.bench_with_input(
            BenchmarkId::new("docker_vs_knative", tasks),
            &tasks,
            |b, &n| {
                b.iter(|| {
                    let r = fig1::run(&config, &[n]).unwrap();
                    assert!(r.rows[0].docker_total > 0.0);
                    r.rows[0].knative_total
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig1_reuse);
criterion_main!(benches);
