//! Criterion bench over the §III-B cold-start measurement path.

use criterion::{criterion_group, criterion_main, Criterion};

use swf_core::experiments::coldstart;
use swf_core::ExperimentConfig;

fn cold_start(c: &mut Criterion) {
    let mut config = ExperimentConfig::quick();
    config.matrix_dim = 16;
    c.bench_function("coldstart/deferred_function", |b| {
        b.iter(|| {
            let r = coldstart::run(&config).unwrap();
            assert!(r.cold_start > 1.0);
            r.cold_start
        })
    });
}

criterion_group!(benches, cold_start);
criterion_main!(benches);
