//! Criterion bench of the simulation kernel itself: events/second of the
//! virtual-time executor and the HTTP/queueing substrate.

use criterion::{criterion_group, criterion_main, Criterion};

use swf_simcore::{join_all, secs, sleep, spawn, Resource, Sim};

fn executor_throughput(c: &mut Criterion) {
    c.bench_function("engine/10k_timers", |b| {
        b.iter(|| {
            let sim = Sim::new();
            sim.block_on(async {
                let handles: Vec<_> = (0..10_000u64)
                    .map(|i| {
                        spawn(async move {
                            sleep(swf_simcore::SimDuration::from_nanos(i % 997)).await;
                        })
                    })
                    .collect();
                join_all(handles).await;
            });
            sim.steps()
        })
    });

    c.bench_function("engine/fifo_resource_5k", |b| {
        b.iter(|| {
            let sim = Sim::new();
            sim.block_on(async {
                let r = Resource::new("bench", 8);
                let handles: Vec<_> = (0..5_000)
                    .map(|_| {
                        let r = r.clone();
                        spawn(async move {
                            r.serve(secs(0.01)).await;
                        })
                    })
                    .collect();
                join_all(handles).await;
            });
            sim.now()
        })
    });
}

criterion_group!(benches, executor_throughput);
criterion_main!(benches);
