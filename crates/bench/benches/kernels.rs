//! Criterion bench over the real matmul kernels — the calibration basis
//! connecting Rust kernel time to the paper's NumPy task time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use swf_simcore::DetRng;
use swf_workloads::{matmul, Kernel, Matrix};

fn kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for dim in [64usize, 128, 350] {
        let mut rng = DetRng::new(7, "bench");
        let a = Matrix::random(dim, dim, &mut rng, -100, 100);
        let b = Matrix::random(dim, dim, &mut rng, -100, 100);
        group.sample_size(10);
        for kernel in [Kernel::Naive, Kernel::Blocked, Kernel::Parallel] {
            // Naive at 350 is slow; skip to keep bench time sane.
            if dim == 350 && kernel == Kernel::Naive {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(format!("{kernel:?}"), dim),
                &dim,
                |bch, _| bch.iter(|| matmul(&a, &b, kernel).checksum()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, kernels);
criterion_main!(benches);
