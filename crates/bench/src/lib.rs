//! # swf-bench
//!
//! Shared rendering for the figure-regeneration binaries. Each binary runs
//! its experiment at paper scale (or `--quick`) and prints the §V-A setup
//! header, the reproduced rows, the fitted slopes, and the paper-reported
//! values side by side. The `suite` binary runs every scenario in one go,
//! writing the machine-readable `BENCH_*.json` record ([`record`]) that
//! `suite compare` gates future changes against; [`ablations`] holds the
//! ablation logic shared between its binary and the suite.

#![warn(missing_docs)]

pub mod ablations;
pub mod apps;
pub mod elastic;
pub mod record;
pub mod suite;

pub use record::{emit_scenario_json, json_out, ScenarioMeter};

use swf_core::experiments::{Fig1Result, Fig2Result, Fig5Result, Fig6Result};
use swf_core::ExperimentConfig;
use swf_metrics::Table;

/// Parse the common `--quick` flag.
pub fn is_quick() -> bool {
    std::env::args().any(|a| a == "--quick" || a == "-q")
}

/// Parse the `--trace-out <path>` flag (also `--trace-out=<path>`).
/// Exits with an error when the flag is present without a path, so the
/// mistake surfaces before the experiment runs rather than as a silently
/// untraced run.
pub fn trace_out() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--trace-out" {
            match args.get(i + 1) {
                Some(p) if !p.starts_with('-') => return Some(p.clone()),
                _ => {
                    eprintln!("error: --trace-out requires a path argument");
                    std::process::exit(2);
                }
            }
        }
        if let Some(p) = a.strip_prefix("--trace-out=") {
            return Some(p.to_string());
        }
    }
    None
}

/// True when span collection is requested (`--trace`, or implied by
/// `--trace-out`).
pub fn is_traced() -> bool {
    trace_out().is_some() || std::env::args().any(|a| a == "--trace")
}

/// The experiment config selected by the CLI flags.
pub fn cli_config() -> ExperimentConfig {
    let mut c = if is_quick() {
        let mut c = ExperimentConfig::quick();
        // Quick harness runs still use paper-shaped timing but small
        // matrices, so real compute stays cheap.
        c.matrix_dim = 32;
        c
    } else {
        ExperimentConfig::paper()
    };
    c.trace = is_traced();
    c
}

/// Merge labelled span collectors into one Chrome-trace JSON array
/// (Perfetto / `chrome://tracing` loadable) and write it to `path`. Each
/// label becomes a process-name prefix so several runs coexist in one view.
pub fn write_chrome_trace(path: &str, collectors: &[(&str, &swf_obs::Obs)]) -> std::io::Result<()> {
    let mut events = Vec::new();
    for (label, obs) in collectors {
        let spans = obs.spans();
        if spans.is_empty() {
            continue;
        }
        match swf_obs::chrome_trace(&spans, label) {
            serde_json::Value::Array(evs) => events.extend(evs),
            other => events.push(other),
        }
    }
    std::fs::write(path, serde_json::Value::Array(events).to_string())
}

/// Render the metrics registries of labelled collectors as one JSON object.
pub fn metrics_json(collectors: &[(&str, &swf_obs::Obs)]) -> serde_json::Value {
    let mut map = serde_json::Map::new();
    for (label, obs) in collectors {
        map.insert(label.to_string(), obs.metrics_json());
    }
    serde_json::Value::Object(map)
}

/// Install a process-wide span collector driven by the tracing CLI flags:
/// enabled when `--trace`/`--trace-out` is present, a disabled handle
/// otherwise. Keep the returned guard alive for the duration of the run.
pub fn install_cli_obs() -> (swf_obs::Obs, swf_obs::InstallGuard) {
    let obs = if is_traced() {
        swf_obs::Obs::enabled()
    } else {
        swf_obs::Obs::disabled()
    };
    let guard = swf_obs::install(obs.clone());
    (obs, guard)
}

/// Honour the tracing CLI flags for a finished run: print the metrics
/// registry as JSON and write the Chrome-trace file when `--trace-out` was
/// given. No-op when tracing was not requested.
pub fn dump_observability(collectors: &[(&str, &swf_obs::Obs)]) {
    if !is_traced() {
        return;
    }
    println!("\nmetrics: {}", metrics_json(collectors));
    if let Some(path) = trace_out() {
        match write_chrome_trace(&path, collectors) {
            Ok(()) => println!("chrome trace written to {path}"),
            Err(e) => {
                eprintln!("error: failed to write chrome trace to {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

/// Render Fig. 1 as a table plus slope analysis.
pub fn fig1_report(r: &Fig1Result) -> String {
    let mut t = Table::new(
        "Fig. 1 — Docker vs Knative, N sequential tasks (seconds)",
        &[
            "tasks",
            "docker_total",
            "knative_total",
            "docker_exec/task",
            "knative_exec/task",
        ],
    );
    for row in &r.rows {
        t.row(&[
            row.tasks.to_string(),
            format!("{:.2}", row.docker_total),
            format!("{:.2}", row.knative_total),
            format!("{:.3}", row.docker_exec),
            format!("{:.3}", row.knative_exec),
        ]);
    }
    let mut s = t.render();
    s.push_str(&format!(
        "\nslopes: docker {:.3} s/task (R²={:.3}), knative {:.3} s/task (R²={:.3})\n",
        r.docker_fit.slope, r.docker_fit.r_squared, r.knative_fit.slope, r.knative_fit.r_squared
    ));
    s.push_str(&format!(
        "knative slope reduction vs docker: {:.1}%   [paper: up to 30%]\n",
        r.slope_reduction * 100.0
    ));
    s.push_str(&format!(
        "knative cold start: {:.2} s              [paper: 1.48 s]\n",
        r.cold_start
    ));
    s
}

/// Render Fig. 2 as a table plus slopes.
pub fn fig2_report(r: &Fig2Result) -> String {
    let mut t = Table::new(
        "Fig. 2 — k parallel tasks, makespan by venue (seconds)",
        &["tasks", "native", "knative", "container"],
    );
    for row in &r.rows {
        t.row(&[
            row.tasks.to_string(),
            format!("{:.2}", row.native),
            format!("{:.2}", row.knative),
            format!("{:.2}", row.container),
        ]);
    }
    let mut s = t.render();
    s.push_str(&format!(
        "\nslopes (s/task): native {:.3} [paper 0.28], knative {:.3} [paper 0.30], container {:.3} [paper 0.96]\n",
        r.native_fit.slope, r.knative_fit.slope, r.container_fit.slope
    ));
    s
}

/// Render Fig. 5 as the grid table (mix → makespan).
pub fn fig5_report(r: &Fig5Result) -> String {
    let mut t = Table::new(
        "Fig. 5 — performance–isolation trade-off over the mix simplex",
        &[
            "native",
            "serverless",
            "container",
            "x",
            "y",
            "slowest_makespan_s",
        ],
    );
    for row in &r.rows {
        let (x, y) = row.mix.to_cartesian();
        t.row(&[
            format!("{:.2}", row.mix.native),
            format!("{:.2}", row.mix.serverless),
            format!("{:.2}", row.mix.container),
            format!("{x:.3}"),
            format!("{y:.3}"),
            format!("{:.1}", row.makespan),
        ]);
    }
    let mut s = t.render();
    let best = r.best();
    let worst = r.worst();
    s.push_str(&format!(
        "\nbest mix: native={:.2} serverless={:.2} container={:.2} at {:.1}s\n",
        best.mix.native, best.mix.serverless, best.mix.container, best.makespan
    ));
    s.push_str(&format!(
        "worst mix: native={:.2} serverless={:.2} container={:.2} at {:.1}s\n",
        worst.mix.native, worst.mix.serverless, worst.mix.container, worst.makespan
    ));
    let traced: Vec<_> = r
        .rows
        .iter()
        .zip(&r.breakdowns)
        .filter_map(|(row, b)| b.as_ref().map(|cp| (row.mix, cp)))
        .collect();
    if !traced.is_empty() {
        s.push_str("\nWhere the time goes (critical path of the slowest workflow, rep 0):\n");
        for (mix, cp) in traced {
            let label = format!(
                "native={:.2} serverless={:.2} container={:.2}",
                mix.native, mix.serverless, mix.container
            );
            s.push('\n');
            s.push_str(&swf_core::render_mix_breakdown(&label, cp));
        }
    }
    s
}

/// Render Fig. 6 as the five paper bars.
pub fn fig6_report(r: &Fig6Result) -> String {
    let mut t = Table::new(
        "Fig. 6 — average makespan of the slowest workflow, five mixes",
        &["scenario", "makespan_s", "vs_native", "paper"],
    );
    let paper_hint = |label: &str| match label {
        "all-native" => "≈250 s (fastest)",
        "half-serverless-half-native" => "2nd fastest",
        "all-serverless" => "1.08× native",
        "half-container-half-native" => "4th",
        "all-container" => "slowest",
        _ => "",
    };
    for row in &r.rows {
        t.row(&[
            row.label.to_string(),
            format!("{:.1}", row.makespan),
            format!("{:.2}x", row.vs_native),
            paper_hint(row.label).to_string(),
        ]);
    }
    let mut s = t.render();
    let traced: Vec<_> = r
        .rows
        .iter()
        .filter_map(|row| row.breakdown.as_ref().map(|cp| (row.label, cp)))
        .collect();
    if !traced.is_empty() {
        s.push_str("\nWhere the time goes (critical path of the slowest workflow, rep 0):\n");
        for (label, cp) in traced {
            s.push('\n');
            s.push_str(&swf_core::render_mix_breakdown(label, cp));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_core::experiments::{Fig1Row, Fig6Row};
    use swf_metrics::{Line, MixPoint};

    #[test]
    fn fig1_report_contains_slopes_and_paper_refs() {
        let r = Fig1Result {
            rows: vec![Fig1Row {
                tasks: 160,
                docker_total: 100.0,
                knative_total: 78.0,
                docker_exec: 0.458,
                knative_exec: 0.458,
            }],
            docker_fit: Line {
                slope: 0.625,
                intercept: 0.0,
                r_squared: 1.0,
            },
            knative_fit: Line {
                slope: 0.478,
                intercept: 1.48,
                r_squared: 1.0,
            },
            slope_reduction: 0.235,
            cold_start: 1.48,
        };
        let s = fig1_report(&r);
        assert!(s.contains("160"));
        assert!(s.contains("23.5%"));
        assert!(s.contains("1.48"));
    }

    #[test]
    fn fig6_report_lists_all_bars() {
        let rows = vec![
            ("all-native", 250.0, 1.0),
            ("half-serverless-half-native", 258.0, 1.03),
            ("all-serverless", 270.0, 1.08),
            ("half-container-half-native", 280.0, 1.12),
            ("all-container", 310.0, 1.24),
        ];
        let r = Fig6Result {
            rows: rows
                .into_iter()
                .map(|(label, m, v)| Fig6Row {
                    label,
                    mix: MixPoint::new(1.0, 0.0, 0.0),
                    makespan: m,
                    vs_native: v,
                    breakdown: None,
                    obs: swf_obs::Obs::disabled(),
                })
                .collect(),
        };
        let s = fig6_report(&r);
        assert!(s.contains("all-container"));
        assert!(s.contains("1.08x"));
    }
}
