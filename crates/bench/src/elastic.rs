//! The elastic benchmark scenario: calm, spot, and revocation-storm
//! profiles head-to-head over the autoscaled spot cluster, with the
//! static all-on-demand cluster as the price baseline. Run by the
//! suite's `elastic` label, which adds a `cost` section to the bench
//! document (bitwise under `suite compare`, like `virtual`).

use swf_chaos::{ChaosProfile, FaultPlan};
use swf_elastic::{elastic_plan, run_elastic, ElasticOutcome, ElasticRunConfig};
use swf_simcore::secs;

/// Fault horizon of every armed profile, matching the chaos sweep's
/// window relative to the burst workload's calm makespan.
const HORIZON_S: f64 = 150.0;

/// One (arm, seed) execution.
pub struct ElasticArmRow {
    /// Arm label (`static`, `calm`, `spot`, `heavy-spot`).
    pub arm: &'static str,
    /// Sweep seed.
    pub seed: u64,
    /// The run's outcome: chaos results plus the bill.
    pub outcome: ElasticOutcome,
    /// Span collector of this run.
    pub obs: swf_obs::Obs,
}

/// The full elastic scenario result.
pub struct ElasticResult {
    /// One row per arm × seed, arm-major in canonical order.
    pub rows: Vec<ElasticArmRow>,
}

/// The arms, in canonical order: the static on-demand baseline, then the
/// autoscaled pool under increasingly hostile profiles.
pub const ARMS: [&str; 4] = ["static", "calm", "spot", "heavy-spot"];

fn arm_run(arm: &'static str, seed: u64) -> (ElasticRunConfig, FaultPlan) {
    match arm {
        "static" => (ElasticRunConfig::static_cluster(seed), FaultPlan::calm()),
        "calm" => (ElasticRunConfig::burst(seed), FaultPlan::calm()),
        "spot" => {
            let cfg = ElasticRunConfig::burst(seed);
            let plan = elastic_plan(&ChaosProfile::spot(), seed, secs(HORIZON_S), &cfg.pools);
            (cfg, plan)
        }
        "heavy-spot" => {
            let cfg = ElasticRunConfig::burst(seed);
            let plan = elastic_plan(
                &ChaosProfile::heavy_spot(),
                seed,
                secs(HORIZON_S),
                &cfg.pools,
            );
            (cfg, plan)
        }
        other => unreachable!("unknown elastic arm {other}"),
    }
}

impl ElasticResult {
    /// Rows of one arm, in seed order.
    pub fn arm_rows(&self, arm: &str) -> Vec<&ElasticArmRow> {
        self.rows.iter().filter(|r| r.arm == arm).collect()
    }

    /// The deterministic `virtual` section: per-arm per-seed completion,
    /// makespan, and goodput.
    pub fn to_json(&self) -> serde_json::Value {
        let mut arms = serde_json::Map::new();
        for arm in ARMS {
            let rows: Vec<serde_json::Value> = self
                .arm_rows(arm)
                .iter()
                .map(|r| {
                    let chaos = &r.outcome.chaos;
                    let mut obj = serde_json::Map::new();
                    obj.insert("seed", serde_json::Value::from(r.seed));
                    obj.insert("injected", serde_json::Value::from(chaos.injected));
                    obj.insert(
                        "task_failures",
                        serde_json::Value::from(chaos.task_failures),
                    );
                    obj.insert(
                        "completed",
                        serde_json::Value::from(chaos.completed() as u64),
                    );
                    obj.insert(
                        "workflows",
                        serde_json::Value::from(chaos.outcomes.len() as u64),
                    );
                    obj.insert(
                        "makespan_s",
                        serde_json::Value::from(chaos.makespan.as_secs_f64()),
                    );
                    obj.insert(
                        "rescue_rounds",
                        serde_json::Value::from(chaos.goodput.rescue_rounds),
                    );
                    obj.insert(
                        "salvaged_task_s",
                        serde_json::Value::from(chaos.goodput.salvaged_task_s),
                    );
                    obj.insert(
                        "wasted_task_s",
                        serde_json::Value::from(chaos.goodput.wasted_task_s),
                    );
                    obj.insert(
                        "salvage_ratio",
                        serde_json::Value::from(r.outcome.salvage_ratio()),
                    );
                    obj.insert(
                        "useful_task_s",
                        serde_json::Value::from(r.outcome.useful_task_s),
                    );
                    serde_json::Value::Object(obj)
                })
                .collect();
            arms.insert(arm.to_string(), serde_json::Value::Array(rows));
        }
        let mut root = serde_json::Map::new();
        root.insert("arms", serde_json::Value::Object(arms));
        serde_json::Value::Object(root)
    }

    /// The `cost` section: per-arm per-seed node-second ledger, dollars,
    /// and perf-per-dollar. Pure virtual-time arithmetic, diffed bitwise
    /// by `suite compare`.
    pub fn cost_json(&self) -> serde_json::Value {
        let mut arms = serde_json::Map::new();
        for arm in ARMS {
            let rows: Vec<serde_json::Value> = self
                .arm_rows(arm)
                .iter()
                .map(|r| {
                    let c = &r.outcome.cost;
                    let mut obj = serde_json::Map::new();
                    obj.insert("seed", serde_json::Value::from(r.seed));
                    obj.insert(
                        "on_demand_node_s",
                        serde_json::Value::from(c.on_demand_node_s),
                    );
                    obj.insert("spot_node_s", serde_json::Value::from(c.spot_node_s));
                    obj.insert(
                        "on_demand_dollars",
                        serde_json::Value::from(c.on_demand_dollars),
                    );
                    obj.insert("spot_dollars", serde_json::Value::from(c.spot_dollars));
                    obj.insert("dollars", serde_json::Value::from(c.dollars()));
                    obj.insert(
                        "perf_per_dollar",
                        serde_json::Value::from(r.outcome.perf_per_dollar),
                    );
                    serde_json::Value::Object(obj)
                })
                .collect();
            arms.insert(arm.to_string(), serde_json::Value::Array(rows));
        }
        let mut root = serde_json::Map::new();
        root.insert("arms", serde_json::Value::Object(arms));
        serde_json::Value::Object(root)
    }

    /// Labelled collectors (`elastic/<arm>/s<seed>`) for trace export.
    pub fn collectors(&self) -> Vec<(String, swf_obs::Obs)> {
        self.rows
            .iter()
            .map(|r| (format!("elastic/{}/s{}", r.arm, r.seed), r.obs.clone()))
            .collect()
    }

    /// Render the head-to-head table: goodput, salvage, and
    /// perf-per-dollar per arm (seed-averaged where a sweep ran).
    pub fn report(&self) -> String {
        let mut t = swf_metrics::Table::new(
            "elastic — cost-aware goodput under revocation (per arm, seed-averaged)",
            &[
                "arm",
                "done",
                "makespan_s",
                "salvage",
                "useful_task_s",
                "dollars",
                "perf_per_$",
            ],
        );
        for arm in ARMS {
            let rows = self.arm_rows(arm);
            if rows.is_empty() {
                continue;
            }
            let n = rows.len() as f64;
            let avg =
                |f: &dyn Fn(&ElasticArmRow) -> f64| rows.iter().map(|r| f(r)).sum::<f64>() / n;
            let done: usize = rows.iter().map(|r| r.outcome.chaos.completed()).sum();
            let total: usize = rows.iter().map(|r| r.outcome.chaos.outcomes.len()).sum();
            t.row(&[
                arm.to_string(),
                format!("{done}/{total}"),
                format!("{:.2}", avg(&|r| r.outcome.chaos.makespan.as_secs_f64())),
                format!("{:.3}", avg(&|r| r.outcome.salvage_ratio())),
                format!("{:.1}", avg(&|r| r.outcome.useful_task_s)),
                format!("{:.4}", avg(&|r| r.outcome.cost.dollars())),
                format!("{:.1}", avg(&|r| r.outcome.perf_per_dollar)),
            ]);
        }
        t.render()
    }
}

/// Run every arm over the scenario's seed sweep (1 seed quick, 4 at
/// paper scale), tracing on.
pub fn run_elastic_scenario(quick: bool) -> ElasticResult {
    let seeds: Vec<u64> = if quick { vec![0] } else { vec![0, 1, 2, 3] };
    let mut rows = Vec::new();
    for arm in ARMS {
        for &seed in &seeds {
            let obs = swf_obs::Obs::enabled();
            let guard = swf_obs::install(obs.clone());
            let (cfg, plan) = arm_run(arm, seed);
            let outcome = run_elastic(&cfg, &plan)
                .unwrap_or_else(|e| panic!("elastic arm {arm} seed {seed} failed: {e}"));
            drop(guard);
            rows.push(ElasticArmRow {
                arm,
                seed,
                outcome,
                obs,
            });
        }
    }
    ElasticResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scenario_covers_every_arm_and_bills_every_run() {
        let r = run_elastic_scenario(true);
        assert_eq!(r.rows.len(), ARMS.len());
        for row in &r.rows {
            assert!(
                row.outcome.cost.dollars() > 0.0,
                "arm {} billed nothing",
                row.arm
            );
        }
        let v = r.to_json();
        let c = r.cost_json();
        for arm in ARMS {
            assert!(v["arms"][arm].is_array(), "virtual arm {arm} missing");
            assert!(c["arms"][arm].is_array(), "cost arm {arm} missing");
        }
        assert!(r.report().contains("heavy-spot"));
    }
}
