//! Ablation studies over the design choices DESIGN.md calls out, shared
//! between the `ablations` binary and the `suite` runner:
//!
//! 1. container reuse (shared warm containers vs one-per-request),
//! 2. pre-staged vs deferred provisioning (`min-scale` vs `initial-scale: 0`),
//! 3. pass-by-value payloads vs node-resident data,
//! 4. task clustering levels (the paper's §IX-C task resizing),
//! 5. routing policy: round-robin vs §IX-D least-loaded redirection.

use bytes::Bytes;

use swf_cluster::{NodeId, Request};
use swf_container::Workload;
use swf_core::experiments::{run_once, ConcurrentParams};
use swf_core::{ExperimentConfig, Provisioning, TestBed};
use swf_knative::{KService, RoutingPolicy};
use swf_metrics::Table;
use swf_pegasus::PlanOptions;
use swf_simcore::{now, secs, Sim};
use swf_workloads::EnvMix;

/// One measured ablation row.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Ablation group (e.g. `container concurrency`).
    pub group: &'static str,
    /// Variant label within the group.
    pub variant: String,
    /// The measured metric in seconds (makespan or mean latency — see
    /// [`AblationsResult::METRIC_NOTE`]).
    pub metric_s: f64,
}

/// All ablation rows plus their labelled span collectors.
#[derive(Clone, Debug, Default)]
pub struct AblationsResult {
    /// Measured rows in fixed group order.
    pub rows: Vec<AblationRow>,
    /// Per-variant span collectors (enabled only when traced).
    pub collectors: Vec<(String, swf_obs::Obs)>,
}

impl AblationsResult {
    /// What `metric_s` means per row, printed under the table.
    pub const METRIC_NOTE: &'static str =
        "metric: rows 1-8 = slowest-workflow makespan; rows 9-10 = mean request latency";

    /// Render the classic ablations table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Ablations over the paper's design choices (seconds; lower is better)",
            &["ablation", "variant", "metric_s"],
        );
        for row in &self.rows {
            // Makespans print at 0.1 s; the routing rows are sub-second
            // request latencies and need the extra digit.
            let metric = if row.group == "task redirection (§IX-D)" {
                format!("{:.2}", row.metric_s)
            } else {
                format!("{:.1}", row.metric_s)
            };
            t.row(&[row.group.into(), row.variant.clone(), metric]);
        }
        t
    }

    /// The virtual-time JSON record (rows only; collectors go to `obs`).
    pub fn to_json(&self) -> serde_json::Value {
        let rows: Vec<serde_json::Value> = self
            .rows
            .iter()
            .map(|row| {
                let mut obj = serde_json::Map::new();
                obj.insert("group", serde_json::Value::from(row.group));
                obj.insert("variant", serde_json::Value::from(row.variant.clone()));
                obj.insert("metric_s", serde_json::Value::from(row.metric_s));
                serde_json::Value::Object(obj)
            })
            .collect();
        let mut obj = serde_json::Map::new();
        obj.insert("rows", serde_json::Value::Array(rows));
        serde_json::Value::Object(obj)
    }
}

fn scale(quick: bool) -> (usize, usize) {
    if quick {
        (3, 4)
    } else {
        (6, 8)
    }
}

/// Ablation 1 — container concurrency: shared containers (cc=0) vs
/// strict one-request-per-container (cc=1) on the all-serverless workload.
fn ablate_reuse(quick: bool, traced: bool, out: &mut AblationsResult) {
    let (workflows, tasks) = scale(quick);
    for (label, cc) in [
        ("containerConcurrency=1", 1u32),
        ("containerConcurrency=0 (shared)", 0),
    ] {
        let mut config = ExperimentConfig::quick();
        config.container_concurrency = cc;
        config.trace = traced;
        let o = run_once(
            &config,
            ConcurrentParams {
                workflows,
                tasks_per_workflow: tasks,
                mix: EnvMix::ALL_SERVERLESS,
                ..ConcurrentParams::default()
            },
            0,
        );
        out.rows.push(AblationRow {
            group: "container concurrency",
            variant: label.into(),
            metric_s: o.slowest,
        });
        out.collectors.push((format!("reuse/{label}"), o.obs));
    }
}

/// Ablation 2 — provisioning: pre-staged warm pods vs deferred downloads.
fn ablate_provisioning(quick: bool, traced: bool, out: &mut AblationsResult) {
    let (workflows, tasks) = scale(quick);
    for (label, mode) in [
        ("min-scale pre-staged", Provisioning::PreStage),
        ("initial-scale=0 deferred", Provisioning::Deferred),
    ] {
        let mut config = ExperimentConfig::quick();
        config.provisioning = mode;
        config.trace = traced;
        let o = run_once(
            &config,
            ConcurrentParams {
                workflows,
                tasks_per_workflow: tasks,
                mix: EnvMix::ALL_SERVERLESS,
                ..ConcurrentParams::default()
            },
            0,
        );
        out.rows.push(AblationRow {
            group: "provisioning",
            variant: label.into(),
            metric_s: o.slowest,
        });
        out.collectors
            .push((format!("provisioning/{label}"), o.obs));
    }
}

/// Ablation 3 — pass-by-value serialization on vs off (node-resident data).
fn ablate_payload(quick: bool, traced: bool, out: &mut AblationsResult) {
    let (workflows, tasks) = scale(quick);
    for (label, rate) in [
        ("pass-by-value (4 MB/s ser.)", 4.0e6),
        ("node-resident data", 0.0),
    ] {
        let mut config = ExperimentConfig::quick();
        config.serialization_rate = rate;
        config.trace = traced;
        // Use paper-sized matrices so payload costs are visible.
        config.matrix_dim = if quick { 64 } else { 350 };
        let o = run_once(
            &config,
            ConcurrentParams {
                workflows,
                tasks_per_workflow: tasks,
                mix: EnvMix::ALL_SERVERLESS,
                ..ConcurrentParams::default()
            },
            0,
        );
        out.rows.push(AblationRow {
            group: "file management",
            variant: label.into(),
            metric_s: o.slowest,
        });
        out.collectors.push((format!("payload/{label}"), o.obs));
    }
}

/// Ablation 4 — task clustering levels (§IX-C task resizing).
fn ablate_clustering(quick: bool, traced: bool, out: &mut AblationsResult) {
    let (workflows, tasks) = scale(quick);
    for level in [1usize, 2, 4] {
        let mut config = ExperimentConfig::quick();
        config.trace = traced;
        let o = run_once(
            &config,
            ConcurrentParams {
                workflows,
                tasks_per_workflow: tasks,
                mix: EnvMix::ALL_NATIVE,
                plan: PlanOptions {
                    cluster_level: level,
                    retries: 0,
                },
            },
            0,
        );
        out.rows.push(AblationRow {
            group: "task clustering (§IX-C)",
            variant: format!("cluster level {level}"),
            metric_s: o.slowest,
        });
        out.collectors
            .push((format!("clustering/level-{level}"), o.obs));
    }
}

/// Ablation 5 — routing: round-robin vs least-loaded redirection (§IX-D)
/// under a skewed background load.
fn ablate_routing(traced: bool, out: &mut AblationsResult) {
    for (label, policy) in [
        ("round-robin", RoutingPolicy::RoundRobin),
        ("least-loaded (§IX-D)", RoutingPolicy::LeastLoaded),
    ] {
        let obs = if traced {
            swf_obs::Obs::enabled()
        } else {
            swf_obs::Obs::disabled()
        };
        let obs2 = obs.clone();
        let sim = Sim::new();
        let mean_latency = sim.block_on(async move {
            let _obs_guard = swf_obs::install(obs2);
            let mut config = ExperimentConfig::quick();
            config.knative.routing = policy;
            let bed = TestBed::boot(&config);
            bed.knative.register_fn(
                KService::new("fn", bed.image.clone())
                    .with_min_scale(2)
                    .with_max_scale(2),
                |req| {
                    let b = req.body.clone();
                    Workload::new(secs(0.458), move || Ok(b))
                },
            );
            bed.knative.wait_ready("fn", 2, secs(600.0)).await.unwrap();
            // Saturate the first pod's node with foreign compute.
            let rev = bed.knative.revisions().get("fn-00001").unwrap();
            let eps = bed
                .k8s
                .api()
                .endpoints()
                .get(&rev.k8s_service_name())
                .unwrap();
            let busy = bed.k8s.runtime(eps.ready[0].node).unwrap().node().clone();
            for _ in 0..busy.cores().capacity() {
                let busy = busy.clone();
                swf_simcore::spawn(async move {
                    busy.run_on_core(secs(10_000.0)).await;
                });
            }
            swf_simcore::sleep(secs(0.5)).await;
            let t0 = now();
            let n = 12;
            for i in 0..n {
                bed.knative
                    .invoke(NodeId(0), "fn", Request::post("/", Bytes::from(vec![i])))
                    .await
                    .unwrap();
            }
            (now() - t0).as_secs_f64() / f64::from(n)
        });
        out.rows.push(AblationRow {
            group: "task redirection (§IX-D)",
            variant: label.into(),
            metric_s: mean_latency,
        });
        out.collectors.push((format!("routing/{label}"), obs));
    }
}

/// Run all five ablations at the given scale and tracing mode.
pub fn run_ablations(quick: bool, traced: bool) -> AblationsResult {
    let mut out = AblationsResult::default();
    ablate_reuse(quick, traced, &mut out);
    ablate_provisioning(quick, traced, &mut out);
    ablate_payload(quick, traced, &mut out);
    ablate_clustering(quick, traced, &mut out);
    ablate_routing(traced, &mut out);
    out
}
