//! Regenerate the §III-B cold-start measurement (paper: 1.48 s).
//!
//! Usage: `cargo run --release -p swf-bench --bin coldstart [--quick] [--trace] [--trace-out <path>] [--json <path>]`

use swf_bench::record::coldstart_json;
use swf_bench::{
    cli_config, dump_observability, emit_scenario_json, install_cli_obs, is_quick, ScenarioMeter,
};
use swf_core::experiments::{coldstart, setup_header};

fn main() {
    let config = cli_config();
    let (obs, _guard) = install_cli_obs();
    println!("{}", setup_header(&config));
    let meter = ScenarioMeter::start();
    let r = match coldstart::run(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("coldstart: experiment failed: {e}");
            std::process::exit(1);
        }
    };
    println!("## §III-B cold start");
    println!("first request (cold): {:.3} s", r.first_request);
    println!(
        "cold start (minus compute): {:.3} s   [paper: 1.48 s]",
        r.cold_start
    );
    println!("warm request: {:.3} s", r.warm_request);
    dump_observability(&[("coldstart", &obs)]);
    emit_scenario_json(
        "coldstart",
        is_quick(),
        coldstart_json(&r),
        &[("coldstart", &obs)],
        meter,
    );
}
