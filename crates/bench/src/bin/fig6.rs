//! Regenerate Figure 6: average makespan of the slowest of 10 concurrent
//! workflows for the five highlighted environment mixes.
//!
//! Usage: `cargo run --release -p swf-bench --bin fig6 [--quick] [--trace] [--trace-out <path>] [--json <path>]`

use swf_bench::record::fig6_json;
use swf_bench::{
    cli_config, dump_observability, emit_scenario_json, fig6_report, is_quick, ScenarioMeter,
};
use swf_core::experiments::{run_fig6, setup_header};

fn main() {
    let config = cli_config();
    println!("{}", setup_header(&config));
    let (workflows, tasks, repeats) = if is_quick() { (4, 4, 1) } else { (10, 10, 3) };
    let meter = ScenarioMeter::start();
    let result = run_fig6(&config, workflows, tasks, repeats);
    println!("{}", fig6_report(&result));
    let collectors: Vec<(&str, &swf_obs::Obs)> =
        result.rows.iter().map(|r| (r.label, &r.obs)).collect();
    dump_observability(&collectors);
    emit_scenario_json("fig6", is_quick(), fig6_json(&result), &collectors, meter);
}
