//! Regenerate Figure 5: the ternary performance–isolation trade-off.
//! Sweeps environment mixes over the simplex; each point runs 10 concurrent
//! 10-task workflows and reports the average slowest-workflow makespan.
//!
//! Usage: `cargo run --release -p swf-bench --bin fig5 [--quick]`

use swf_bench::{cli_config, fig5_report, is_quick};
use swf_core::experiments::{run_fig5, setup_header};

fn main() {
    let config = cli_config();
    println!("{}", setup_header(&config));
    let (steps, workflows, tasks, repeats) = if is_quick() {
        (2, 4, 4, 1)
    } else {
        (4, 10, 10, 3)
    };
    let result = run_fig5(&config, steps, workflows, tasks, repeats);
    println!("{}", fig5_report(&result));
}
