//! Regenerate Figure 5: the ternary performance–isolation trade-off.
//! Sweeps environment mixes over the simplex; each point runs 10 concurrent
//! 10-task workflows and reports the average slowest-workflow makespan.
//!
//! Usage: `cargo run --release -p swf-bench --bin fig5 [--quick] [--trace] [--trace-out <path>] [--json <path>]`

use swf_bench::record::fig5_json;
use swf_bench::{
    cli_config, dump_observability, emit_scenario_json, fig5_report, is_quick, ScenarioMeter,
};
use swf_core::experiments::{run_fig5, setup_header};

fn main() {
    let config = cli_config();
    println!("{}", setup_header(&config));
    let (steps, workflows, tasks, repeats) = if is_quick() {
        (2, 4, 4, 1)
    } else {
        (4, 10, 10, 3)
    };
    let meter = ScenarioMeter::start();
    let result = run_fig5(&config, steps, workflows, tasks, repeats);
    println!("{}", fig5_report(&result));
    let labels: Vec<String> = result
        .rows
        .iter()
        .map(|r| {
            format!(
                "n{:.2}-s{:.2}-c{:.2}",
                r.mix.native, r.mix.serverless, r.mix.container
            )
        })
        .collect();
    let collectors: Vec<(&str, &swf_obs::Obs)> = labels
        .iter()
        .map(String::as_str)
        .zip(&result.collectors)
        .collect();
    dump_observability(&collectors);
    emit_scenario_json("fig5", is_quick(), fig5_json(&result), &collectors, meter);
}
