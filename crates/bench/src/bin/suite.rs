//! The unified benchmark suite and perf-regression gate.
//!
//! Run every figure scenario (fig1, fig2, fig5, fig6, coldstart,
//! ablations) with span collection on, and write one machine-readable
//! `BENCH_<label>.json` at the workspace root — per-scenario virtual-time
//! results, swf-obs metrics/critical-path snapshots, and the host-side
//! engine profile (build with `--features host-profiling` for wall-clock
//! and events/sec). Or compare two recorded documents, classifying every
//! delta as drift (virtual-time change — always an error), regression /
//! improvement (wall-clock beyond the noise threshold), or info.
//!
//! Usage:
//!   cargo run --release -p swf-bench --bin suite -- [--quick] [--label <l>] [--json <path>] [--trace-out <path>] [--spans-out <path>] [--series-out <path>]
//!   cargo run --release -p swf-bench --bin suite -- --list
//!   cargo run --release -p swf-bench --bin suite -- compare <old.json> <new.json> [--noise <frac>] [--fail-on-regression]
//!
//! `--label apps` runs the swf-apps scenario set (every application ×
//! every venue) instead of the figure scenarios, writing
//! `BENCH_apps.json`. `--list` enumerates every label and its scenarios.
//!
//! `--trace-out` additionally writes the whole suite as one Chrome-trace
//! file (the same export as the figure binaries' `--trace` flags).
//! `--spans-out` writes the lossless `swf-spans/v1` export — the `obsq`
//! query CLI's input. `--series-out` writes every scenario's sampled
//! telemetry time series. All three are deterministic: running the suite
//! twice produces byte-identical files.

use swf_bench::record::{json_out, workspace_root};
use swf_bench::suite::{run_suite, scenario_names};
use swf_bench::{is_quick, trace_out, write_chrome_trace};

fn flag_value(args: &[String], name: &str) -> Option<String> {
    let eq = format!("{name}=");
    for (i, a) in args.iter().enumerate() {
        if a == name {
            match args.get(i + 1) {
                Some(v) if !v.starts_with('-') => return Some(v.clone()),
                _ => {
                    eprintln!("error: {name} requires a value");
                    std::process::exit(2);
                }
            }
        }
        if let Some(v) = a.strip_prefix(&eq) {
            return Some(v.to_string());
        }
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("compare") {
        compare_main(&args[2..]);
        return;
    }
    if args.iter().any(|a| a == "--list") {
        list_main();
        return;
    }
    run_main(&args);
}

fn list_main() {
    println!("## suite — labels and their scenarios");
    for (label, note) in [
        ("quick", "figure scenarios at CI scale (--quick default)"),
        ("paper", "figure scenarios at paper scale (default)"),
        ("apps", "swf-apps: every application × every venue"),
        (
            "elastic",
            "swf-elastic: autoscaled spot pool vs static cluster, with cost ledger",
        ),
    ] {
        println!("  {label:<6} {}", scenario_names(label).join(", "));
        println!("  {:<6}   {note}", "");
    }
    println!("run one with: suite [--quick] --label <label>");
}

fn run_main(args: &[String]) {
    let quick = is_quick();
    let label = flag_value(args, "--label")
        .unwrap_or_else(|| if quick { "quick" } else { "paper" }.to_string());
    let run = run_suite(&label, quick, |name| {
        eprintln!(
            "suite: running {name} ({})",
            if quick { "quick" } else { "paper" }
        );
    });

    // Per-scenario host summary.
    println!("## suite — host profile per scenario");
    if let Some(scenarios) = run.document.get("scenarios").and_then(|s| s.as_object()) {
        for (name, scenario) in scenarios.iter() {
            let host = &scenario["host"];
            let wall = match host["wall_ms"].as_f64() {
                Some(ms) => format!("{ms:.0} ms"),
                None => "n/a (build with --features host-profiling)".to_string(),
            };
            println!(
                "  {name:<10} events={:<9} peak_ready_queue={:<5} wall={wall}",
                host["events_processed"].as_u64().unwrap_or(0),
                host["peak_ready_queue"].as_u64().unwrap_or(0),
            );
        }
    }
    let total = &run.document["host"];
    match (total["wall_ms"].as_f64(), total["events_per_sec"].as_f64()) {
        (Some(ms), Some(eps)) => println!(
            "  total      events={} wall={ms:.0} ms ({eps:.0} events/sec)",
            total["events_processed"].as_u64().unwrap_or(0)
        ),
        _ => println!(
            "  total      events={}",
            total["events_processed"].as_u64().unwrap_or(0)
        ),
    }

    let path = json_out().unwrap_or_else(|| {
        workspace_root()
            .join(format!("BENCH_{label}.json"))
            .to_string_lossy()
            .into_owned()
    });
    if let Err(e) = std::fs::write(&path, run.document.to_string()) {
        eprintln!("error: failed to write {path}: {e}");
        std::process::exit(1);
    }
    println!("bench record written to {path}");

    let refs: Vec<(&str, &swf_obs::Obs)> = run
        .collectors
        .iter()
        .map(|(l, o)| (l.as_str(), o))
        .collect();
    if let Some(trace_path) = trace_out() {
        match write_chrome_trace(&trace_path, &refs) {
            Ok(()) => println!("chrome trace written to {trace_path}"),
            Err(e) => {
                eprintln!("error: failed to write chrome trace to {trace_path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(spans_path) = flag_value(args, "--spans-out") {
        let doc = swf_obs::spans_to_json(&refs);
        if let Err(e) = std::fs::write(&spans_path, doc.to_string()) {
            eprintln!("error: failed to write spans to {spans_path}: {e}");
            std::process::exit(1);
        }
        println!("span export written to {spans_path}");
    }
    if let Some(series_path) = flag_value(args, "--series-out") {
        let doc = swf_bench::record::series_json(&refs);
        if let Err(e) = std::fs::write(&series_path, doc.to_string()) {
            eprintln!("error: failed to write series to {series_path}: {e}");
            std::process::exit(1);
        }
        println!("series export written to {series_path}");
    }
}

fn read_doc(path: &str) -> serde_json::Value {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {path} is not valid JSON: {e:?}");
            std::process::exit(2);
        }
    }
}

fn compare_main(args: &[String]) {
    // Positionals are everything that is neither a flag nor the value of a
    // value-taking flag (`compare a.json b.json --noise 0.90` must not read
    // `0.90` as a third path).
    let mut paths: Vec<&String> = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == "--noise" {
            iter.next();
        } else if !a.starts_with('-') {
            paths.push(a);
        }
    }
    let [old_path, new_path] = paths[..] else {
        eprintln!(
            "usage: suite compare <old.json> <new.json> [--noise <frac>] [--fail-on-regression]"
        );
        std::process::exit(2);
    };
    let noise = match flag_value(args, "--noise") {
        Some(v) => match v.parse::<f64>() {
            Ok(f) if f >= 0.0 => f,
            _ => {
                eprintln!("error: --noise must be a non-negative fraction (e.g. 0.10)");
                std::process::exit(2);
            }
        },
        None => 0.10,
    };
    let fail_on_regression = args.iter().any(|a| a == "--fail-on-regression");

    let old = read_doc(old_path);
    let new = read_doc(new_path);
    let report = swf_metrics::compare(&old, &new, noise);
    println!("## suite compare — {old_path} vs {new_path}");
    print!("{}", report.render());
    if report.has_drift() {
        eprintln!("FAIL: virtual-time drift — the simulation's results changed");
    } else if report.has_regression() {
        let verdict = if fail_on_regression { "FAIL" } else { "WARN" };
        eprintln!(
            "{verdict}: host-side performance regressed beyond the {:.0}% noise threshold",
            noise * 100.0
        );
    }
    std::process::exit(report.exit_code(fail_on_regression));
}
