//! Run the swf-apps dynamic-workflow applications: every application
//! (FINRA validation, ML training, ML inference, word-count MapReduce) in
//! every execution venue, printing makespans, expansion fan-outs and the
//! cross-venue bitwise-equality verdict.
//!
//! Usage: `cargo run --release -p swf-bench --bin apps [--quick] [--app <name>] [--trace] [--trace-out <path>] [--json <path>]`
//!
//! `--app finra|mltrain|mlinfer|wordcount` runs one application instead
//! of all four (still across all three venues).

use swf_apps::AppKind;
use swf_bench::apps::{apps_report, run_apps_only};
use swf_bench::{dump_observability, emit_scenario_json, install_cli_obs, is_quick, ScenarioMeter};

fn app_filter() -> Vec<AppKind> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        let value = if a == "--app" {
            args.get(i + 1).cloned()
        } else {
            a.strip_prefix("--app=").map(str::to_string)
        };
        let Some(name) = value else { continue };
        match AppKind::ALL.iter().find(|k| k.label() == name) {
            Some(&kind) => return vec![kind],
            None => {
                eprintln!(
                    "error: unknown app {name:?} (expected one of: {})",
                    AppKind::ALL.map(|k| k.label()).join(", ")
                );
                std::process::exit(2);
            }
        }
    }
    AppKind::ALL.to_vec()
}

fn main() {
    let (_obs, _guard) = install_cli_obs();
    let kinds = app_filter();
    let meter = ScenarioMeter::start();
    let result = run_apps_only(is_quick(), &kinds);
    println!("{}", apps_report(&result));
    let owned = result.collectors();
    let collectors: Vec<(&str, &swf_obs::Obs)> =
        owned.iter().map(|(l, o)| (l.as_str(), o)).collect();
    dump_observability(&collectors);
    emit_scenario_json("apps", is_quick(), result.to_json(), &collectors, meter);
}
