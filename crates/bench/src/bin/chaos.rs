//! Chaos seed sweep: the concurrent-workflow experiment under a sampled
//! fault profile, per-seed, with the calm baseline alongside.
//!
//! Usage: `cargo run --release -p swf-bench --bin chaos
//! [--quick] [--seeds <n>] [--seed <n>] [--seed-range <a>..<b>]
//! [--profile <name>] [--heavy] [--rescue] [--trace] [--trace-out <path>]
//! [--json <path>]`
//!
//! `--profile` selects a named fault profile (see
//! `swf_chaos::ChaosProfile::NAMES`); an unknown name is a hard error
//! listing the valid profiles. `--heavy` stays as an alias for
//! `--profile heavy`.
//!
//! Prints one row per seed (faults injected, task failures, workflows
//! completed, calm vs chaos makespan) and, for any seed whose workflows
//! did not all complete, the replayable `FaultPlan` JSON. With `--rescue`
//! the sweep arms rescue-resume and self-healing (continue-others DAGs,
//! liveness probes, circuit breaker) and reports goodput per seed:
//! rescue rounds, nodes and task-seconds salvaged, task-seconds wasted.
//! Final rescue DAGs of workflows that still failed are printed and
//! embedded in the `--json` record so CI can archive them as artifacts.

use swf_bench::record::ScenarioMeter;
use swf_bench::{
    cli_config, dump_observability, emit_scenario_json, install_cli_obs, is_quick, json_out,
};
use swf_chaos::{run_chaos, ChaosProfile, ChaosRunConfig, FaultPlan, SERVICE};
use swf_core::experiments::setup_header;
use swf_simcore::secs;

/// The seed pool: `--seed <n>` pins one seed, `--seed-range <a>..<b>`
/// sweeps a half-open range, `--seeds <n>` sweeps `0..n`, and the default
/// is `0..8` under `--quick`, `0..32` otherwise.
fn seed_list() -> Vec<u64> {
    let args: Vec<String> = std::env::args().collect();
    let value_of = |flag: &str| -> Option<String> {
        for (i, a) in args.iter().enumerate() {
            if a == flag {
                return args.get(i + 1).cloned();
            }
            if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
                return Some(v.to_string());
            }
        }
        None
    };
    if let Some(v) = value_of("--seed") {
        match v.parse() {
            Ok(n) => return vec![n],
            Err(_) => {
                eprintln!("error: --seed requires a number, got {v:?}");
                std::process::exit(2);
            }
        }
    }
    if let Some(v) = value_of("--seed-range") {
        if let Some((a, b)) = v.split_once("..") {
            if let (Ok(a), Ok(b)) = (a.parse::<u64>(), b.parse::<u64>()) {
                if a < b {
                    return (a..b).collect();
                }
            }
        }
        eprintln!("error: --seed-range requires <a>..<b> with a < b, got {v:?}");
        std::process::exit(2);
    }
    if let Some(v) = value_of("--seeds") {
        match v.parse::<u64>() {
            Ok(n) => return (0..n).collect(),
            Err(_) => {
                eprintln!("error: --seeds requires a number, got {v:?}");
                std::process::exit(2);
            }
        }
    }
    if is_quick() {
        (0..8).collect()
    } else {
        (0..32).collect()
    }
}

/// The fault profile selected by `--profile <name>` (or the legacy
/// `--heavy` alias; `light` by default). An unknown name is a typed
/// [`swf_chaos::UnknownProfile`] error: the sweep refuses to run rather
/// than silently falling back to the default profile.
fn profile_from_args() -> (String, ChaosProfile) {
    let args: Vec<String> = std::env::args().collect();
    let mut name: Option<String> = None;
    for (i, a) in args.iter().enumerate() {
        if a == "--profile" {
            match args.get(i + 1) {
                Some(v) if !v.starts_with('-') => name = Some(v.clone()),
                _ => {
                    eprintln!("error: --profile requires a name argument");
                    std::process::exit(2);
                }
            }
        }
        if let Some(v) = a.strip_prefix("--profile=") {
            name = Some(v.to_string());
        }
    }
    let name = name.unwrap_or_else(|| {
        if args.iter().any(|a| a == "--heavy") {
            "heavy".to_string()
        } else {
            "light".to_string()
        }
    });
    match ChaosProfile::by_name(&name) {
        Ok(p) => (name, p),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    // cli_config() is called for flag validation/uniformity; the chaos
    // harness derives its own jitter-free config from the seed.
    let config = cli_config();
    let (obs, _guard) = install_cli_obs();
    println!("{}", setup_header(&config));
    let profile = profile_from_args();
    let rescue = std::env::args().any(|a| a == "--rescue");
    let seeds = seed_list();
    println!(
        "## chaos seed sweep ({} profile, {} seeds{})",
        profile.0,
        seeds.len(),
        if rescue { ", rescue-resume armed" } else { "" }
    );
    if rescue {
        println!(
            "seed  inj  task-fail  done  calm [s]  chaos [s]  slowdown  rounds  salvaged  salv [s]  waste [s]"
        );
    } else {
        println!("seed  inj  task-fail  done  calm [s]  chaos [s]  slowdown");
    }

    let meter = ScenarioMeter::start();
    let mut rows = Vec::new();
    let mut failing: Vec<(u64, FaultPlan)> = Vec::new();
    let mut rescue_artifacts: Vec<(u64, String, String)> = Vec::new();
    for &seed in &seeds {
        let cfg = if rescue {
            ChaosRunConfig::rescue(seed)
        } else {
            ChaosRunConfig::quick(seed)
        };
        let plan = FaultPlan::sample(
            &profile.1,
            seed,
            secs(120.0),
            0,
            &[1, 2, 3],
            &[SERVICE.to_string()],
        );
        let calm = match run_chaos(&cfg, &FaultPlan::calm()) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: seed {seed} calm run failed: {e}");
                std::process::exit(1);
            }
        };
        let chaos = match run_chaos(&cfg, &plan) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: seed {seed} chaos run failed: {e}");
                std::process::exit(1);
            }
        };
        let calm_s = calm.makespan.as_secs_f64();
        let chaos_s = chaos.makespan.as_secs_f64();
        let slowdown = if calm_s > 0.0 { chaos_s / calm_s } else { 1.0 };
        if rescue {
            println!(
                "{seed:>4}  {:>3}  {:>9}  {:>2}/{}  {calm_s:>8.3}  {chaos_s:>9.3}  {slowdown:>7.2}x  {:>6}  {:>8}  {:>8.3}  {:>9.3}",
                chaos.injected,
                chaos.task_failures,
                chaos.completed(),
                chaos.outcomes.len(),
                chaos.goodput.rescue_rounds,
                chaos.goodput.nodes_salvaged,
                chaos.goodput.salvaged_task_s,
                chaos.goodput.wasted_task_s,
            );
        } else {
            println!(
                "{seed:>4}  {:>3}  {:>9}  {:>2}/{}  {calm_s:>8.3}  {chaos_s:>9.3}  {slowdown:>7.2}x",
                chaos.injected,
                chaos.task_failures,
                chaos.completed(),
                chaos.outcomes.len(),
            );
        }
        if !chaos.all_completed() {
            failing.push((seed, plan.clone()));
            for (wf, json) in &chaos.rescue_dags {
                rescue_artifacts.push((seed, wf.clone(), json.clone()));
            }
        }
        let mut row = serde_json::Map::new();
        row.insert("seed", serde_json::Value::from(seed));
        row.insert("injected", serde_json::Value::from(chaos.injected));
        row.insert(
            "task_failures",
            serde_json::Value::from(chaos.task_failures),
        );
        row.insert(
            "completed",
            serde_json::Value::from(chaos.completed() as u64),
        );
        row.insert(
            "workflows",
            serde_json::Value::from(chaos.outcomes.len() as u64),
        );
        row.insert("calm_makespan_s", serde_json::Value::from(calm_s));
        row.insert("chaos_makespan_s", serde_json::Value::from(chaos_s));
        if rescue {
            row.insert(
                "rescue_rounds",
                serde_json::Value::from(chaos.goodput.rescue_rounds),
            );
            row.insert(
                "nodes_salvaged",
                serde_json::Value::from(chaos.goodput.nodes_salvaged),
            );
            row.insert(
                "salvaged_task_s",
                serde_json::Value::from(chaos.goodput.salvaged_task_s),
            );
            row.insert(
                "wasted_task_s",
                serde_json::Value::from(chaos.goodput.wasted_task_s),
            );
            row.insert(
                "workflows_rescued",
                serde_json::Value::from(chaos.goodput.workflows_rescued),
            );
            row.insert(
                "mean_recovery_s",
                serde_json::Value::from(chaos.goodput.mean_recovery_s),
            );
        }
        rows.push(serde_json::Value::Object(row));
    }

    for (seed, plan) in &failing {
        println!("\nseed {seed} did not complete every workflow; replay with this plan:");
        println!("{plan}");
    }
    for (seed, wf, json) in &rescue_artifacts {
        println!("\nseed {seed} workflow {wf} final rescue DAG:");
        println!("{json}");
    }
    if json_out().is_some() {
        // The machine-readable record carries the sweep rows; failing
        // plans and final rescue DAGs are embedded so CI can archive
        // them as artifacts.
        let mut section = serde_json::Map::new();
        section.insert("profile", serde_json::Value::from(profile.0));
        section.insert("rescue", serde_json::Value::Bool(rescue));
        section.insert("rows", serde_json::Value::Array(rows.clone()));
        section.insert(
            "failing_plans",
            serde_json::Value::Array(failing.iter().map(|(_, p)| p.to_json()).collect()),
        );
        section.insert(
            "rescue_dags",
            serde_json::Value::Array(
                rescue_artifacts
                    .iter()
                    .map(|(seed, wf, json)| {
                        let mut m = serde_json::Map::new();
                        m.insert("seed", serde_json::Value::from(*seed));
                        m.insert("workflow", serde_json::Value::from(wf.clone()));
                        m.insert("rescue", serde_json::Value::from(json.clone()));
                        serde_json::Value::Object(m)
                    })
                    .collect(),
            ),
        );
        dump_observability(&[("chaos", &obs)]);
        emit_scenario_json(
            "chaos",
            is_quick(),
            serde_json::Value::Object(section),
            &[("chaos", &obs)],
            meter,
        );
    } else {
        dump_observability(&[("chaos", &obs)]);
    }
}
