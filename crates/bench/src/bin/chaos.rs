//! Chaos seed sweep: the concurrent-workflow experiment under a sampled
//! fault profile, per-seed, with the calm baseline alongside.
//!
//! Usage: `cargo run --release -p swf-bench --bin chaos
//! [--quick] [--seeds <n>] [--heavy] [--trace] [--trace-out <path>] [--json <path>]`
//!
//! Prints one row per seed (faults injected, task failures, workflows
//! completed, calm vs chaos makespan) and, for any seed whose workflows
//! did not all complete, the replayable `FaultPlan` JSON.

use swf_bench::record::ScenarioMeter;
use swf_bench::{
    cli_config, dump_observability, emit_scenario_json, install_cli_obs, is_quick, json_out,
};
use swf_chaos::{run_chaos, ChaosProfile, ChaosRunConfig, FaultPlan, SERVICE};
use swf_core::experiments::setup_header;
use swf_simcore::secs;

fn seeds_arg() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--seeds" {
            if let Some(n) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                return n;
            }
            eprintln!("error: --seeds requires a number");
            std::process::exit(2);
        }
        if let Some(n) = a.strip_prefix("--seeds=").and_then(|s| s.parse().ok()) {
            return n;
        }
    }
    if is_quick() {
        8
    } else {
        32
    }
}

fn main() {
    // cli_config() is called for flag validation/uniformity; the chaos
    // harness derives its own jitter-free config from the seed.
    let config = cli_config();
    let (obs, _guard) = install_cli_obs();
    println!("{}", setup_header(&config));
    let profile = if std::env::args().any(|a| a == "--heavy") {
        ("heavy", ChaosProfile::heavy())
    } else {
        ("light", ChaosProfile::light())
    };
    let seeds = seeds_arg();
    println!("## chaos seed sweep ({} profile, {seeds} seeds)", profile.0);
    println!("seed  inj  task-fail  done  calm [s]  chaos [s]  slowdown");

    let meter = ScenarioMeter::start();
    let mut rows = Vec::new();
    let mut failing: Vec<(u64, FaultPlan)> = Vec::new();
    for seed in 0..seeds {
        let cfg = ChaosRunConfig::quick(seed);
        let plan = FaultPlan::sample(
            &profile.1,
            seed,
            secs(120.0),
            0,
            &[1, 2, 3],
            &[SERVICE.to_string()],
        );
        let calm = match run_chaos(&cfg, &FaultPlan::calm()) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: seed {seed} calm run failed: {e}");
                std::process::exit(1);
            }
        };
        let chaos = match run_chaos(&cfg, &plan) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: seed {seed} chaos run failed: {e}");
                std::process::exit(1);
            }
        };
        let calm_s = calm.makespan.as_secs_f64();
        let chaos_s = chaos.makespan.as_secs_f64();
        println!(
            "{seed:>4}  {:>3}  {:>9}  {:>2}/{}  {calm_s:>8.3}  {chaos_s:>9.3}  {:>7.2}x",
            chaos.injected,
            chaos.task_failures,
            chaos.completed(),
            chaos.outcomes.len(),
            if calm_s > 0.0 { chaos_s / calm_s } else { 1.0 },
        );
        if !chaos.all_completed() {
            failing.push((seed, plan.clone()));
        }
        let mut row = serde_json::Map::new();
        row.insert("seed", serde_json::Value::from(seed));
        row.insert("injected", serde_json::Value::from(chaos.injected));
        row.insert(
            "task_failures",
            serde_json::Value::from(chaos.task_failures),
        );
        row.insert(
            "completed",
            serde_json::Value::from(chaos.completed() as u64),
        );
        row.insert(
            "workflows",
            serde_json::Value::from(chaos.outcomes.len() as u64),
        );
        row.insert("calm_makespan_s", serde_json::Value::from(calm_s));
        row.insert("chaos_makespan_s", serde_json::Value::from(chaos_s));
        rows.push(serde_json::Value::Object(row));
    }

    for (seed, plan) in &failing {
        println!("\nseed {seed} did not complete every workflow; replay with this plan:");
        println!("{plan}");
    }
    if json_out().is_some() {
        // The machine-readable record carries the sweep rows; failing
        // plans are embedded so CI can archive them as artifacts.
        let mut section = serde_json::Map::new();
        section.insert("profile", serde_json::Value::from(profile.0));
        section.insert("rows", serde_json::Value::Array(rows.clone()));
        section.insert(
            "failing_plans",
            serde_json::Value::Array(failing.iter().map(|(_, p)| p.to_json()).collect()),
        );
        dump_observability(&[("chaos", &obs)]);
        emit_scenario_json(
            "chaos",
            is_quick(),
            serde_json::Value::Object(section),
            &[("chaos", &obs)],
            meter,
        );
    } else {
        dump_observability(&[("chaos", &obs)]);
    }
}
