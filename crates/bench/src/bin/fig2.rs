//! Regenerate Figure 2: makespan of k parallel tasks under native, Knative
//! and traditional-container execution via HTCondor.
//!
//! Usage: `cargo run --release -p swf-bench --bin fig2 [--quick] [--trace] [--trace-out <path>] [--json <path>]`

use swf_bench::record::fig2_json;
use swf_bench::{
    cli_config, dump_observability, emit_scenario_json, fig2_report, install_cli_obs, is_quick,
    ScenarioMeter,
};
use swf_core::experiments::{fig2, setup_header};

fn main() {
    let mut config = cli_config();
    let (obs, _guard) = install_cli_obs();
    // The parallel experiment submits one burst of independent jobs: no
    // DAGMan, no claim reuse — per-job latency is negotiation-bound, not
    // activation-bound. Calibrated so the native slope lands near the
    // paper's 0.28 s/task.
    config.condor.negotiator.cycle_interval = swf_simcore::secs(5.0);
    config.condor.negotiator.activation_delay = swf_simcore::SimDuration::ZERO;
    println!("{}", setup_header(&config));
    let counts: Vec<usize> = if is_quick() {
        vec![4, 8, 16, 24]
    } else {
        vec![4, 8, 16, 24, 32, 48, 64]
    };
    let meter = ScenarioMeter::start();
    let result = fig2::run(&config, &counts);
    println!("{}", fig2_report(&result));
    dump_observability(&[("fig2", &obs)]);
    emit_scenario_json(
        "fig2",
        is_quick(),
        fig2_json(&result),
        &[("fig2", &obs)],
        meter,
    );
}
