//! Regenerate Figure 1: Docker vs Knative total/execution time for N
//! sequential matrix-multiplication tasks.
//!
//! Usage: `cargo run --release -p swf-bench --bin fig1 [--quick] [--trace] [--trace-out <path>] [--json <path>]`

use swf_bench::record::fig1_json;
use swf_bench::{
    cli_config, dump_observability, emit_scenario_json, fig1_report, install_cli_obs, is_quick,
    ScenarioMeter,
};
use swf_core::experiments::{fig1, setup_header};

fn main() {
    let config = cli_config();
    let (obs, _guard) = install_cli_obs();
    println!("{}", setup_header(&config));
    let counts: Vec<usize> = if is_quick() {
        vec![10, 20, 40, 80]
    } else {
        vec![10, 20, 40, 80, 120, 160]
    };
    let meter = ScenarioMeter::start();
    let result = match fig1::run(&config, &counts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fig1: experiment failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", fig1_report(&result));
    dump_observability(&[("fig1", &obs)]);
    emit_scenario_json(
        "fig1",
        is_quick(),
        fig1_json(&result),
        &[("fig1", &obs)],
        meter,
    );
}
