//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! 1. container reuse (shared warm containers vs one-per-request),
//! 2. pre-staged vs deferred provisioning (`min-scale` vs `initial-scale: 0`),
//! 3. pass-by-value payloads vs node-resident data,
//! 4. task clustering levels (the paper's §IX-C task resizing),
//! 5. routing policy: round-robin vs §IX-D least-loaded redirection.
//!
//! Usage: `cargo run --release -p swf-bench --bin ablations [--quick]`

use bytes::Bytes;

use swf_cluster::{NodeId, Request};
use swf_container::Workload;
use swf_core::experiments::{run_once, ConcurrentParams};
use swf_core::{ExperimentConfig, Provisioning, TestBed};
use swf_knative::{KService, RoutingPolicy};
use swf_metrics::Table;
use swf_pegasus::PlanOptions;
use swf_simcore::{now, secs, Sim};
use swf_workloads::EnvMix;

fn scale() -> (usize, usize) {
    if swf_bench::is_quick() {
        (3, 4)
    } else {
        (6, 8)
    }
}

/// Ablation 1 — container concurrency: shared containers (cc=0) vs
/// strict one-request-per-container (cc=1) on the all-serverless workload.
fn ablate_reuse(t: &mut Table) {
    let (workflows, tasks) = scale();
    for (label, cc) in [("containerConcurrency=1", 1u32), ("containerConcurrency=0 (shared)", 0)] {
        let mut config = ExperimentConfig::quick();
        config.container_concurrency = cc;
        let o = run_once(
            &config,
            ConcurrentParams {
                workflows,
                tasks_per_workflow: tasks,
                mix: EnvMix::ALL_SERVERLESS,
                ..ConcurrentParams::default()
            },
            0,
        );
        t.row(&[
            "container concurrency".into(),
            label.into(),
            format!("{:.1}", o.slowest),
        ]);
    }
}

/// Ablation 2 — provisioning: pre-staged warm pods vs deferred downloads.
fn ablate_provisioning(t: &mut Table) {
    let (workflows, tasks) = scale();
    for (label, mode) in [
        ("min-scale pre-staged", Provisioning::PreStage),
        ("initial-scale=0 deferred", Provisioning::Deferred),
    ] {
        let mut config = ExperimentConfig::quick();
        config.provisioning = mode;
        let o = run_once(
            &config,
            ConcurrentParams {
                workflows,
                tasks_per_workflow: tasks,
                mix: EnvMix::ALL_SERVERLESS,
                ..ConcurrentParams::default()
            },
            0,
        );
        t.row(&["provisioning".into(), label.into(), format!("{:.1}", o.slowest)]);
    }
}

/// Ablation 3 — pass-by-value serialization on vs off (node-resident data).
fn ablate_payload(t: &mut Table) {
    let (workflows, tasks) = scale();
    for (label, rate) in [("pass-by-value (4 MB/s ser.)", 4.0e6), ("node-resident data", 0.0)] {
        let mut config = ExperimentConfig::quick();
        config.serialization_rate = rate;
        // Use paper-sized matrices so payload costs are visible.
        config.matrix_dim = if swf_bench::is_quick() { 64 } else { 350 };
        let o = run_once(
            &config,
            ConcurrentParams {
                workflows,
                tasks_per_workflow: tasks,
                mix: EnvMix::ALL_SERVERLESS,
                ..ConcurrentParams::default()
            },
            0,
        );
        t.row(&["file management".into(), label.into(), format!("{:.1}", o.slowest)]);
    }
}

/// Ablation 4 — task clustering levels (§IX-C task resizing).
fn ablate_clustering(t: &mut Table) {
    let (workflows, tasks) = scale();
    for level in [1usize, 2, 4] {
        let config = ExperimentConfig::quick();
        let o = run_once(
            &config,
            ConcurrentParams {
                workflows,
                tasks_per_workflow: tasks,
                mix: EnvMix::ALL_NATIVE,
                plan: PlanOptions {
                    cluster_level: level,
                    retries: 0,
                },
            },
            0,
        );
        t.row(&[
            "task clustering (§IX-C)".into(),
            format!("cluster level {level}"),
            format!("{:.1}", o.slowest),
        ]);
    }
}

/// Ablation 5 — routing: round-robin vs least-loaded redirection (§IX-D)
/// under a skewed background load.
fn ablate_routing(t: &mut Table) {
    for (label, policy) in [
        ("round-robin", RoutingPolicy::RoundRobin),
        ("least-loaded (§IX-D)", RoutingPolicy::LeastLoaded),
    ] {
        let sim = Sim::new();
        let mean_latency = sim.block_on(async move {
            let mut config = ExperimentConfig::quick();
            config.knative.routing = policy;
            let bed = TestBed::boot(&config);
            bed.knative.register_fn(
                KService::new("fn", bed.image.clone())
                    .with_min_scale(2)
                    .with_max_scale(2),
                |req| {
                    let b = req.body.clone();
                    Workload::new(secs(0.458), move || Ok(b))
                },
            );
            bed.knative.wait_ready("fn", 2, secs(600.0)).await.unwrap();
            // Saturate the first pod's node with foreign compute.
            let rev = bed.knative.revisions().get("fn-00001").unwrap();
            let eps = bed
                .k8s
                .api()
                .endpoints()
                .get(&rev.k8s_service_name())
                .unwrap();
            let busy = bed.k8s.runtime(eps.ready[0].node).unwrap().node().clone();
            for _ in 0..busy.cores().capacity() {
                let busy = busy.clone();
                swf_simcore::spawn(async move {
                    busy.run_on_core(secs(10_000.0)).await;
                });
            }
            swf_simcore::sleep(secs(0.5)).await;
            let t0 = now();
            let n = 12;
            for i in 0..n {
                bed.knative
                    .invoke(NodeId(0), "fn", Request::post("/", Bytes::from(vec![i])))
                    .await
                    .unwrap();
            }
            (now() - t0).as_secs_f64() / f64::from(n)
        });
        t.row(&[
            "task redirection (§IX-D)".into(),
            label.into(),
            format!("{mean_latency:.2}"),
        ]);
    }
}

fn main() {
    let mut t = Table::new(
        "Ablations over the paper's design choices (seconds; lower is better)",
        &["ablation", "variant", "metric_s"],
    );
    ablate_reuse(&mut t);
    ablate_provisioning(&mut t);
    ablate_payload(&mut t);
    ablate_clustering(&mut t);
    ablate_routing(&mut t);
    println!("{}", t.render());
    println!("metric: rows 1-8 = slowest-workflow makespan; rows 9-10 = mean request latency");
}
