//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! 1. container reuse (shared warm containers vs one-per-request),
//! 2. pre-staged vs deferred provisioning (`min-scale` vs `initial-scale: 0`),
//! 3. pass-by-value payloads vs node-resident data,
//! 4. task clustering levels (the paper's §IX-C task resizing),
//! 5. routing policy: round-robin vs §IX-D least-loaded redirection.
//!
//! The measurement logic lives in [`swf_bench::ablations`], shared with
//! the `suite` runner.
//!
//! Usage: `cargo run --release -p swf-bench --bin ablations [--quick] [--trace] [--trace-out <path>] [--json <path>]`

use swf_bench::ablations::{run_ablations, AblationsResult};

fn main() {
    let meter = swf_bench::ScenarioMeter::start();
    let r = run_ablations(swf_bench::is_quick(), swf_bench::is_traced());
    println!("{}", r.table().render());
    println!("{}", AblationsResult::METRIC_NOTE);
    let refs: Vec<(&str, &swf_obs::Obs)> =
        r.collectors.iter().map(|(l, o)| (l.as_str(), o)).collect();
    swf_bench::dump_observability(&refs);
    swf_bench::emit_scenario_json(
        "ablations",
        swf_bench::is_quick(),
        r.to_json(),
        &refs,
        meter,
    );
}
