//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! 1. container reuse (shared warm containers vs one-per-request),
//! 2. pre-staged vs deferred provisioning (`min-scale` vs `initial-scale: 0`),
//! 3. pass-by-value payloads vs node-resident data,
//! 4. task clustering levels (the paper's §IX-C task resizing),
//! 5. routing policy: round-robin vs §IX-D least-loaded redirection.
//!
//! Usage: `cargo run --release -p swf-bench --bin ablations [--quick] [--trace] [--trace-out <path>]`

use bytes::Bytes;

use swf_cluster::{NodeId, Request};
use swf_container::Workload;
use swf_core::experiments::{run_once, ConcurrentParams};
use swf_core::{ExperimentConfig, Provisioning, TestBed};
use swf_knative::{KService, RoutingPolicy};
use swf_metrics::Table;
use swf_pegasus::PlanOptions;
use swf_simcore::{now, secs, Sim};
use swf_workloads::EnvMix;

fn scale() -> (usize, usize) {
    if swf_bench::is_quick() {
        (3, 4)
    } else {
        (6, 8)
    }
}

/// Ablation 1 — container concurrency: shared containers (cc=0) vs
/// strict one-request-per-container (cc=1) on the all-serverless workload.
fn ablate_reuse(t: &mut Table, collectors: &mut Vec<(String, swf_obs::Obs)>) {
    let (workflows, tasks) = scale();
    for (label, cc) in [
        ("containerConcurrency=1", 1u32),
        ("containerConcurrency=0 (shared)", 0),
    ] {
        let mut config = ExperimentConfig::quick();
        config.container_concurrency = cc;
        config.trace = swf_bench::is_traced();
        let o = run_once(
            &config,
            ConcurrentParams {
                workflows,
                tasks_per_workflow: tasks,
                mix: EnvMix::ALL_SERVERLESS,
                ..ConcurrentParams::default()
            },
            0,
        );
        t.row(&[
            "container concurrency".into(),
            label.into(),
            format!("{:.1}", o.slowest),
        ]);
        collectors.push((format!("reuse/{label}"), o.obs));
    }
}

/// Ablation 2 — provisioning: pre-staged warm pods vs deferred downloads.
fn ablate_provisioning(t: &mut Table, collectors: &mut Vec<(String, swf_obs::Obs)>) {
    let (workflows, tasks) = scale();
    for (label, mode) in [
        ("min-scale pre-staged", Provisioning::PreStage),
        ("initial-scale=0 deferred", Provisioning::Deferred),
    ] {
        let mut config = ExperimentConfig::quick();
        config.provisioning = mode;
        config.trace = swf_bench::is_traced();
        let o = run_once(
            &config,
            ConcurrentParams {
                workflows,
                tasks_per_workflow: tasks,
                mix: EnvMix::ALL_SERVERLESS,
                ..ConcurrentParams::default()
            },
            0,
        );
        t.row(&[
            "provisioning".into(),
            label.into(),
            format!("{:.1}", o.slowest),
        ]);
        collectors.push((format!("provisioning/{label}"), o.obs));
    }
}

/// Ablation 3 — pass-by-value serialization on vs off (node-resident data).
fn ablate_payload(t: &mut Table, collectors: &mut Vec<(String, swf_obs::Obs)>) {
    let (workflows, tasks) = scale();
    for (label, rate) in [
        ("pass-by-value (4 MB/s ser.)", 4.0e6),
        ("node-resident data", 0.0),
    ] {
        let mut config = ExperimentConfig::quick();
        config.serialization_rate = rate;
        config.trace = swf_bench::is_traced();
        // Use paper-sized matrices so payload costs are visible.
        config.matrix_dim = if swf_bench::is_quick() { 64 } else { 350 };
        let o = run_once(
            &config,
            ConcurrentParams {
                workflows,
                tasks_per_workflow: tasks,
                mix: EnvMix::ALL_SERVERLESS,
                ..ConcurrentParams::default()
            },
            0,
        );
        t.row(&[
            "file management".into(),
            label.into(),
            format!("{:.1}", o.slowest),
        ]);
        collectors.push((format!("payload/{label}"), o.obs));
    }
}

/// Ablation 4 — task clustering levels (§IX-C task resizing).
fn ablate_clustering(t: &mut Table, collectors: &mut Vec<(String, swf_obs::Obs)>) {
    let (workflows, tasks) = scale();
    for level in [1usize, 2, 4] {
        let mut config = ExperimentConfig::quick();
        config.trace = swf_bench::is_traced();
        let o = run_once(
            &config,
            ConcurrentParams {
                workflows,
                tasks_per_workflow: tasks,
                mix: EnvMix::ALL_NATIVE,
                plan: PlanOptions {
                    cluster_level: level,
                    retries: 0,
                },
            },
            0,
        );
        t.row(&[
            "task clustering (§IX-C)".into(),
            format!("cluster level {level}"),
            format!("{:.1}", o.slowest),
        ]);
        collectors.push((format!("clustering/level-{level}"), o.obs));
    }
}

/// Ablation 5 — routing: round-robin vs least-loaded redirection (§IX-D)
/// under a skewed background load.
fn ablate_routing(t: &mut Table, collectors: &mut Vec<(String, swf_obs::Obs)>) {
    for (label, policy) in [
        ("round-robin", RoutingPolicy::RoundRobin),
        ("least-loaded (§IX-D)", RoutingPolicy::LeastLoaded),
    ] {
        let obs = if swf_bench::is_traced() {
            swf_obs::Obs::enabled()
        } else {
            swf_obs::Obs::disabled()
        };
        let obs2 = obs.clone();
        let sim = Sim::new();
        let mean_latency = sim.block_on(async move {
            let _obs_guard = swf_obs::install(obs2);
            let mut config = ExperimentConfig::quick();
            config.knative.routing = policy;
            let bed = TestBed::boot(&config);
            bed.knative.register_fn(
                KService::new("fn", bed.image.clone())
                    .with_min_scale(2)
                    .with_max_scale(2),
                |req| {
                    let b = req.body.clone();
                    Workload::new(secs(0.458), move || Ok(b))
                },
            );
            bed.knative.wait_ready("fn", 2, secs(600.0)).await.unwrap();
            // Saturate the first pod's node with foreign compute.
            let rev = bed.knative.revisions().get("fn-00001").unwrap();
            let eps = bed
                .k8s
                .api()
                .endpoints()
                .get(&rev.k8s_service_name())
                .unwrap();
            let busy = bed.k8s.runtime(eps.ready[0].node).unwrap().node().clone();
            for _ in 0..busy.cores().capacity() {
                let busy = busy.clone();
                swf_simcore::spawn(async move {
                    busy.run_on_core(secs(10_000.0)).await;
                });
            }
            swf_simcore::sleep(secs(0.5)).await;
            let t0 = now();
            let n = 12;
            for i in 0..n {
                bed.knative
                    .invoke(NodeId(0), "fn", Request::post("/", Bytes::from(vec![i])))
                    .await
                    .unwrap();
            }
            (now() - t0).as_secs_f64() / f64::from(n)
        });
        t.row(&[
            "task redirection (§IX-D)".into(),
            label.into(),
            format!("{mean_latency:.2}"),
        ]);
        collectors.push((format!("routing/{label}"), obs));
    }
}

fn main() {
    let mut t = Table::new(
        "Ablations over the paper's design choices (seconds; lower is better)",
        &["ablation", "variant", "metric_s"],
    );
    let mut collectors: Vec<(String, swf_obs::Obs)> = Vec::new();
    ablate_reuse(&mut t, &mut collectors);
    ablate_provisioning(&mut t, &mut collectors);
    ablate_payload(&mut t, &mut collectors);
    ablate_clustering(&mut t, &mut collectors);
    ablate_routing(&mut t, &mut collectors);
    println!("{}", t.render());
    println!("metric: rows 1-8 = slowest-workflow makespan; rows 9-10 = mean request latency");
    let refs: Vec<(&str, &swf_obs::Obs)> =
        collectors.iter().map(|(l, o)| (l.as_str(), o)).collect();
    swf_bench::dump_observability(&refs);
}
