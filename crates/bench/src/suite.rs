//! The unified benchmark suite: every figure scenario in one run,
//! emitting one machine-readable `BENCH_<label>.json` document.
//!
//! Each scenario mirrors its standalone binary's configuration exactly
//! (same counts, same config overrides), runs with span collection
//! enabled, and is metered by [`crate::record::ScenarioMeter`] so the
//! document carries every section per scenario: `virtual` results,
//! `obs` snapshots, the `host` engine profile, and (for the `elastic`
//! label) the `cost` ledger.

use swf_core::experiments::{coldstart, fig1, fig2, run_fig5, run_fig6};
use swf_core::ExperimentConfig;

use crate::ablations::run_ablations;
use crate::record::{
    bench_document, coldstart_json, fig1_json, fig2_json, fig5_json, fig6_json, obs_json,
    scenario_json_with_cost, slo_json, ScenarioMeter,
};

/// What one scenario yields: the deterministic `virtual` section, its
/// labelled span collectors, and (for cost-aware scenarios) the `cost`
/// section.
pub struct ScenarioOutput {
    /// The `virtual` JSON section.
    pub virtual_section: serde_json::Value,
    /// Labelled collectors for the `obs`/`slo` sections and trace export.
    pub collectors: Vec<(String, swf_obs::Obs)>,
    /// The `cost` JSON section; `None` for scenarios without a ledger.
    pub cost: Option<serde_json::Value>,
}

impl ScenarioOutput {
    fn plain(
        virtual_section: serde_json::Value,
        collectors: Vec<(String, swf_obs::Obs)>,
    ) -> ScenarioOutput {
        ScenarioOutput {
            virtual_section,
            collectors,
            cost: None,
        }
    }
}

/// One full suite run: the document plus every labelled span collector
/// (for an optional combined Chrome-trace export).
pub struct SuiteRun {
    /// The assembled `BENCH_*.json` document.
    pub document: serde_json::Value,
    /// Every scenario's labelled collectors, in scenario order.
    pub collectors: Vec<(String, swf_obs::Obs)>,
}

/// The suite's experiment config: quick or paper scale, tracing always
/// on (the document's `obs` section wants populated collectors; span
/// collection never changes virtual-time results).
fn suite_config(quick: bool) -> ExperimentConfig {
    let mut c = if quick {
        let mut c = ExperimentConfig::quick();
        // Match `cli_config`: paper-shaped timing, small matrices.
        c.matrix_dim = 32;
        c
    } else {
        ExperimentConfig::paper()
    };
    c.trace = true;
    // Sample telemetry series on the virtual clock. Read-only on the
    // registry, so `virtual` results stay bit-identical with or without it.
    c.series_interval_s = if quick { 5.0 } else { 10.0 };
    c
}

fn scenario_fig1(quick: bool) -> ScenarioOutput {
    let config = suite_config(quick);
    let obs = swf_obs::Obs::enabled();
    let _guard = swf_obs::install(obs.clone());
    let counts: Vec<usize> = if quick {
        vec![10, 20, 40, 80]
    } else {
        vec![10, 20, 40, 80, 120, 160]
    };
    let r = fig1::run(&config, &counts).expect("fig1 scenario failed");
    ScenarioOutput::plain(fig1_json(&r), vec![("fig1".to_string(), obs)])
}

fn scenario_fig2(quick: bool) -> ScenarioOutput {
    let mut config = suite_config(quick);
    // Mirror the fig2 binary: one burst of independent jobs, negotiation-
    // bound — calibrated so the native slope lands near the paper's 0.28.
    config.condor.negotiator.cycle_interval = swf_simcore::secs(5.0);
    config.condor.negotiator.activation_delay = swf_simcore::SimDuration::ZERO;
    let obs = swf_obs::Obs::enabled();
    let _guard = swf_obs::install(obs.clone());
    let counts: Vec<usize> = if quick {
        vec![4, 8, 16, 24]
    } else {
        vec![4, 8, 16, 24, 32, 48, 64]
    };
    let r = fig2::run(&config, &counts);
    ScenarioOutput::plain(fig2_json(&r), vec![("fig2".to_string(), obs)])
}

fn scenario_fig5(quick: bool) -> ScenarioOutput {
    let config = suite_config(quick);
    let (steps, workflows, tasks, repeats) = if quick { (2, 4, 4, 1) } else { (4, 10, 10, 3) };
    let r = run_fig5(&config, steps, workflows, tasks, repeats);
    let collectors = r
        .rows
        .iter()
        .zip(&r.collectors)
        .map(|(row, obs)| {
            (
                format!(
                    "fig5/n{:.2}-s{:.2}-c{:.2}",
                    row.mix.native, row.mix.serverless, row.mix.container
                ),
                obs.clone(),
            )
        })
        .collect();
    ScenarioOutput::plain(fig5_json(&r), collectors)
}

fn scenario_fig6(quick: bool) -> ScenarioOutput {
    let config = suite_config(quick);
    let (workflows, tasks, repeats) = if quick { (4, 4, 1) } else { (10, 10, 3) };
    let r = run_fig6(&config, workflows, tasks, repeats);
    let collectors = r
        .rows
        .iter()
        .map(|row| (format!("fig6/{}", row.label), row.obs.clone()))
        .collect();
    ScenarioOutput::plain(fig6_json(&r), collectors)
}

fn scenario_coldstart(quick: bool) -> ScenarioOutput {
    let config = suite_config(quick);
    let obs = swf_obs::Obs::enabled();
    let _guard = swf_obs::install(obs.clone());
    let r = coldstart::run(&config).expect("coldstart scenario failed");
    ScenarioOutput::plain(coldstart_json(&r), vec![("coldstart".to_string(), obs)])
}

fn scenario_ablations(quick: bool) -> ScenarioOutput {
    let r = run_ablations(quick, true);
    let collectors = r
        .collectors
        .iter()
        .map(|(label, obs)| (format!("ablations/{label}"), obs.clone()))
        .collect();
    ScenarioOutput::plain(r.to_json(), collectors)
}

fn scenario_apps(quick: bool) -> ScenarioOutput {
    let r = crate::apps::run_apps(quick);
    let collectors = r.collectors();
    ScenarioOutput::plain(r.to_json(), collectors)
}

fn scenario_elastic(quick: bool) -> ScenarioOutput {
    let r = crate::elastic::run_elastic_scenario(quick);
    ScenarioOutput {
        virtual_section: r.to_json(),
        collectors: r.collectors(),
        cost: Some(r.cost_json()),
    }
}

type ScenarioFn = fn(bool) -> ScenarioOutput;

/// The default (figure) scenario set, run under the `quick`/`paper`
/// labels. The `apps` label runs the swf-apps scenario on its own so its
/// document never perturbs the figure baselines.
const FIGURE_SCENARIOS: [(&str, ScenarioFn); 6] = [
    ("fig1", scenario_fig1),
    ("fig2", scenario_fig2),
    ("fig5", scenario_fig5),
    ("fig6", scenario_fig6),
    ("coldstart", scenario_coldstart),
    ("ablations", scenario_ablations),
];

const APPS_SCENARIOS: [(&str, ScenarioFn); 1] = [("apps", scenario_apps)];

const ELASTIC_SCENARIOS: [(&str, ScenarioFn); 1] = [("elastic", scenario_elastic)];

fn scenarios_for(label: &str) -> &'static [(&'static str, ScenarioFn)] {
    match label {
        "apps" => &APPS_SCENARIOS,
        "elastic" => &ELASTIC_SCENARIOS,
        _ => &FIGURE_SCENARIOS,
    }
}

/// The scenario names the given suite label runs (`--list` support).
pub fn scenario_names(label: &str) -> Vec<&'static str> {
    scenarios_for(label).iter().map(|(n, _)| *n).collect()
}

/// Run every scenario of the given label and assemble the benchmark
/// document. `on_scenario` is called with each scenario's name as it
/// starts, so callers can narrate progress.
pub fn run_suite(label: &str, quick: bool, mut on_scenario: impl FnMut(&str)) -> SuiteRun {
    let mut entries = Vec::new();
    let mut all_collectors = Vec::new();
    for &(name, run) in scenarios_for(label) {
        on_scenario(name);
        let meter = ScenarioMeter::start();
        let out = run(quick);
        let host = meter.finish();
        let refs: Vec<(&str, &swf_obs::Obs)> = out
            .collectors
            .iter()
            .map(|(l, o)| (l.as_str(), o))
            .collect();
        entries.push((
            name.to_string(),
            scenario_json_with_cost(
                out.virtual_section,
                obs_json(&refs),
                slo_json(&refs),
                out.cost,
                host,
            ),
        ));
        all_collectors.extend(out.collectors);
    }
    SuiteRun {
        document: bench_document(label, quick, entries),
        collectors: all_collectors,
    }
}
