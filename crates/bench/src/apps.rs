//! The swf-apps benchmark scenario: every application × every execution
//! venue, with runtime-expansion statistics and the cross-venue bitwise
//! equality verdict. Shared between the `apps` binary and the suite's
//! `apps` label.

use swf_apps::{AppKind, AppRun};
use swf_workloads::ExecEnv;

/// The three venues, in canonical order.
pub const ENVS: [ExecEnv; 3] = [ExecEnv::Native, ExecEnv::Container, ExecEnv::Serverless];

/// One app × venue execution.
pub struct AppsRow {
    /// Application label.
    pub app: &'static str,
    /// Venue label.
    pub env: ExecEnv,
    /// End-to-end makespan in virtual seconds (all rounds plus expansion
    /// decisions).
    pub makespan: f64,
    /// Expansion rounds the workflow took.
    pub rounds: usize,
    /// Total jobs executed (initial + expanded).
    pub jobs: usize,
    /// Trigger firings: (trigger name, jobs added).
    pub expansions: Vec<(String, usize)>,
    /// FNV-1a fingerprint of the final output file.
    pub output_fingerprint: u64,
    /// FNV-1a fingerprint of the expanded DAG shape.
    pub shape_fingerprint: u64,
    /// Span collector of this run.
    pub obs: swf_obs::Obs,
}

/// The full apps scenario result.
pub struct AppsResult {
    /// One row per app × venue, app-major in canonical order.
    pub rows: Vec<AppsRow>,
}

impl AppsResult {
    /// Rows of one app, in venue order.
    pub fn app_rows(&self, app: &str) -> Vec<&AppsRow> {
        self.rows.iter().filter(|r| r.app == app).collect()
    }

    /// True when every venue of `app` produced the same output bytes and
    /// the same expanded DAG shape.
    pub fn bitwise_equal(&self, app: &str) -> bool {
        let rows = self.app_rows(app);
        rows.windows(2).all(|w| {
            w[0].output_fingerprint == w[1].output_fingerprint
                && w[0].shape_fingerprint == w[1].shape_fingerprint
        })
    }

    /// The deterministic `virtual` section of the scenario document.
    pub fn to_json(&self) -> serde_json::Value {
        let mut apps = serde_json::Map::new();
        for kind in AppKind::ALL {
            let label = kind.label();
            let app_rows = self.app_rows(label);
            if app_rows.is_empty() {
                // A filtered run (`apps --app <name>`) skips the others.
                continue;
            }
            let mut envs = serde_json::Map::new();
            for row in app_rows {
                let mut expansions = serde_json::Map::new();
                for (trigger, jobs_added) in &row.expansions {
                    expansions.insert(trigger.clone(), serde_json::Value::from(*jobs_added));
                }
                let mut obj = serde_json::Map::new();
                obj.insert("makespan_s", serde_json::Value::from(row.makespan));
                obj.insert("rounds", serde_json::Value::from(row.rounds));
                obj.insert("jobs", serde_json::Value::from(row.jobs));
                obj.insert("expansions", serde_json::Value::Object(expansions));
                obj.insert(
                    "output_fp",
                    serde_json::Value::from(format!("{:016x}", row.output_fingerprint)),
                );
                obj.insert(
                    "shape_fp",
                    serde_json::Value::from(format!("{:016x}", row.shape_fingerprint)),
                );
                envs.insert(row.env.to_string(), serde_json::Value::Object(obj));
            }
            let mut app_obj = serde_json::Map::new();
            app_obj.insert(
                "bitwise_equal",
                serde_json::Value::from(self.bitwise_equal(label)),
            );
            app_obj.insert("envs", serde_json::Value::Object(envs));
            apps.insert(label.to_string(), serde_json::Value::Object(app_obj));
        }
        let mut root = serde_json::Map::new();
        root.insert("apps", serde_json::Value::Object(apps));
        serde_json::Value::Object(root)
    }

    /// Labelled collectors (`apps/<app>/<env>`) for trace export.
    pub fn collectors(&self) -> Vec<(String, swf_obs::Obs)> {
        self.rows
            .iter()
            .map(|r| (format!("apps/{}/{}", r.app, r.env), r.obs.clone()))
            .collect()
    }
}

/// Run every application in every venue at quick or paper scale, tracing
/// on (the scenario document wants populated span collectors).
pub fn run_apps(quick: bool) -> AppsResult {
    run_apps_only(quick, &AppKind::ALL)
}

/// Run a subset of the applications (the `apps` binary's `--app` filter)
/// in every venue.
pub fn run_apps_only(quick: bool, kinds: &[AppKind]) -> AppsResult {
    let mut rows = Vec::new();
    for &kind in kinds {
        for env in ENVS {
            let mut run = AppRun::quick(kind, env).with_trace();
            run.quick = quick;
            let outcome = swf_apps::run_app(&run)
                .unwrap_or_else(|e| panic!("apps bench: {kind} in {env}: {e}"));
            rows.push(AppsRow {
                app: kind.label(),
                env,
                makespan: outcome.report.makespan.as_secs_f64(),
                rounds: outcome.report.rounds.len(),
                jobs: outcome.report.jobs_total,
                expansions: outcome
                    .report
                    .expansions
                    .iter()
                    .map(|e| (e.trigger.clone(), e.jobs_added))
                    .collect(),
                output_fingerprint: outcome.output_fingerprint,
                shape_fingerprint: outcome.report.shape_fingerprint(),
                obs: outcome.obs,
            });
        }
    }
    AppsResult { rows }
}

/// Render the apps scenario as a human-readable table.
pub fn apps_report(r: &AppsResult) -> String {
    let mut t = swf_metrics::Table::new(
        "swf-apps — dynamic workflows across execution venues",
        &[
            "app",
            "env",
            "makespan_s",
            "rounds",
            "jobs",
            "max_fanout",
            "bitwise",
        ],
    );
    for row in &r.rows {
        let max_fanout = row.expansions.iter().map(|(_, n)| *n).max().unwrap_or(0);
        t.row(&[
            row.app.to_string(),
            row.env.to_string(),
            format!("{:.2}", row.makespan),
            row.rounds.to_string(),
            row.jobs.to_string(),
            max_fanout.to_string(),
            if r.bitwise_equal(row.app) {
                "ok"
            } else {
                "MISMATCH"
            }
            .to_string(),
        ]);
    }
    let mut s = t.render();
    s.push_str("\nexpansions (trigger → jobs added, native venue):\n");
    for row in r.rows.iter().filter(|r| r.env == ExecEnv::Native) {
        for (trigger, n) in &row.expansions {
            s.push_str(&format!("  {}/{trigger}: +{n}\n", row.app));
        }
    }
    s
}
