//! Machine-readable benchmark records (`BENCH_*.json`).
//!
//! Every figure binary and the unified `suite` runner emit the same
//! document shape, so individual runs and full-suite runs can be fed to
//! `suite compare` interchangeably:
//!
//! ```json
//! {
//!   "schema": "swf-bench/v1",
//!   "label": "quick",
//!   "quick": true,
//!   "scenarios": {
//!     "fig1": {
//!       "virtual": { ...figure rows/fits, virtual seconds... },
//!       "obs":     { "metrics": {...}, "critical_paths": {...} },
//!       "host":    { "polls": n, ..., "wall_ms": null|x }
//!     }
//!   },
//!   "host": { ...summed counters... }
//! }
//! ```
//!
//! `virtual` and `obs` are pure functions of the simulated program and
//! its seeds — `suite compare` treats any bitwise difference there as
//! **drift**. `host` describes the cost of *running* the simulation
//! (engine counters always; `wall_ms`/`events_per_sec` only under the
//! `host-profiling` feature) and is compared with a noise threshold.

use swf_core::experiments::{ColdStartResult, Fig1Result, Fig2Result, Fig5Result, Fig6Result};
use swf_metrics::Line;
use swf_simcore::perf::{self, ExecProfile, HostStopwatch};

/// Schema identifier stamped into every document.
pub const SCHEMA: &str = "swf-bench/v1";

/// Parse the `--json <path>` flag (also `--json=<path>`). Exits with an
/// error when the flag is present without a path, mirroring `trace_out`.
pub fn json_out() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if a == "--json" {
            match args.get(i + 1) {
                Some(p) if !p.starts_with('-') => return Some(p.clone()),
                _ => {
                    eprintln!("error: --json requires a path argument");
                    std::process::exit(2);
                }
            }
        }
        if let Some(p) = a.strip_prefix("--json=") {
            return Some(p.to_string());
        }
    }
    None
}

/// Measures one scenario's host-side cost: executor counter deltas plus
/// (under `host-profiling`) wall-clock time. Start right before the
/// scenario runs; `finish()` yields the `host` JSON section.
pub struct ScenarioMeter {
    before: ExecProfile,
    watch: HostStopwatch,
}

impl ScenarioMeter {
    /// Start metering: snapshot counters, reset the ready-queue
    /// high-water mark, start the (feature-gated) stopwatch.
    #[allow(clippy::new_without_default)]
    pub fn start() -> ScenarioMeter {
        perf::reset_ready_peak();
        ScenarioMeter {
            before: perf::snapshot(),
            watch: HostStopwatch::start(),
        }
    }

    /// Stop metering and render the `host` section.
    pub fn finish(self) -> serde_json::Value {
        let wall_ms = self.watch.elapsed_ms();
        let delta = perf::snapshot().delta(&self.before);
        host_json(&delta, wall_ms)
    }
}

/// Render an executor profile (plus optional wall time) as the `host`
/// JSON section.
pub fn host_json(p: &ExecProfile, wall_ms: Option<f64>) -> serde_json::Value {
    let mut host = serde_json::Map::new();
    host.insert("polls", serde_json::Value::from(p.polls));
    host.insert("spawned", serde_json::Value::from(p.spawned));
    host.insert("wakes", serde_json::Value::from(p.wakes));
    host.insert(
        "timers_registered",
        serde_json::Value::from(p.timers_registered),
    );
    host.insert("timers_fired", serde_json::Value::from(p.timers_fired));
    host.insert("clock_advances", serde_json::Value::from(p.clock_advances));
    host.insert("peak_ready_queue", serde_json::Value::from(p.ready_peak));
    host.insert("events_processed", serde_json::Value::from(p.events()));
    host.insert("wall_ms", serde_json::Value::from(wall_ms));
    host.insert(
        "events_per_sec",
        serde_json::Value::from(perf::events_per_sec(p.events(), wall_ms)),
    );
    serde_json::Value::Object(host)
}

fn line_json(l: &Line) -> serde_json::Value {
    let mut obj = serde_json::Map::new();
    obj.insert("slope", serde_json::Value::from(l.slope));
    obj.insert("intercept", serde_json::Value::from(l.intercept));
    obj.insert("r_squared", serde_json::Value::from(l.r_squared));
    serde_json::Value::Object(obj)
}

/// Fig. 1 virtual-time record.
pub fn fig1_json(r: &Fig1Result) -> serde_json::Value {
    let rows: Vec<serde_json::Value> = r
        .rows
        .iter()
        .map(|row| {
            let mut obj = serde_json::Map::new();
            obj.insert("tasks", serde_json::Value::from(row.tasks));
            obj.insert("docker_total", serde_json::Value::from(row.docker_total));
            obj.insert("knative_total", serde_json::Value::from(row.knative_total));
            obj.insert("docker_exec", serde_json::Value::from(row.docker_exec));
            obj.insert("knative_exec", serde_json::Value::from(row.knative_exec));
            serde_json::Value::Object(obj)
        })
        .collect();
    let mut obj = serde_json::Map::new();
    obj.insert("rows", serde_json::Value::Array(rows));
    obj.insert("docker_fit", line_json(&r.docker_fit));
    obj.insert("knative_fit", line_json(&r.knative_fit));
    obj.insert(
        "slope_reduction",
        serde_json::Value::from(r.slope_reduction),
    );
    obj.insert("cold_start_s", serde_json::Value::from(r.cold_start));
    serde_json::Value::Object(obj)
}

/// Fig. 2 virtual-time record.
pub fn fig2_json(r: &Fig2Result) -> serde_json::Value {
    let rows: Vec<serde_json::Value> = r
        .rows
        .iter()
        .map(|row| {
            let mut obj = serde_json::Map::new();
            obj.insert("tasks", serde_json::Value::from(row.tasks));
            obj.insert("native", serde_json::Value::from(row.native));
            obj.insert("knative", serde_json::Value::from(row.knative));
            obj.insert("container", serde_json::Value::from(row.container));
            serde_json::Value::Object(obj)
        })
        .collect();
    let mut obj = serde_json::Map::new();
    obj.insert("rows", serde_json::Value::Array(rows));
    obj.insert("native_fit", line_json(&r.native_fit));
    obj.insert("knative_fit", line_json(&r.knative_fit));
    obj.insert("container_fit", line_json(&r.container_fit));
    serde_json::Value::Object(obj)
}

/// Fig. 5 virtual-time record (mix simplex sweep).
pub fn fig5_json(r: &Fig5Result) -> serde_json::Value {
    let rows: Vec<serde_json::Value> = r
        .rows
        .iter()
        .map(|row| {
            let mut obj = serde_json::Map::new();
            obj.insert("native", serde_json::Value::from(row.mix.native));
            obj.insert("serverless", serde_json::Value::from(row.mix.serverless));
            obj.insert("container", serde_json::Value::from(row.mix.container));
            obj.insert("makespan_s", serde_json::Value::from(row.makespan));
            serde_json::Value::Object(obj)
        })
        .collect();
    let mut obj = serde_json::Map::new();
    obj.insert("rows", serde_json::Value::Array(rows));
    serde_json::Value::Object(obj)
}

/// Fig. 6 virtual-time record (five highlighted mixes).
pub fn fig6_json(r: &Fig6Result) -> serde_json::Value {
    let rows: Vec<serde_json::Value> = r
        .rows
        .iter()
        .map(|row| {
            let mut obj = serde_json::Map::new();
            obj.insert("label", serde_json::Value::from(row.label));
            obj.insert("makespan_s", serde_json::Value::from(row.makespan));
            obj.insert("vs_native", serde_json::Value::from(row.vs_native));
            serde_json::Value::Object(obj)
        })
        .collect();
    let mut obj = serde_json::Map::new();
    obj.insert("rows", serde_json::Value::Array(rows));
    serde_json::Value::Object(obj)
}

/// §III-B cold-start virtual-time record.
pub fn coldstart_json(r: &ColdStartResult) -> serde_json::Value {
    let mut obj = serde_json::Map::new();
    obj.insert("first_request_s", serde_json::Value::from(r.first_request));
    obj.insert("cold_start_s", serde_json::Value::from(r.cold_start));
    obj.insert("warm_request_s", serde_json::Value::from(r.warm_request));
    serde_json::Value::Object(obj)
}

/// Render labelled collectors as the `obs` section: each label's metrics
/// registry plus the critical path of its slowest workflow (when the
/// collector recorded workflow spans).
pub fn obs_json(collectors: &[(&str, &swf_obs::Obs)]) -> serde_json::Value {
    let mut metrics = serde_json::Map::new();
    let mut critical_paths = serde_json::Map::new();
    for (label, obs) in collectors {
        if !obs.is_enabled() {
            continue;
        }
        metrics.insert(label.to_string(), obs.metrics_json());
        let cp = swf_core::slowest_workflow_breakdown(obs)
            .map_or(serde_json::Value::Null, |cp| cp.to_json());
        critical_paths.insert(label.to_string(), cp);
    }
    let mut obj = serde_json::Map::new();
    obj.insert("metrics", serde_json::Value::Object(metrics));
    obj.insert("critical_paths", serde_json::Value::Object(critical_paths));
    serde_json::Value::Object(obj)
}

/// Render labelled collectors as the `slo` section: the suite's default
/// SLO spec evaluated against each collector's finished run. Like
/// `virtual` and `obs`, this is a pure function of the simulated program
/// — `suite compare` treats any bitwise difference as drift.
pub fn slo_json(collectors: &[(&str, &swf_obs::Obs)]) -> serde_json::Value {
    let spec = swf_obs::SloSpec::suite_default();
    let mut reports = serde_json::Map::new();
    for (label, obs) in collectors {
        if !obs.is_enabled() {
            continue;
        }
        let report = swf_obs::evaluate_slo(&spec, &obs.metrics(), &obs.spans());
        reports.insert(label.to_string(), report.to_json());
    }
    let mut obj = serde_json::Map::new();
    obj.insert("spec", spec.to_json());
    obj.insert("reports", serde_json::Value::Object(reports));
    serde_json::Value::Object(obj)
}

/// Render labelled collectors' sampled time series, keyed by label.
/// Collectors that never sampled are omitted, so runs without a series
/// interval produce an empty object.
pub fn series_json(collectors: &[(&str, &swf_obs::Obs)]) -> serde_json::Value {
    let mut obj = serde_json::Map::new();
    for (label, obs) in collectors {
        if obs.has_series() {
            obj.insert(label.to_string(), obs.series_json());
        }
    }
    serde_json::Value::Object(obj)
}

/// Assemble one scenario entry from its four sections.
pub fn scenario_json(
    virtual_section: serde_json::Value,
    obs_section: serde_json::Value,
    slo_section: serde_json::Value,
    host_section: serde_json::Value,
) -> serde_json::Value {
    scenario_json_with_cost(
        virtual_section,
        obs_section,
        slo_section,
        None,
        host_section,
    )
}

/// Assemble one scenario entry, optionally carrying a `cost` section.
/// Like `virtual`/`obs`/`slo`, `cost` is a pure function of the simulated
/// program — `suite compare` diffs it bitwise — so only cost-aware
/// scenarios (the `elastic` label) emit it; everything else omits the key
/// and compares Null against Null.
pub fn scenario_json_with_cost(
    virtual_section: serde_json::Value,
    obs_section: serde_json::Value,
    slo_section: serde_json::Value,
    cost_section: Option<serde_json::Value>,
    host_section: serde_json::Value,
) -> serde_json::Value {
    let mut obj = serde_json::Map::new();
    obj.insert("virtual", virtual_section);
    obj.insert("obs", obs_section);
    obj.insert("slo", slo_section);
    if let Some(cost) = cost_section {
        obj.insert("cost", cost);
    }
    obj.insert("host", host_section);
    serde_json::Value::Object(obj)
}

/// Assemble a full benchmark document from named scenario entries,
/// summing the per-scenario host counters into a top-level aggregate.
pub fn bench_document(
    label: &str,
    quick: bool,
    scenarios: Vec<(String, serde_json::Value)>,
) -> serde_json::Value {
    let mut total = serde_json::Map::new();
    let mut wall_ms_total: Option<f64> = None;
    let counter_keys = [
        "polls",
        "spawned",
        "wakes",
        "timers_registered",
        "timers_fired",
        "clock_advances",
        "events_processed",
    ];
    for (_, scenario) in &scenarios {
        let host = scenario.get("host");
        for key in counter_keys {
            let v = host
                .and_then(|h| h.get(key))
                .and_then(serde_json::Value::as_u64)
                .unwrap_or(0);
            let slot = total
                .get(key)
                .and_then(serde_json::Value::as_u64)
                .unwrap_or(0);
            total.insert(key, serde_json::Value::from(slot + v));
        }
        if let Some(ms) = host
            .and_then(|h| h.get("wall_ms"))
            .and_then(serde_json::Value::as_f64)
        {
            wall_ms_total = Some(wall_ms_total.unwrap_or(0.0) + ms);
        }
    }
    let events = total
        .get("events_processed")
        .and_then(serde_json::Value::as_u64)
        .unwrap_or(0);
    total.insert("wall_ms", serde_json::Value::from(wall_ms_total));
    total.insert(
        "events_per_sec",
        serde_json::Value::from(perf::events_per_sec(events, wall_ms_total)),
    );

    let mut scen_map = serde_json::Map::new();
    for (name, scenario) in scenarios {
        scen_map.insert(name, scenario);
    }
    let mut doc = serde_json::Map::new();
    doc.insert("schema", serde_json::Value::from(SCHEMA));
    doc.insert("label", serde_json::Value::from(label));
    doc.insert("quick", serde_json::Value::from(quick));
    doc.insert("scenarios", serde_json::Value::Object(scen_map));
    doc.insert("host", serde_json::Value::Object(total));
    serde_json::Value::Object(doc)
}

/// The workspace root: nearest ancestor of the current directory whose
/// `Cargo.toml` declares `[workspace]`. Falls back to the current
/// directory so a stray invocation still writes *somewhere* sensible.
pub fn workspace_root() -> std::path::PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return cwd;
        }
    }
}

/// Write a single-scenario document to the `--json` path when the flag
/// is present: the uniform tail call of every figure binary.
pub fn emit_scenario_json(
    name: &str,
    quick: bool,
    virtual_section: serde_json::Value,
    collectors: &[(&str, &swf_obs::Obs)],
    meter: ScenarioMeter,
) {
    let Some(path) = json_out() else { return };
    let scenario = scenario_json(
        virtual_section,
        obs_json(collectors),
        slo_json(collectors),
        meter.finish(),
    );
    let doc = bench_document(name, quick, vec![(name.to_string(), scenario)]);
    match std::fs::write(&path, doc.to_string()) {
        Ok(()) => println!("bench record written to {path}"),
        Err(e) => {
            eprintln!("error: failed to write bench record to {path}: {e}");
            std::process::exit(1);
        }
    }
}
