//! Hierarchical timer wheel backing the executor's virtual clock.
//!
//! Pending timers live in 11 levels of 64 slots each: level `l` buckets a
//! deadline by bits `[6l, 6l+6)` of its absolute nanosecond timestamp, so
//! level 0 resolves exact instants and level 10 spans the top of the `u64`
//! range (6 x 11 = 66 bits saturate the timestamp width). A per-level
//! `u64` occupancy bitmap lets the next-deadline scan hop straight to the
//! earliest non-empty slot with a couple of `trailing_zeros` instructions
//! instead of walking a comparison heap.
//!
//! Invariants (each exercised by the property tests below against a
//! sorted-`Vec` oracle):
//!
//! - every stored entry's deadline agrees with [`TimerWheel::position`] on
//!   all bits above its level's window, so occupied slots never wrap
//!   around and the lowest occupied level always holds the globally
//!   earliest slot;
//! - all entries for one absolute instant share one slot in registration
//!   (`seq`) order, so a due batch fires same-deadline timers FIFO;
//! - cascades redistribute entries strictly downward in level, and only
//!   exact-instant batches ever fire;
//! - cancellation is lazy: cancelled entries are dropped when their slot
//!   drains, and a batch that turns out all-cancelled reports nothing, so
//!   the caller's clock never advances to a cancelled-only deadline.

use std::rc::Rc;

use crate::executor::TimerState;

/// Bits of the deadline consumed per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Levels needed so 6-bit windows cover a 64-bit timestamp.
const LEVELS: usize = 11;

/// One pending timer: absolute deadline, registration order, shared flags.
pub(crate) struct WheelEntry {
    /// Absolute deadline in nanoseconds of virtual time.
    pub(crate) at: u64,
    /// Registration sequence number; ties on `at` fire in `seq` order.
    pub(crate) seq: u64,
    /// Flags shared with the owning `Sleep`/`TimerHandle`.
    pub(crate) state: Rc<TimerState>,
}

/// The executor's pending-timer store. See the module docs for geometry.
pub(crate) struct TimerWheel {
    /// `LEVELS x SLOTS` buckets, flattened; index `level * SLOTS + slot`.
    /// Entries within one bucket are in insertion order, which (because
    /// `seq` is handed out monotonically and cascades preserve relative
    /// order) is also `seq` order.
    buckets: Vec<Vec<WheelEntry>>,
    /// Bit `s` of `occupied[l]` is set iff `buckets[l * SLOTS + s]` is
    /// non-empty (cancelled entries count until their slot drains).
    occupied: [u64; LEVELS],
    /// The wheel's internal time: every stored deadline is `>= position`.
    /// It advances as slots drain and may run ahead of the caller's clock
    /// while skipping cancelled entries — but only on the way to a `None`
    /// that leaves the wheel empty, after which [`TimerWheel::insert`]
    /// rebases it, so no live entry is ever stranded behind it.
    position: u64,
}

impl TimerWheel {
    /// An empty wheel positioned at `t = 0`.
    pub(crate) fn new() -> Self {
        TimerWheel {
            buckets: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            position: 0,
        }
    }

    /// True when no entries (live or cancelled) remain.
    pub(crate) fn is_empty(&self) -> bool {
        self.occupied.iter().all(|&bits| bits == 0)
    }

    /// Insert a timer with absolute deadline `at > now`, where `now` is
    /// the caller's clock. An empty wheel first rebases `position` to
    /// `now`: draining cancelled entries can leave `position` ahead of
    /// the clock, and without the rebase a later timer could be filed
    /// into the wheel's past and never fire.
    pub(crate) fn insert(&mut self, at: u64, seq: u64, state: Rc<TimerState>, now: u64) {
        if self.is_empty() {
            self.position = now;
        }
        debug_assert!(at > self.position, "timer inserted in the wheel's past");
        self.place(WheelEntry { at, seq, state });
    }

    /// Bucket an entry by the highest bit where its deadline differs from
    /// `position`. A deadline equal to `position` would have no such bit;
    /// `pop_next_due` never re-files one (it fires instead) and `insert`
    /// requires `at > position`, so the `map_or(0, ..)` arm only defends
    /// release builds, where it parks the entry in a level-0 slot that is
    /// immediately due.
    fn place(&mut self, entry: WheelEntry) {
        let level = (entry.at ^ self.position)
            .checked_ilog2()
            .map_or(0, |msb| msb / LEVEL_BITS) as usize;
        let slot = ((entry.at >> (level as u32 * LEVEL_BITS)) & (SLOTS as u64 - 1)) as usize;
        self.occupied[level] |= 1 << slot;
        self.buckets[level * SLOTS + slot].push(entry);
    }

    /// Advance to the earliest live deadline: drop cancelled entries
    /// along the way, cascade coarse slots downward, and return the batch
    /// of live entries due at that instant in registration order. Returns
    /// `None` — leaving the wheel empty — when no live timers remain.
    pub(crate) fn pop_next_due(&mut self) -> Option<(u64, Vec<WheelEntry>)> {
        loop {
            // The lowest occupied level holds the earliest slot: every
            // entry agrees with `position` above its level's window, so a
            // level-l slot starts inside position's level-(l+1) window
            // while any higher level's earliest slot starts beyond it.
            let level = (0..LEVELS).find(|&l| self.occupied[l] != 0)?;
            let slot = self.occupied[level].trailing_zeros() as usize;
            self.occupied[level] &= !(1 << slot);
            let entries = std::mem::take(&mut self.buckets[level * SLOTS + slot]);
            let shift = level as u32 * LEVEL_BITS;
            let slot_start =
                clear_low_bits(self.position, shift + LEVEL_BITS) | ((slot as u64) << shift);
            self.position = slot_start;
            let mut due = Vec::new();
            for entry in entries {
                if entry.state.cancelled.get() {
                    continue; // lazy cancellation: dropped on drain
                }
                if entry.at == slot_start {
                    due.push(entry);
                } else {
                    // Cascade: `at` now agrees with `position` on all bits
                    // at or above this level's window, so the entry lands
                    // strictly lower.
                    self.place(entry);
                }
            }
            if !due.is_empty() {
                debug_assert!(
                    due.windows(2).all(|w| w[0].seq < w[1].seq),
                    "due batch out of registration order"
                );
                return Some((slot_start, due));
            }
        }
    }
}

/// `x` with bits `[0, n)` cleared; tolerates `n >= 64` (the top level).
fn clear_low_bits(x: u64, n: u32) -> u64 {
    if n >= u64::BITS {
        0
    } else {
        x & !((1u64 << n) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;
    use std::cell::{Cell, RefCell};

    fn state() -> Rc<TimerState> {
        Rc::new(TimerState {
            waker: RefCell::new(None),
            fired: Cell::new(false),
            cancelled: Cell::new(false),
        })
    }

    /// The oracle: a flat vector popped by scanning for the minimum
    /// `(at, seq)`. Obviously correct, O(n) per pop.
    #[derive(Default)]
    struct OracleWheel {
        entries: Vec<(u64, u64, Rc<TimerState>)>,
    }

    impl OracleWheel {
        fn insert(&mut self, at: u64, seq: u64, state: Rc<TimerState>) {
            self.entries.push((at, seq, state));
        }

        fn pop_next_due(&mut self) -> Option<(u64, Vec<u64>)> {
            self.entries.retain(|(_, _, s)| !s.cancelled.get());
            let min_at = self.entries.iter().map(|&(at, _, _)| at).min()?;
            let mut seqs: Vec<u64> = self
                .entries
                .iter()
                .filter(|&&(at, _, _)| at == min_at)
                .map(|&(_, seq, _)| seq)
                .collect();
            seqs.sort_unstable();
            self.entries.retain(|&(at, _, _)| at != min_at);
            Some((min_at, seqs))
        }
    }

    /// Drive wheel and oracle in lockstep over one advance and compare
    /// the full batch: instant and seq order.
    fn advance_both(wheel: &mut TimerWheel, oracle: &mut OracleWheel) -> Option<u64> {
        let got = wheel.pop_next_due();
        let want = oracle.pop_next_due();
        match (got, want) {
            (None, None) => None,
            (Some((at, batch)), Some((want_at, want_seqs))) => {
                assert_eq!(at, want_at, "wheel advanced to the wrong instant");
                let seqs: Vec<u64> = batch.iter().map(|e| e.seq).collect();
                assert_eq!(seqs, want_seqs, "batch order diverged at t={at}");
                Some(at)
            }
            (got, want) => {
                let got = got.map(|(at, _)| at);
                let want = want.map(|(at, _)| at);
                assert_eq!(got, want, "wheel and oracle disagree on emptiness");
                None
            }
        }
    }

    #[test]
    fn same_deadline_fires_in_registration_order() {
        let mut wheel = TimerWheel::new();
        // Registered out of level order on purpose: a far timer first so
        // the shared deadline cascades from a coarse slot.
        let at = 3_000_000_007;
        for seq in 0..10u64 {
            wheel.insert(at, seq, state(), 0);
        }
        let (fired_at, batch) = wheel.pop_next_due().unwrap();
        assert_eq!(fired_at, at);
        assert_eq!(
            batch.iter().map(|e| e.seq).collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
        assert!(wheel.is_empty());
    }

    #[test]
    fn exact_window_start_deadline_fires_during_cascade() {
        // A deadline whose low bits are all zero sits exactly on its
        // coarse slot's start: the cascade must fire it rather than
        // re-file it (there is no lower level for it to land in).
        let mut wheel = TimerWheel::new();
        for level in 1..LEVELS {
            let at = 1u64 << (level as u32 * LEVEL_BITS);
            wheel.insert(at, level as u64, state(), 0);
        }
        let mut fired = Vec::new();
        while let Some((at, batch)) = wheel.pop_next_due() {
            assert_eq!(batch.len(), 1);
            fired.push(at);
        }
        let want: Vec<u64> = (1..LEVELS)
            .map(|l| 1u64 << (l as u32 * LEVEL_BITS))
            .collect();
        assert_eq!(fired, want);
    }

    #[test]
    fn level_rollover_boundaries_order_correctly() {
        // Deadlines straddling each level boundary (2^(6k) - 1, 2^(6k),
        // 2^(6k) + 1) must fire in time order despite landing in
        // different levels at insert time.
        let mut wheel = TimerWheel::new();
        let mut oracle = OracleWheel::default();
        let mut seq = 0u64;
        for k in 1..LEVELS as u32 {
            let base = 1u64 << (k * LEVEL_BITS);
            for at in [base - 1, base, base + 1] {
                wheel.insert(at, seq, state(), 0);
                oracle.insert(at, seq, state());
                seq += 1;
            }
        }
        while advance_both(&mut wheel, &mut oracle).is_some() {}
        assert!(wheel.is_empty());
    }

    #[test]
    fn far_future_deadlines_use_the_top_level() {
        // Bits [60, 64) index the top level, whose window exceeds the
        // timestamp width; the shift/mask arithmetic must saturate
        // rather than overflow.
        let mut wheel = TimerWheel::new();
        wheel.insert(u64::MAX, 0, state(), 0);
        wheel.insert(u64::MAX - 1, 1, state(), 0);
        wheel.insert(1u64 << 63, 2, state(), 0);
        let instants: Vec<u64> =
            std::iter::from_fn(|| wheel.pop_next_due().map(|(at, _)| at)).collect();
        assert_eq!(instants, vec![1u64 << 63, u64::MAX - 1, u64::MAX]);
    }

    #[test]
    fn cancelled_only_deadlines_never_surface() {
        let mut wheel = TimerWheel::new();
        let doomed = state();
        wheel.insert(500, 0, Rc::clone(&doomed), 0);
        wheel.insert(900, 1, state(), 0);
        doomed.cancelled.set(true);
        // The cancelled 500ns deadline is skipped without being reported.
        let (at, batch) = wheel.pop_next_due().unwrap();
        assert_eq!(at, 900);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].seq, 1);
        assert!(wheel.pop_next_due().is_none());
    }

    #[test]
    fn cancel_then_reinsert_at_same_deadline() {
        let mut wheel = TimerWheel::new();
        let doomed = state();
        wheel.insert(1_000_000, 0, Rc::clone(&doomed), 0);
        doomed.cancelled.set(true);
        wheel.insert(1_000_000, 1, state(), 0);
        let (at, batch) = wheel.pop_next_due().unwrap();
        assert_eq!(at, 1_000_000);
        assert_eq!(batch.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![1]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn insert_after_cancelled_drain_rebases_position() {
        // Draining a cancelled far-future timer walks `position` ahead of
        // the caller's clock. A timer inserted afterwards (with the clock
        // still early) must not be stranded in the wheel's past.
        let mut wheel = TimerWheel::new();
        let doomed = state();
        wheel.insert(1_000_000_000_000, 0, Rc::clone(&doomed), 0);
        doomed.cancelled.set(true);
        assert!(wheel.pop_next_due().is_none());
        assert!(wheel.is_empty());
        wheel.insert(1_000, 1, state(), 0);
        let (at, batch) = wheel.pop_next_due().unwrap();
        assert_eq!(at, 1_000);
        assert_eq!(batch[0].seq, 1);
    }

    #[test]
    fn randomized_programs_match_sorted_vec_oracle() {
        // Seeded insert/cancel/advance programs, wheel vs oracle in
        // lockstep. Durations mix a coarse grid (forcing same-deadline
        // ties), fine offsets, and far-future outliers so every level and
        // the cascade path are hit.
        for seed in 0..64u64 {
            let mut rng = DetRng::new(seed, "timer-wheel-property");
            let mut wheel = TimerWheel::new();
            let mut oracle = OracleWheel::default();
            let mut live: Vec<Rc<TimerState>> = Vec::new();
            let mut now = 0u64;
            let mut seq = 0u64;
            for _ in 0..400 {
                match rng.uniform_u64(0, 10) {
                    // insert (weighted heaviest)
                    0..=5 => {
                        let d = match rng.uniform_u64(0, 4) {
                            0 => 250_000_000 * rng.uniform_u64(1, 16), // coarse grid: ties
                            1 => rng.uniform_u64(1, 5_000_000_000),    // fine
                            2 => 1_000_000_000 * rng.uniform_u64(1, 300),
                            _ => 1_000_000_000 * rng.uniform_u64(1, 20_000), // far future
                        };
                        let at = now.saturating_add(d.max(1));
                        let s = state();
                        wheel.insert(at, seq, Rc::clone(&s), now);
                        oracle.insert(at, seq, Rc::clone(&s));
                        live.push(s);
                        seq += 1;
                    }
                    // cancel a random live timer
                    6..=7 => {
                        if !live.is_empty() {
                            let idx = rng.index(live.len());
                            live.swap_remove(idx).cancelled.set(true);
                        }
                    }
                    // advance one batch
                    _ => {
                        if let Some(at) = advance_both(&mut wheel, &mut oracle) {
                            now = at;
                        }
                        live.retain(|s| !s.cancelled.get());
                    }
                }
            }
            // Drain to empty: both sides must agree on every remaining batch.
            while advance_both(&mut wheel, &mut oracle).is_some() {}
            assert!(wheel.is_empty(), "seed {seed}: wheel not drained");
        }
    }
}
