//! Virtual time types.
//!
//! The simulation measures time as nanoseconds since simulation start. All
//! arithmetic is integer-exact so runs are bit-reproducible; floating point
//! only appears at the edges (construction from/conversion to seconds).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds since the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is
    /// in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Maximum representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Construct from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative or non-finite inputs
    /// clamp to zero; values beyond the representable range clamp to `MAX`.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs.is_nan() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by an integer factor, saturating.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scale by a float factor (clamped to be non-negative).
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// Convenience constructor: `secs(1.5)` as a `SimDuration`.
pub fn secs(s: f64) -> SimDuration {
    SimDuration::from_secs_f64(s)
}

/// Convenience constructor: whole milliseconds.
pub fn millis(ms: u64) -> SimDuration {
    SimDuration::from_millis(ms)
}

/// Convenience constructor: whole microseconds.
pub fn micros(us: u64) -> SimDuration {
    SimDuration::from_micros(us)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_millis(1500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!(t.as_secs_f64(), 1.5);
        let d = t - SimTime::from_nanos(500_000_000);
        assert_eq!(d, SimDuration::from_secs(1));
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!(b.since(a), SimDuration::from_nanos(10));
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(2.5).as_nanos(), 2_500_000_000);
    }

    #[test]
    fn duration_ops() {
        let d = secs(2.0);
        assert_eq!(d * 3, secs(6.0));
        assert_eq!(d / 2, secs(1.0));
        assert_eq!(d.mul_f64(0.5), secs(1.0));
        assert_eq!(secs(1.0) - secs(2.0), SimDuration::ZERO);
        let total: SimDuration = vec![secs(1.0), secs(2.0)].into_iter().sum();
        assert_eq!(total, secs(3.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", secs(1.25)), "1.250s");
        assert_eq!(format!("{}", SimTime::from_nanos(2_000_000_000)), "2.000s");
    }
}
