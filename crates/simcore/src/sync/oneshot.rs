//! Single-producer, single-consumer, single-value channel.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct Shared<T> {
    value: Option<T>,
    waker: Option<Waker>,
    sender_dropped: bool,
    receiver_dropped: bool,
}

/// Sending half. Consumed by [`Sender::send`].
pub struct Sender<T> {
    shared: Rc<RefCell<Shared<T>>>,
}

/// Receiving half; a future resolving to `Ok(value)` or
/// `Err(RecvError)` if the sender was dropped without sending.
pub struct Receiver<T> {
    shared: Rc<RefCell<Shared<T>>>,
}

/// The sender was dropped without sending a value.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "oneshot sender dropped without sending")
    }
}
impl std::error::Error for RecvError {}

/// Create a connected oneshot pair.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Rc::new(RefCell::new(Shared {
        value: None,
        waker: None,
        sender_dropped: false,
        receiver_dropped: false,
    }));
    (
        Sender {
            shared: Rc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Send the value; returns it back if the receiver is gone.
    pub fn send(self, value: T) -> Result<(), T> {
        let mut s = self.shared.borrow_mut();
        if s.receiver_dropped {
            return Err(value);
        }
        s.value = Some(value);
        if let Some(w) = s.waker.take() {
            drop(s);
            w.wake();
        }
        Ok(())
    }

    /// True if the receiving half has been dropped.
    pub fn is_closed(&self) -> bool {
        self.shared.borrow().receiver_dropped
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut s = self.shared.borrow_mut();
        s.sender_dropped = true;
        if let Some(w) = s.waker.take() {
            drop(s);
            w.wake();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.borrow_mut().receiver_dropped = true;
    }
}

impl<T> Future for Receiver<T> {
    type Output = Result<T, RecvError>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.shared.borrow_mut();
        if let Some(v) = s.value.take() {
            return Poll::Ready(Ok(v));
        }
        if s.sender_dropped {
            return Poll::Ready(Err(RecvError));
        }
        s.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{sleep, spawn, Sim};
    use crate::time::secs;

    #[test]
    fn send_then_recv() {
        let sim = Sim::new();
        let v = sim.block_on(async {
            let (tx, rx) = channel();
            spawn(async move {
                sleep(secs(1.0)).await;
                tx.send(99).unwrap();
            });
            rx.await.unwrap()
        });
        assert_eq!(v, 99);
    }

    #[test]
    fn dropped_sender_yields_err() {
        let sim = Sim::new();
        let r = sim.block_on(async {
            let (tx, rx) = channel::<u32>();
            spawn(async move {
                sleep(secs(1.0)).await;
                drop(tx);
            });
            rx.await
        });
        assert_eq!(r, Err(RecvError));
    }

    #[test]
    fn send_to_dropped_receiver_returns_value() {
        let sim = Sim::new();
        sim.block_on(async {
            let (tx, rx) = channel::<u32>();
            drop(rx);
            assert!(tx.is_closed());
            assert_eq!(tx.send(5), Err(5));
        });
    }

    #[test]
    fn recv_before_send_parks_and_wakes() {
        let sim = Sim::new();
        let v = sim.block_on(async {
            let (tx, rx) = channel();
            let h = spawn(async move { rx.await.unwrap() });
            sleep(secs(2.0)).await;
            tx.send("late").unwrap();
            h.await
        });
        assert_eq!(v, "late");
    }
}
