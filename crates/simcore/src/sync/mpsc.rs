//! Multi-producer, single-consumer FIFO channel (unbounded).
//!
//! Used as the message mailbox of every simulated component (API server,
//! kubelet, schedd, activator, ...). Unbounded is the right model here: real
//! control planes use TCP backlogs and retries; the simulation instead keeps
//! explicit queueing delay in the *service* model, not the transport.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct Shared<T> {
    queue: VecDeque<T>,
    recv_waker: Option<Waker>,
    senders: usize,
    receiver_alive: bool,
}

/// Sending half; clone freely.
pub struct Sender<T> {
    shared: Rc<RefCell<Shared<T>>>,
}

/// Receiving half.
pub struct Receiver<T> {
    shared: Rc<RefCell<Shared<T>>>,
}

/// All receivers are gone; the message is returned.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mpsc receiver dropped")
    }
}

/// Create a connected unbounded channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Rc::new(RefCell::new(Shared {
        queue: VecDeque::new(),
        recv_waker: None,
        senders: 1,
        receiver_alive: true,
    }));
    (
        Sender {
            shared: Rc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.borrow_mut().senders += 1;
        Sender {
            shared: Rc::clone(&self.shared),
        }
    }
}

impl<T> Sender<T> {
    /// Enqueue a message; fails only if the receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut s = self.shared.borrow_mut();
        if !s.receiver_alive {
            return Err(SendError(msg));
        }
        s.queue.push_back(msg);
        if let Some(w) = s.recv_waker.take() {
            drop(s);
            w.wake();
        }
        Ok(())
    }

    /// True when the receiver has been dropped.
    pub fn is_closed(&self) -> bool {
        !self.shared.borrow().receiver_alive
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut s = self.shared.borrow_mut();
        s.senders -= 1;
        if s.senders == 0 {
            if let Some(w) = s.recv_waker.take() {
                drop(s);
                w.wake();
            }
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.borrow_mut().receiver_alive = false;
    }
}

impl<T> Receiver<T> {
    /// Await the next message; `None` once every sender is dropped and the
    /// queue is drained.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { receiver: self }
    }

    /// Non-blocking pop.
    pub fn try_recv(&mut self) -> Option<T> {
        self.shared.borrow_mut().queue.pop_front()
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.borrow().queue.len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    receiver: &'a mut Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.receiver.shared.borrow_mut();
        if let Some(v) = s.queue.pop_front() {
            return Poll::Ready(Some(v));
        }
        if s.senders == 0 {
            return Poll::Ready(None);
        }
        s.recv_waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{sleep, spawn, Sim};
    use crate::time::secs;

    #[test]
    fn fifo_order_is_preserved() {
        let sim = Sim::new();
        let got = sim.block_on(async {
            let (tx, mut rx) = channel();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn recv_parks_until_send() {
        let sim = Sim::new();
        let v = sim.block_on(async {
            let (tx, mut rx) = channel();
            spawn(async move {
                sleep(secs(3.0)).await;
                tx.send(7u8).unwrap();
            });
            rx.recv().await
        });
        assert_eq!(v, Some(7));
    }

    #[test]
    fn recv_none_when_all_senders_dropped() {
        let sim = Sim::new();
        let v = sim.block_on(async {
            let (tx, mut rx) = channel::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            spawn(async move {
                sleep(secs(1.0)).await;
                drop(tx2);
            });
            rx.recv().await
        });
        assert_eq!(v, None);
    }

    #[test]
    fn send_after_receiver_drop_errors() {
        let sim = Sim::new();
        sim.block_on(async {
            let (tx, rx) = channel();
            drop(rx);
            assert!(tx.is_closed());
            assert_eq!(tx.send(1), Err(SendError(1)));
        });
    }

    #[test]
    fn multi_producer_interleaves_by_send_time() {
        let sim = Sim::new();
        let got = sim.block_on(async {
            let (tx, mut rx) = channel();
            for i in 0..3u32 {
                let tx = tx.clone();
                spawn(async move {
                    sleep(secs(f64::from(i + 1))).await;
                    tx.send(i).unwrap();
                });
            }
            drop(tx);
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn try_recv_and_len() {
        let sim = Sim::new();
        sim.block_on(async {
            let (tx, mut rx) = channel();
            assert!(rx.is_empty());
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.try_recv(), Some(1));
            assert_eq!(rx.try_recv(), Some(2));
            assert_eq!(rx.try_recv(), None);
        });
    }
}
