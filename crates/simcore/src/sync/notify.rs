//! Edge-triggered notification primitive (a minimal `tokio::sync::Notify`).
//!
//! Used for watch-style wakeups: "the object store changed, re-reconcile".
//! A stored permit makes `notify_one` before `notified().await` not get lost.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct State {
    /// One stored permit (as in tokio's Notify).
    permit: bool,
    waiters: VecDeque<Rc<RefCell<WaitState>>>,
}

struct WaitState {
    notified: bool,
    waker: Option<Waker>,
}

/// Notification handle; clone freely.
#[derive(Clone)]
pub struct Notify {
    state: Rc<RefCell<State>>,
}

impl Default for Notify {
    fn default() -> Self {
        Self::new()
    }
}

impl Notify {
    /// New notifier with no stored permit.
    pub fn new() -> Self {
        Notify {
            state: Rc::new(RefCell::new(State {
                permit: false,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Wake one waiter, or store a permit if none is waiting.
    pub fn notify_one(&self) {
        let waker = {
            let mut s = self.state.borrow_mut();
            match s.waiters.pop_front() {
                Some(w) => {
                    let mut wb = w.borrow_mut();
                    wb.notified = true;
                    wb.waker.take()
                }
                None => {
                    s.permit = true;
                    None
                }
            }
        };
        if let Some(w) = waker {
            w.wake();
        }
    }

    /// Wake all current waiters (does not store a permit).
    pub fn notify_waiters(&self) {
        let wakers: Vec<_> = {
            let mut s = self.state.borrow_mut();
            s.waiters
                .drain(..)
                .filter_map(|w| {
                    let mut wb = w.borrow_mut();
                    wb.notified = true;
                    wb.waker.take()
                })
                .collect()
        };
        for w in wakers {
            w.wake();
        }
    }

    /// Wait for a notification.
    pub fn notified(&self) -> Notified {
        Notified {
            state: Rc::clone(&self.state),
            wait: None,
            done: false,
        }
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified {
    state: Rc<RefCell<State>>,
    wait: Option<Rc<RefCell<WaitState>>>,
    /// True once this future has returned `Ready` — its notification was
    /// consumed and must not be re-forwarded on drop.
    done: bool,
}

impl Future for Notified {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.done {
            return Poll::Ready(());
        }
        if let Some(w) = &self.wait {
            let mut wb = w.borrow_mut();
            if wb.notified {
                drop(wb);
                self.done = true;
                return Poll::Ready(());
            }
            wb.waker = Some(cx.waker().clone());
            return Poll::Pending;
        }
        let mut s = self.state.borrow_mut();
        if s.permit {
            s.permit = false;
            drop(s);
            self.done = true;
            return Poll::Ready(());
        }
        let w = Rc::new(RefCell::new(WaitState {
            notified: false,
            waker: Some(cx.waker().clone()),
        }));
        s.waiters.push_back(Rc::clone(&w));
        drop(s);
        self.wait = Some(w);
        Poll::Pending
    }
}

impl Drop for Notified {
    fn drop(&mut self) {
        if self.done {
            // Notification consumed normally; nothing to clean up.
            return;
        }
        if let Some(w) = &self.wait {
            let notified = w.borrow().notified;
            if notified {
                // We were picked by notify_one but dropped before observing
                // the wake: hand the notification to the next waiter so it
                // is not lost.
                // We consumed a notify_one that never got observed; pass it on.
                let mut s = self.state.borrow_mut();
                if let Some(next) = s.waiters.pop_front() {
                    let mut nb = next.borrow_mut();
                    nb.notified = true;
                    if let Some(wk) = nb.waker.take() {
                        drop(nb);
                        drop(s);
                        wk.wake();
                    }
                } else {
                    s.permit = true;
                }
            } else {
                // Remove ourselves from the queue.
                let mut s = self.state.borrow_mut();
                s.waiters.retain(|x| !Rc::ptr_eq(x, w));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{now, sleep, spawn, Sim};
    use crate::time::{secs, SimTime};

    #[test]
    fn notify_one_wakes_single_waiter() {
        let sim = Sim::new();
        let t = sim.block_on(async {
            let n = Notify::new();
            let h = {
                let n = n.clone();
                spawn(async move {
                    n.notified().await;
                    now()
                })
            };
            sleep(secs(2.0)).await;
            n.notify_one();
            h.await
        });
        assert_eq!(t, SimTime::ZERO + secs(2.0));
    }

    #[test]
    fn stored_permit_is_not_lost() {
        let sim = Sim::new();
        sim.block_on(async {
            let n = Notify::new();
            n.notify_one(); // before anyone waits
            n.notified().await; // must complete immediately
        });
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn notify_waiters_wakes_everyone() {
        let sim = Sim::new();
        let count = sim.block_on(async {
            let n = Notify::new();
            let mut handles = Vec::new();
            for _ in 0..4 {
                let n = n.clone();
                handles.push(spawn(async move {
                    n.notified().await;
                    1u32
                }));
            }
            sleep(secs(1.0)).await;
            n.notify_waiters();
            let mut c = 0;
            for h in handles {
                c += h.await;
            }
            c
        });
        assert_eq!(count, 4);
    }

    /// Regression: a consumed notification must NOT be re-forwarded on drop.
    /// Two tasks repeatedly waiting on the same Notify used to bounce a
    /// phantom permit between each other forever (live-lock).
    #[test]
    fn consumed_notification_is_not_forwarded() {
        let sim = Sim::new();
        sim.block_on(async {
            let n = Notify::new();
            let mut wakes = 0u32;
            for _ in 0..3 {
                let a = {
                    let n = n.clone();
                    spawn(async move {
                        n.notified().await;
                    })
                };
                let b = {
                    let n = n.clone();
                    spawn(async move {
                        n.notified().await;
                    })
                };
                sleep(secs(0.1)).await;
                n.notify_waiters();
                a.await;
                b.await;
                wakes += 1;
            }
            assert_eq!(wakes, 3);
            // No phantom permit: a fresh notified() must wait, not complete.
            let late = {
                let n = n.clone();
                spawn(async move {
                    n.notified().await;
                    now()
                })
            };
            sleep(secs(1.0)).await;
            n.notify_one();
            let woke_at = late.await;
            assert!(woke_at >= SimTime::ZERO + secs(1.0));
        });
    }

    #[test]
    fn notify_waiters_does_not_store_permit() {
        let sim = Sim::new();
        sim.block_on(async {
            let n = Notify::new();
            n.notify_waiters(); // nobody waiting; nothing stored
            let h = {
                let n = n.clone();
                spawn(async move {
                    n.notified().await;
                    now()
                })
            };
            sleep(secs(1.0)).await;
            n.notify_one();
            assert_eq!(h.await, SimTime::ZERO + secs(1.0));
        });
    }
}
