//! FIFO-fair counting semaphore in virtual time.
//!
//! Models capacity-limited servers: CPU cores on a node, HTCondor slots,
//! concurrent-request limits in a queue-proxy. Fairness is strict FIFO so
//! simulated queueing is reproducible and starvation-free.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct Waiter {
    want: usize,
    waker: Option<Waker>,
    /// Set when the semaphore hands this waiter its permits.
    granted: bool,
    /// Set when the acquire future is dropped before being granted.
    abandoned: bool,
}

struct State {
    available: usize,
    capacity: usize,
    queue: VecDeque<Rc<RefCell<Waiter>>>,
    /// Peak queue length, for model diagnostics.
    max_queue: usize,
}

/// FIFO counting semaphore.
#[derive(Clone)]
pub struct Semaphore {
    state: Rc<RefCell<State>>,
}

/// Permits held; released back on drop.
pub struct Permit {
    state: Rc<RefCell<State>>,
    count: usize,
}

impl Semaphore {
    /// Create with `capacity` permits available.
    pub fn new(capacity: usize) -> Self {
        Semaphore {
            state: Rc::new(RefCell::new(State {
                available: capacity,
                capacity,
                queue: VecDeque::new(),
                max_queue: 0,
            })),
        }
    }

    /// Acquire one permit, waiting FIFO behind earlier requests.
    pub fn acquire(&self) -> Acquire {
        self.acquire_many(1)
    }

    /// Acquire `n` permits atomically. A request exceeding the current
    /// capacity waits until [`Semaphore::add_permits`] grows the semaphore
    /// (the executor's deadlock detector fires if that never happens).
    pub fn acquire_many(&self, n: usize) -> Acquire {
        Acquire {
            state: Rc::clone(&self.state),
            want: n,
            waiter: None,
        }
    }

    /// Try to acquire without waiting; respects FIFO (fails if anyone is
    /// already queued).
    pub fn try_acquire(&self) -> Option<Permit> {
        let mut s = self.state.borrow_mut();
        if s.queue.is_empty() && s.available >= 1 {
            s.available -= 1;
            Some(Permit {
                state: Rc::clone(&self.state),
                count: 1,
            })
        } else {
            None
        }
    }

    /// Permits currently available.
    pub fn available(&self) -> usize {
        self.state.borrow().available
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.state.borrow().capacity
    }

    /// Requests currently queued.
    pub fn queue_len(&self) -> usize {
        self.state.borrow().queue.len()
    }

    /// Peak queue length observed.
    pub fn max_queue_len(&self) -> usize {
        self.state.borrow().max_queue
    }

    /// Grow capacity by `n`, waking waiters that now fit.
    pub fn add_permits(&self, n: usize) {
        {
            let mut s = self.state.borrow_mut();
            s.available += n;
            s.capacity += n;
        }
        grant_waiters(&self.state);
    }
}

/// Hand out permits to the head of the FIFO queue while they fit.
fn grant_waiters(state: &Rc<RefCell<State>>) {
    loop {
        let waiter = {
            let mut s = state.borrow_mut();
            // Drop abandoned waiters at the head.
            while matches!(s.queue.front(), Some(w) if w.borrow().abandoned) {
                s.queue.pop_front();
            }
            if !matches!(s.queue.front(), Some(w) if w.borrow().want <= s.available) {
                return;
            }
            let Some(w) = s.queue.pop_front() else { return };
            s.available -= w.borrow().want;
            w
        };
        let waker = {
            let mut w = waiter.borrow_mut();
            w.granted = true;
            w.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.state.borrow_mut().available += self.count;
        grant_waiters(&self.state);
    }
}

impl Permit {
    /// Number of permits held.
    pub fn count(&self) -> usize {
        self.count
    }
}

/// Future returned by [`Semaphore::acquire`] / [`Semaphore::acquire_many`].
pub struct Acquire {
    state: Rc<RefCell<State>>,
    want: usize,
    waiter: Option<Rc<RefCell<Waiter>>>,
}

impl Future for Acquire {
    type Output = Permit;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Permit> {
        // Already queued: check grant.
        if let Some(w) = &self.waiter {
            let mut wb = w.borrow_mut();
            if wb.granted {
                wb.granted = false; // permit ownership moves to the Permit
                let state = Rc::clone(&self.state);
                let count = self.want;
                drop(wb);
                self.waiter = None;
                return Poll::Ready(Permit { state, count });
            }
            wb.waker = Some(cx.waker().clone());
            return Poll::Pending;
        }
        // First poll: fast path if nothing queued and permits fit.
        {
            let mut s = self.state.borrow_mut();
            if s.queue.is_empty() && s.available >= self.want {
                s.available -= self.want;
                return Poll::Ready(Permit {
                    state: Rc::clone(&self.state),
                    count: self.want,
                });
            }
            let waiter = Rc::new(RefCell::new(Waiter {
                want: self.want,
                waker: Some(cx.waker().clone()),
                granted: false,
                abandoned: false,
            }));
            s.queue.push_back(Rc::clone(&waiter));
            let qlen = s.queue.len();
            s.max_queue = s.max_queue.max(qlen);
            drop(s);
            self.waiter = Some(waiter);
        }
        Poll::Pending
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if let Some(w) = &self.waiter {
            let granted = {
                let mut wb = w.borrow_mut();
                wb.abandoned = true;
                wb.granted
            };
            if granted {
                // Permits were handed to us but never turned into a Permit:
                // return them.
                self.state.borrow_mut().available += self.want;
                grant_waiters(&self.state);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{now, sleep, spawn, Sim};
    use crate::time::{secs, SimTime};

    #[test]
    fn serializes_access_to_capacity_one() {
        let sim = Sim::new();
        let finish_times = sim.block_on(async {
            let sem = Semaphore::new(1);
            let mut handles = Vec::new();
            for _ in 0..3 {
                let sem = sem.clone();
                handles.push(spawn(async move {
                    let _p = sem.acquire().await;
                    sleep(secs(1.0)).await;
                    now()
                }));
            }
            let mut out = Vec::new();
            for h in handles {
                out.push(h.await);
            }
            out
        });
        assert_eq!(
            finish_times,
            vec![
                SimTime::ZERO + secs(1.0),
                SimTime::ZERO + secs(2.0),
                SimTime::ZERO + secs(3.0)
            ]
        );
    }

    #[test]
    fn capacity_two_runs_pairs_concurrently() {
        let sim = Sim::new();
        let makespan = sim.block_on(async {
            let sem = Semaphore::new(2);
            let mut handles = Vec::new();
            for _ in 0..4 {
                let sem = sem.clone();
                handles.push(spawn(async move {
                    let _p = sem.acquire().await;
                    sleep(secs(1.0)).await;
                }));
            }
            for h in handles {
                h.await;
            }
            now()
        });
        assert_eq!(makespan, SimTime::ZERO + secs(2.0));
    }

    #[test]
    fn fifo_fairness_under_acquire_many() {
        let sim = Sim::new();
        let order = sim.block_on(async {
            let sem = Semaphore::new(2);
            let order = Rc::new(RefCell::new(Vec::new()));
            // Take both permits for 1s.
            let hold = {
                let sem = sem.clone();
                spawn(async move {
                    let _p = sem.acquire_many(2).await;
                    sleep(secs(1.0)).await;
                })
            };
            sleep(secs(0.1)).await;
            // Queue: big request (2) first, then small (1). FIFO means the
            // small one must NOT jump the big one.
            let big = {
                let sem = sem.clone();
                let order = Rc::clone(&order);
                spawn(async move {
                    let _p = sem.acquire_many(2).await;
                    order.borrow_mut().push("big");
                })
            };
            sleep(secs(0.1)).await;
            let small = {
                let sem = sem.clone();
                let order = Rc::clone(&order);
                spawn(async move {
                    let _p = sem.acquire().await;
                    order.borrow_mut().push("small");
                })
            };
            hold.await;
            big.await;
            small.await;
            Rc::try_unwrap(order).unwrap().into_inner()
        });
        assert_eq!(order, vec!["big", "small"]);
    }

    #[test]
    fn try_acquire_respects_queue() {
        let sim = Sim::new();
        sim.block_on(async {
            let sem = Semaphore::new(1);
            let p = sem.try_acquire().unwrap();
            assert!(sem.try_acquire().is_none());
            drop(p);
            assert!(sem.try_acquire().is_some());
        });
    }

    #[test]
    fn add_permits_wakes_waiters() {
        let sim = Sim::new();
        sim.block_on(async {
            let sem = Semaphore::new(0);
            let h = {
                let sem = sem.clone();
                spawn(async move {
                    let _p = sem.acquire().await;
                    now()
                })
            };
            sleep(secs(5.0)).await;
            sem.add_permits(1);
            let t = h.await;
            assert_eq!(t, SimTime::ZERO + secs(5.0));
            assert_eq!(sem.capacity(), 1);
        });
    }

    /// Polls the wrapped future exactly once, then resolves.
    struct PollOnce<F: Future + Unpin>(F);
    impl<F: Future + Unpin> Future for PollOnce<F> {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut std::task::Context<'_>) -> std::task::Poll<()> {
            let _ = Pin::new(&mut self.0).poll(cx);
            std::task::Poll::Ready(())
        }
    }

    #[test]
    fn abandoned_waiter_does_not_block_queue() {
        let sim = Sim::new();
        sim.block_on(async {
            let sem = Semaphore::new(1);
            let p = sem.acquire().await;
            // Enqueue a waiter, then drop its Acquire future while queued.
            PollOnce(sem.acquire()).await;
            assert_eq!(sem.queue_len(), 1);
            // A later waiter must still get the permit when it frees up.
            let h = {
                let sem = sem.clone();
                spawn(async move {
                    let _p = sem.acquire().await;
                    now()
                })
            };
            sleep(secs(1.0)).await;
            drop(p);
            let t = h.await;
            assert_eq!(t, SimTime::ZERO + secs(1.0));
        });
    }

    #[test]
    fn queue_stats_track_peak() {
        let sim = Sim::new();
        sim.block_on(async {
            let sem = Semaphore::new(1);
            let _p = sem.acquire().await;
            for _ in 0..5 {
                let sem = sem.clone();
                spawn(async move {
                    let _p = sem.acquire().await;
                });
            }
            sleep(secs(0.1)).await;
            assert_eq!(sem.queue_len(), 5);
            assert_eq!(sem.max_queue_len(), 5);
        });
    }
}
