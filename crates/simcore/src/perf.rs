//! Self-profiling of the simulation engine itself.
//!
//! Everything else in this crate observes *virtual* time; this module
//! observes the **host-side cost of simulating**: how many executor
//! events (task polls, spawns, wakes, timers) a run processed, how deep
//! the ready queue got, and — behind the `host-profiling` feature — how
//! much wall-clock time a scenario took. The counters feed the
//! `swf-bench` suite's `BENCH_*.json` host profile, which is what lets a
//! later PR distinguish a *correctness drift* (virtual results changed)
//! from a *performance regression* (the simulator got slower).
//!
//! Two invariants keep this sound:
//!
//! 1. **Profiling never feeds back into the simulation.** The counters
//!    are write-only from the executor's point of view; no model code
//!    reads them, so enabling profiling cannot change virtual-time
//!    results. All event counts are pure functions of the program and
//!    its seeds and are therefore themselves deterministic.
//! 2. **Wall-clock is quarantined.** `std::time::Instant` appears only
//!    inside `#[cfg(feature = "host-profiling")]` items with a reasoned
//!    `tidy: allow(wall-clock)` waiver, and [`HostStopwatch::elapsed_ms`]
//!    returns `Option<f64>` — `None` without the feature — so callers
//!    cannot accidentally treat wall time as a simulation result.
//!
//! Counters are accumulated per thread (the executor is single-threaded
//! per simulation), cumulatively across every [`crate::Sim`] that runs
//! on the thread. Harnesses take a [`snapshot`] before and after a
//! scenario and report the [`ExecProfile::delta`]; the ready-queue
//! high-water mark is tracked since the last [`reset_ready_peak`].

use std::cell::Cell;

/// Executor event counters: one run's (or one thread's cumulative)
/// engine-level activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecProfile {
    /// Task polls executed (the engine's unit of work — "events
    /// processed" in the bench suite's host profile).
    pub polls: u64,
    /// Tasks spawned.
    pub spawned: u64,
    /// Waker invocations that enqueued a task (deduplicated wakes that
    /// found the task already queued are not counted).
    pub wakes: u64,
    /// Timers registered (`sleep` / `sleep_until` / timeouts).
    pub timers_registered: u64,
    /// Timers that actually fired (cancelled timers never do).
    pub timers_fired: u64,
    /// Virtual-clock advances (each services every timer due at one
    /// instant, so this counts distinct timer instants).
    pub clock_advances: u64,
    /// High-water mark of the executor ready queue since the last
    /// [`reset_ready_peak`].
    pub ready_peak: u64,
}

impl ExecProfile {
    /// Events processed: the total of polls, wakes and timer fires —
    /// the engine-throughput numerator used for events/sec.
    pub fn events(&self) -> u64 {
        self.polls + self.wakes + self.timers_fired
    }

    /// Counter-wise difference `self - earlier` for the monotonic
    /// counters; `ready_peak` is carried from `self` (reset it at the
    /// start of the measured window instead).
    pub fn delta(&self, earlier: &ExecProfile) -> ExecProfile {
        ExecProfile {
            polls: self.polls - earlier.polls,
            spawned: self.spawned - earlier.spawned,
            wakes: self.wakes - earlier.wakes,
            timers_registered: self.timers_registered - earlier.timers_registered,
            timers_fired: self.timers_fired - earlier.timers_fired,
            clock_advances: self.clock_advances - earlier.clock_advances,
            ready_peak: self.ready_peak,
        }
    }
}

#[derive(Default)]
struct Totals {
    polls: Cell<u64>,
    spawned: Cell<u64>,
    wakes: Cell<u64>,
    timers_registered: Cell<u64>,
    timers_fired: Cell<u64>,
    clock_advances: Cell<u64>,
    ready_peak: Cell<u64>,
}

thread_local! {
    static TOTALS: Totals = Totals::default();
}

/// Cumulative executor counters for this thread, across every `Sim`
/// that has run on it.
pub fn snapshot() -> ExecProfile {
    TOTALS.with(|t| ExecProfile {
        polls: t.polls.get(),
        spawned: t.spawned.get(),
        wakes: t.wakes.get(),
        timers_registered: t.timers_registered.get(),
        timers_fired: t.timers_fired.get(),
        clock_advances: t.clock_advances.get(),
        ready_peak: t.ready_peak.get(),
    })
}

/// Reset the ready-queue high-water mark (monotonic counters are never
/// reset; take deltas of [`snapshot`] instead).
pub fn reset_ready_peak() {
    TOTALS.with(|t| t.ready_peak.set(0));
}

pub(crate) fn note_poll() {
    TOTALS.with(|t| t.polls.set(t.polls.get() + 1));
}

pub(crate) fn note_spawn() {
    TOTALS.with(|t| t.spawned.set(t.spawned.get() + 1));
}

pub(crate) fn note_wake() {
    TOTALS.with(|t| t.wakes.set(t.wakes.get() + 1));
}

pub(crate) fn note_ready_depth(depth: usize) {
    TOTALS.with(|t| {
        if depth as u64 > t.ready_peak.get() {
            t.ready_peak.set(depth as u64);
        }
    });
}

pub(crate) fn note_timer_registered() {
    TOTALS.with(|t| t.timers_registered.set(t.timers_registered.get() + 1));
}

pub(crate) fn note_timer_fired() {
    TOTALS.with(|t| t.timers_fired.set(t.timers_fired.get() + 1));
}

pub(crate) fn note_clock_advance() {
    TOTALS.with(|t| t.clock_advances.set(t.clock_advances.get() + 1));
}

// Wall-clock lives ONLY here, feature-gated: host-side profiling of the
// simulator's own speed. It is never observable from model code and
// never influences virtual time (DESIGN.md "Determinism contract").
#[cfg(feature = "host-profiling")]
// tidy: allow(wall-clock) — host-profiling stopwatch measuring how fast
// the DES itself runs; Option-typed, cfg-gated, unreachable from models.
use std::time::Instant;

/// Wall-clock stopwatch for host-side profiling of the simulator.
///
/// Without the `host-profiling` feature this is a zero-sized no-op whose
/// [`elapsed_ms`](HostStopwatch::elapsed_ms) is always `None`, so wall
/// time can never masquerade as a result in default builds.
#[derive(Clone, Copy, Debug)]
pub struct HostStopwatch {
    #[cfg(feature = "host-profiling")]
    started: Instant,
}

impl HostStopwatch {
    /// Start timing now (a no-op without `host-profiling`).
    pub fn start() -> HostStopwatch {
        HostStopwatch {
            #[cfg(feature = "host-profiling")]
            // tidy: allow(wall-clock) — the stopwatch's cfg-gated start;
            // its reading never feeds back into virtual time.
            started: Instant::now(),
        }
    }

    /// Milliseconds of wall-clock time since [`start`](Self::start), or
    /// `None` when the `host-profiling` feature is disabled.
    pub fn elapsed_ms(&self) -> Option<f64> {
        #[cfg(feature = "host-profiling")]
        {
            Some(self.started.elapsed().as_secs_f64() * 1e3)
        }
        #[cfg(not(feature = "host-profiling"))]
        {
            None
        }
    }
}

/// Engine throughput in events per second, if wall time is available
/// and non-zero.
pub fn events_per_sec(events: u64, wall_ms: Option<f64>) -> Option<f64> {
    match wall_ms {
        Some(ms) if ms > 0.0 => Some(events as f64 / (ms / 1e3)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{sleep, spawn, Sim};
    use crate::time::secs;

    #[test]
    fn counters_track_executor_activity() {
        let before = snapshot();
        reset_ready_peak();
        let sim = Sim::new();
        sim.block_on(async {
            let mut handles = Vec::new();
            for i in 0..10u64 {
                handles.push(spawn(async move {
                    sleep(secs(i as f64 + 1.0)).await;
                }));
            }
            for h in handles {
                h.await;
            }
        });
        let d = snapshot().delta(&before);
        // 10 spawned tasks + the block_on root.
        assert_eq!(d.spawned, 11);
        // Every task polled at least twice (initial + after its timer).
        assert!(d.polls >= 22, "polls {}", d.polls);
        assert_eq!(d.timers_registered, 10);
        assert_eq!(d.timers_fired, 10);
        // 10 distinct deadlines => 10 clock advances.
        assert_eq!(d.clock_advances, 10);
        // All 10 children were enqueued while the root task was being
        // polled (the root itself was already popped off the queue).
        assert!(d.ready_peak >= 10, "peak {}", d.ready_peak);
        assert!(d.events() >= d.polls);
    }

    #[test]
    fn cancelled_timers_never_fire() {
        let before = snapshot();
        let sim = Sim::new();
        sim.block_on(async {
            {
                let _dropped = sleep(secs(1000.0));
            }
            sleep(secs(1.0)).await;
        });
        let d = snapshot().delta(&before);
        assert_eq!(d.timers_registered, 2);
        assert_eq!(d.timers_fired, 1);
    }

    #[test]
    fn identical_runs_have_identical_profiles() {
        let run = || {
            let before = snapshot();
            reset_ready_peak();
            let sim = Sim::new();
            sim.block_on(async {
                for i in 0..5u64 {
                    spawn(async move {
                        sleep(secs(0.25 * (i + 1) as f64)).await;
                    });
                }
                sleep(secs(10.0)).await;
            });
            snapshot().delta(&before)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ready_peak_resets() {
        let sim = Sim::new();
        sim.block_on(async {
            for _ in 0..4 {
                spawn(async {});
            }
        });
        assert!(snapshot().ready_peak > 0);
        reset_ready_peak();
        assert_eq!(snapshot().ready_peak, 0);
    }

    #[test]
    fn stopwatch_is_option_typed() {
        let sw = HostStopwatch::start();
        let ms = sw.elapsed_ms();
        #[cfg(feature = "host-profiling")]
        assert!(ms.is_some());
        #[cfg(not(feature = "host-profiling"))]
        assert!(ms.is_none());
        assert_eq!(events_per_sec(1000, None), None);
        assert_eq!(events_per_sec(1000, Some(0.0)), None);
        assert_eq!(events_per_sec(1000, Some(500.0)), Some(2000.0));
    }
}
