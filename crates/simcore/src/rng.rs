//! Deterministic random number utilities.
//!
//! Every stochastic model component owns a [`DetRng`] derived from the
//! experiment seed plus a stable stream label, so adding a new component
//! never perturbs the draws of existing ones.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG with distribution helpers for service-time models.
pub struct DetRng {
    rng: StdRng,
}

/// Derive a 64-bit stream id from a label (FNV-1a).
fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl DetRng {
    /// RNG for `(seed, stream)`; the same pair always produces the same
    /// sequence.
    pub fn new(seed: u64, stream: &str) -> Self {
        let mixed = seed ^ hash_label(stream).rotate_left(17);
        DetRng {
            rng: StdRng::seed_from_u64(mixed),
        }
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        self.rng.gen_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        self.rng.gen_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi)` (i64).
    pub fn uniform_i64(&mut self, lo: i64, hi: i64) -> i64 {
        if hi <= lo {
            return lo;
        }
        self.rng.gen_range(lo..hi)
    }

    /// Exponential with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Normal via Box–Muller; result clamped at `min`.
    pub fn normal_clamped(&mut self, mean: f64, std_dev: f64, min: f64) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + std_dev * z).max(min)
    }

    /// Lognormal parameterized by the *target* mean and coefficient of
    /// variation — convenient for latency models ("mean 80 ms, cv 0.2").
    pub fn lognormal(&mut self, mean: f64, cv: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        if cv <= 0.0 {
            return mean;
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        let n = self.normal_clamped(0.0, 1.0, f64::NEG_INFINITY);
        (mu + sigma2.sqrt() * n).exp()
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Pick a uniformly random element index for a slice of length `n`.
    pub fn index(&mut self, n: usize) -> usize {
        if n <= 1 {
            0
        } else {
            self.rng.gen_range(0..n)
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Access the underlying `rand` RNG for anything else.
    pub fn raw(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_same_sequence() {
        let mut a = DetRng::new(7, "net");
        let mut b = DetRng::new(7, "net");
        for _ in 0..100 {
            assert_eq!(a.uniform_u64(0, 1000), b.uniform_u64(0, 1000));
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = DetRng::new(7, "net");
        let mut b = DetRng::new(7, "disk");
        let va: Vec<u64> = (0..20).map(|_| a.uniform_u64(0, 1_000_000)).collect();
        let vb: Vec<u64> = (0..20).map(|_| b.uniform_u64(0, 1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = DetRng::new(42, "exp");
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(2.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn lognormal_mean_is_close() {
        let mut r = DetRng::new(42, "logn");
        let n = 40_000;
        let sum: f64 = (0..n).map(|_| r.lognormal(0.08, 0.2)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.08).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::new(9, "shuf");
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // virtually certain
    }

    #[test]
    fn degenerate_ranges() {
        let mut r = DetRng::new(1, "deg");
        assert_eq!(r.uniform(5.0, 5.0), 5.0);
        assert_eq!(r.uniform_u64(9, 9), 9);
        assert_eq!(r.index(0), 0);
        assert_eq!(r.index(1), 0);
        assert_eq!(r.exponential(0.0), 0.0);
        assert_eq!(r.lognormal(0.0, 1.0), 0.0);
        assert_eq!(r.lognormal(3.0, 0.0), 3.0);
    }
}
