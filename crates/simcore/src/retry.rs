//! Typed retry-with-backoff policy shared by every component that retries.
//!
//! HTCondor's DAGMan, Knative's router/activator and the chaos harness all
//! need the same thing: a bounded number of attempts separated by
//! exponentially growing, deterministically jittered delays. Centralizing
//! the policy keeps retry timing reproducible (all jitter flows through
//! [`DetRng`]) and keeps the calm path bit-identical: the default policy
//! produces zero-length delays and draws nothing from the RNG.

use crate::rng::DetRng;
use crate::time::SimDuration;

/// A deterministic exponential-backoff schedule.
///
/// `delay_for(attempt)` returns `min(base · multiplier^attempt, max_delay)`,
/// optionally jittered lognormally (coefficient of variation `jitter_cv`)
/// through a caller-supplied [`DetRng`]. A zero `base` means "retry
/// immediately" and never touches the RNG, so components configured with
/// [`RetryPolicy::immediate`] behave byte-identically to their pre-policy
/// selves.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Attempts allowed in total (first try included). 0 is treated as 1.
    pub max_attempts: u32,
    /// Delay before the first retry (attempt 1). Zero = immediate retries.
    pub base: SimDuration,
    /// Growth factor per retry (1.0 = constant delay).
    pub multiplier: f64,
    /// Upper bound on any single delay.
    pub max_delay: SimDuration,
    /// Lognormal jitter (coefficient of variation) on each non-zero delay;
    /// 0 = deterministic schedule, no RNG draws.
    pub jitter_cv: f64,
}

impl RetryPolicy {
    /// `max_attempts` immediate retries — the historical behaviour of the
    /// router and DAGMan, kept as the default so calm runs do not drift.
    pub fn immediate(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            base: SimDuration::ZERO,
            multiplier: 1.0,
            max_delay: SimDuration::ZERO,
            jitter_cv: 0.0,
        }
    }

    /// Exponential backoff: `base`, doubling per retry, capped at
    /// `max_delay`, no jitter.
    pub fn exponential(max_attempts: u32, base: SimDuration, max_delay: SimDuration) -> Self {
        RetryPolicy {
            max_attempts,
            base,
            multiplier: 2.0,
            max_delay,
            jitter_cv: 0.0,
        }
    }

    /// Builder: set the jitter coefficient of variation.
    pub fn with_jitter(mut self, cv: f64) -> Self {
        self.jitter_cv = cv;
        self
    }

    /// Attempts allowed (never less than one).
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// The delay to sleep before retry number `retry` (1-based: the delay
    /// between attempt N and attempt N+1 is `delay_for(N, rng)`). Draws
    /// from `rng` only when both the nominal delay and `jitter_cv` are
    /// non-zero, so an immediate policy consumes no randomness.
    pub fn delay_for(&self, retry: u32, rng: &mut DetRng) -> SimDuration {
        if self.base.is_zero() {
            return SimDuration::ZERO;
        }
        let factor = self
            .multiplier
            .max(0.0)
            .powi(retry.saturating_sub(1) as i32);
        let mut nominal = self.base.mul_f64(factor);
        if !self.max_delay.is_zero() && nominal > self.max_delay {
            nominal = self.max_delay;
        }
        if nominal.is_zero() || self.jitter_cv <= 0.0 {
            return nominal;
        }
        let jittered = rng.lognormal(nominal.as_secs_f64(), self.jitter_cv);
        SimDuration::from_secs_f64(jittered)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::immediate(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{millis, secs};

    #[test]
    fn immediate_policy_never_sleeps_or_draws() {
        let p = RetryPolicy::immediate(8);
        let mut rng = DetRng::new(1, "t");
        let mut probe = DetRng::new(1, "t");
        for retry in 1..10 {
            assert_eq!(p.delay_for(retry, &mut rng), SimDuration::ZERO);
        }
        // No draws happened: the stream is still aligned with a fresh one.
        assert_eq!(rng.uniform_u64(0, 1 << 30), probe.uniform_u64(0, 1 << 30));
    }

    #[test]
    fn exponential_growth_caps_at_max_delay() {
        let p = RetryPolicy::exponential(5, millis(100), secs(1.0));
        let mut rng = DetRng::new(1, "t");
        assert_eq!(p.delay_for(1, &mut rng), millis(100));
        assert_eq!(p.delay_for(2, &mut rng), millis(200));
        assert_eq!(p.delay_for(3, &mut rng), millis(400));
        assert_eq!(p.delay_for(5, &mut rng), secs(1.0));
        assert_eq!(p.delay_for(30, &mut rng), secs(1.0));
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let p = RetryPolicy::exponential(5, millis(100), secs(10.0)).with_jitter(0.3);
        let mut a = DetRng::new(7, "retry");
        let mut b = DetRng::new(7, "retry");
        for retry in 1..5 {
            let da = p.delay_for(retry, &mut a);
            let db = p.delay_for(retry, &mut b);
            assert_eq!(da.as_nanos(), db.as_nanos());
            assert!(!da.is_zero());
        }
    }

    #[test]
    fn attempts_floor_is_one() {
        assert_eq!(RetryPolicy::immediate(0).attempts(), 1);
        assert_eq!(RetryPolicy::immediate(3).attempts(), 3);
    }

    /// Golden values: the exact delay sequences the shipped policies
    /// produce, pinned to the nanosecond. Any change to the backoff
    /// arithmetic, the lognormal transform, or the `DetRng` stream layout
    /// shows up here as a bit-level diff — the same drift contract the
    /// bench baselines enforce for whole runs, at policy granularity.
    #[test]
    fn golden_immediate_sequence() {
        let p = RetryPolicy::immediate(4);
        let mut rng = DetRng::new(42, "golden-retry");
        let seq: Vec<u64> = (1..=4)
            .map(|r| p.delay_for(r, &mut rng).as_nanos())
            .collect();
        assert_eq!(seq, [0, 0, 0, 0]);
    }

    #[test]
    fn golden_exponential_sequence_unjittered() {
        let p = RetryPolicy::exponential(6, millis(250), secs(4.0));
        let mut rng = DetRng::new(42, "golden-retry");
        let seq: Vec<u64> = (1..=6)
            .map(|r| p.delay_for(r, &mut rng).as_nanos())
            .collect();
        // 0.25 s doubling, capped at 4 s from retry 5 on.
        assert_eq!(
            seq,
            [
                250_000_000,
                500_000_000,
                1_000_000_000,
                2_000_000_000,
                4_000_000_000,
                4_000_000_000
            ]
        );
    }

    #[test]
    fn golden_exponential_sequence_with_seeded_jitter() {
        // The cap bounds the *nominal* delay; lognormal jitter (cv 0.25)
        // then scatters around it, so late draws may exceed 4 s. Two
        // different seeds pin two different exact sequences.
        let p = RetryPolicy::exponential(6, millis(250), secs(4.0)).with_jitter(0.25);
        let mut rng = DetRng::new(42, "golden-retry");
        let seq: Vec<u64> = (1..=6)
            .map(|r| p.delay_for(r, &mut rng).as_nanos())
            .collect();
        assert_eq!(
            seq,
            [
                428_333_219,
                499_412_673,
                970_465_235,
                2_739_515_161,
                5_545_389_067,
                3_038_886_645
            ]
        );
        let mut rng = DetRng::new(7, "golden-retry");
        let seq: Vec<u64> = (1..=6)
            .map(|r| p.delay_for(r, &mut rng).as_nanos())
            .collect();
        assert_eq!(
            seq,
            [
                304_015_689,
                737_972_206,
                1_274_638_566,
                2_260_333_304,
                4_448_110_125,
                3_891_031_406
            ]
        );
    }
}
