//! # swf-simcore
//!
//! Deterministic virtual-time simulation kernel underpinning the
//! *Serverless Computing for Dynamic HPC Workflows* reproduction.
//!
//! The kernel is a single-threaded async executor whose clock is **virtual**:
//! `sleep(d)` costs zero wall time and advances a logical clock only when no
//! task is runnable. Model code is ordinary `async` Rust — a container pull
//! is `registry.serve(bytes / bandwidth).await`, an HTTP round trip is two
//! channel sends separated by modelled latency — which keeps the substrate
//! code structured like the real systems it stands in for.
//!
//! Guarantees:
//! - **Determinism**: FIFO ready queue, stable timer ordering, per-stream
//!   seeded RNG. A run is a pure function of (program, seeds).
//! - **Deadlock detection**: `block_on` panics if the simulation goes idle
//!   before the root future completes.
//! - **Fairness**: [`sync::Semaphore`] and [`Resource`] are strict FIFO.
//!
//! ```
//! use swf_simcore::{Sim, sleep, spawn, now, time::secs};
//!
//! let sim = Sim::new();
//! let t = sim.block_on(async {
//!     let h = spawn(async { sleep(secs(2.0)).await; "done" });
//!     sleep(secs(1.0)).await;
//!     assert_eq!(h.await, "done");
//!     now()
//! });
//! assert_eq!(t.as_secs_f64(), 2.0);
//! ```

#![warn(missing_docs)]

pub mod combinators;
pub mod error;
pub mod executor;
pub mod perf;
pub mod resource;
pub mod retry;
pub mod rng;
pub mod time;
pub mod trace;
mod wheel;

/// Synchronization primitives in virtual time.
pub mod sync {
    pub mod mpsc;
    pub mod notify;
    pub mod oneshot;
    pub mod semaphore;

    pub use notify::Notify;
    pub use semaphore::{Permit, Semaphore};
}

pub use combinators::{join_all, race, timeout, Either, Elapsed};
pub use error::SimError;
pub use executor::{
    current, interval, now, sleep, sleep_until, spawn, try_current, yield_now, Interval,
    JoinHandle, Sim, TaskId,
};
pub use resource::{Claim, Resource};
pub use retry::RetryPolicy;
pub use rng::DetRng;
pub use time::{micros, millis, secs, SimDuration, SimTime};
pub use trace::{Trace, TraceEvent, TraceSink};
