//! Typed executor errors.
//!
//! [`Sim::block_on`](crate::Sim::block_on) keeps its panicking contract
//! (a virtual-time deadlock is a bug in model code), but the underlying
//! condition is reported through [`SimError`] so harnesses that *expect*
//! stalls — chaos drills, negative tests — can use
//! [`Sim::try_block_on`](crate::Sim::try_block_on) and match on the error
//! instead of catching an unwind.

use crate::time::SimTime;

/// Why a simulation run could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The simulation went idle — no runnable task and no pending live
    /// timer — before the root future completed: the program deadlocked
    /// in virtual time.
    Deadlock {
        /// Virtual instant at which the simulation stalled.
        at: SimTime,
        /// Tasks spawned but not yet completed at the stall.
        live_tasks: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { at, live_tasks } => {
                write!(
                    f,
                    "block_on deadlocked at {at} with {live_tasks} live tasks"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}
