//! Lightweight event tracing for simulated components.
//!
//! Components emit `(time, component, event, detail)` records into a shared
//! ring. Tests assert on traces; harness binaries can dump them for
//! debugging. Tracing is off by default and costs one branch when disabled.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::time::SimTime;

/// One trace record.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Emitting component, e.g. `"kubelet/node-2"`.
    pub component: String,
    /// Event kind, e.g. `"pod-started"`.
    pub event: String,
    /// Free-form detail.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {} {}",
            self.at, self.component, self.event, self.detail
        )
    }
}

/// A pluggable downstream sink for trace events. The observability layer
/// implements this to mirror the flat event ring into its span
/// collector, so one sink sees both views of a run.
pub trait TraceSink {
    /// Receive one event (called for every emit while enabled, even
    /// after the ring's limit is reached).
    fn event(&self, at: SimTime, component: &str, event: &str, detail: &str);
}

struct Inner {
    enabled: bool,
    events: Vec<TraceEvent>,
    limit: usize,
    dropped: u64,
    sink: Option<Rc<dyn TraceSink>>,
}

/// Shared trace sink; clone freely.
#[derive(Clone)]
pub struct Trace {
    inner: Rc<RefCell<Inner>>,
}

impl Default for Trace {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Trace {
    /// A trace that records events (up to `limit`, then counts drops).
    pub fn enabled(limit: usize) -> Self {
        Trace {
            inner: Rc::new(RefCell::new(Inner {
                enabled: true,
                events: Vec::new(),
                limit,
                dropped: 0,
                sink: None,
            })),
        }
    }

    /// A trace that ignores everything.
    pub fn disabled() -> Self {
        Trace {
            inner: Rc::new(RefCell::new(Inner {
                enabled: false,
                events: Vec::new(),
                limit: 0,
                dropped: 0,
                sink: None,
            })),
        }
    }

    /// Attach a downstream sink receiving every event (regardless of the
    /// ring's limit). Replaces any previous sink.
    pub fn set_sink(&self, sink: Rc<dyn TraceSink>) {
        self.inner.borrow_mut().sink = Some(sink);
    }

    /// Detach the downstream sink, if any.
    pub fn clear_sink(&self) {
        self.inner.borrow_mut().sink = None;
    }

    /// True if recording.
    pub fn is_enabled(&self) -> bool {
        self.inner.borrow().enabled
    }

    /// Record an event at virtual time `at`. Once the ring's limit is
    /// reached further events are counted as dropped (see
    /// [`dropped`](Trace::dropped)) instead of vanishing silently; an
    /// attached sink still receives them.
    pub fn emit(
        &self,
        at: SimTime,
        component: impl Into<String>,
        event: impl Into<String>,
        detail: impl fmt::Display,
    ) {
        let sink = {
            let inner = self.inner.borrow();
            if !inner.enabled {
                return;
            }
            inner.sink.clone()
        };
        let ev = TraceEvent {
            at,
            component: component.into(),
            event: event.into(),
            detail: detail.to_string(),
        };
        // Forward outside the borrow: a sink may re-enter this trace.
        if let Some(sink) = sink {
            sink.event(at, &ev.component, &ev.event, &ev.detail);
        }
        let mut inner = self.inner.borrow_mut();
        if inner.events.len() >= inner.limit {
            inner.dropped += 1;
            return;
        }
        inner.events.push(ev);
    }

    /// Events dropped after the ring filled up.
    pub fn dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot all recorded events.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner.borrow().events.clone()
    }

    /// Events whose kind matches `event`.
    pub fn filter(&self, event: &str) -> Vec<TraceEvent> {
        self.inner
            .borrow()
            .events
            .iter()
            .filter(|e| e.event == event)
            .cloned()
            .collect()
    }

    /// Count of events with the given kind.
    pub fn count(&self, event: &str) -> usize {
        self.inner
            .borrow()
            .events
            .iter()
            .filter(|e| e.event == event)
            .count()
    }

    /// Render the whole trace, one event per line, with a footer when
    /// events were dropped at the ring's limit.
    pub fn render(&self) -> String {
        let inner = self.inner.borrow();
        let mut s = String::new();
        for e in &inner.events {
            s.push_str(&e.to_string());
            s.push('\n');
        }
        if inner.dropped > 0 {
            s.push_str(&format!(
                "... {} event(s) dropped at limit {}\n",
                inner.dropped, inner.limit
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::disabled();
        t.emit(SimTime::ZERO, "c", "e", "d");
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_and_filters() {
        let t = Trace::enabled(100);
        t.emit(
            SimTime::ZERO + secs(1.0),
            "kubelet/n1",
            "pod-started",
            "p-1",
        );
        t.emit(
            SimTime::ZERO + secs(2.0),
            "kubelet/n2",
            "pod-started",
            "p-2",
        );
        t.emit(SimTime::ZERO + secs(3.0), "scheduler", "bound", "p-1->n1");
        assert_eq!(t.len(), 3);
        assert_eq!(t.count("pod-started"), 2);
        assert_eq!(t.filter("bound")[0].component, "scheduler");
        assert!(t.render().contains("pod-started"));
    }

    #[test]
    fn limit_caps_recording_and_counts_drops() {
        let t = Trace::enabled(2);
        for i in 0..5 {
            t.emit(SimTime::ZERO, "c", "e", i);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        assert!(t.render().contains("3 event(s) dropped at limit 2"));
    }

    #[test]
    fn sink_sees_everything_even_past_the_limit() {
        use std::cell::RefCell;

        struct CountSink(RefCell<Vec<String>>);
        impl TraceSink for CountSink {
            fn event(&self, _at: SimTime, _component: &str, event: &str, _detail: &str) {
                self.0.borrow_mut().push(event.to_string());
            }
        }

        let t = Trace::enabled(1);
        let sink = Rc::new(CountSink(RefCell::new(Vec::new())));
        t.set_sink(sink.clone());
        t.emit(SimTime::ZERO, "c", "first", "");
        t.emit(SimTime::ZERO, "c", "second", "");
        assert_eq!(t.len(), 1, "ring kept its limit");
        assert_eq!(t.dropped(), 1);
        assert_eq!(*sink.0.borrow(), vec!["first", "second"]);
        t.clear_sink();
        t.emit(SimTime::ZERO, "c", "third", "");
        assert_eq!(sink.0.borrow().len(), 2, "cleared sink sees nothing");
    }
}
