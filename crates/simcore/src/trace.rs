//! Lightweight event tracing for simulated components.
//!
//! Components emit `(time, component, event, detail)` records into a shared
//! ring. Tests assert on traces; harness binaries can dump them for
//! debugging. Tracing is off by default and costs one branch when disabled.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use crate::time::SimTime;

/// One trace record.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Emitting component, e.g. `"kubelet/node-2"`.
    pub component: String,
    /// Event kind, e.g. `"pod-started"`.
    pub event: String,
    /// Free-form detail.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {} {}",
            self.at, self.component, self.event, self.detail
        )
    }
}

struct Inner {
    enabled: bool,
    events: Vec<TraceEvent>,
    limit: usize,
}

/// Shared trace sink; clone freely.
#[derive(Clone)]
pub struct Trace {
    inner: Rc<RefCell<Inner>>,
}

impl Default for Trace {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Trace {
    /// A trace that records events (up to `limit`, then drops).
    pub fn enabled(limit: usize) -> Self {
        Trace {
            inner: Rc::new(RefCell::new(Inner {
                enabled: true,
                events: Vec::new(),
                limit,
            })),
        }
    }

    /// A trace that ignores everything.
    pub fn disabled() -> Self {
        Trace {
            inner: Rc::new(RefCell::new(Inner {
                enabled: false,
                events: Vec::new(),
                limit: 0,
            })),
        }
    }

    /// True if recording.
    pub fn is_enabled(&self) -> bool {
        self.inner.borrow().enabled
    }

    /// Record an event at virtual time `at`.
    pub fn emit(
        &self,
        at: SimTime,
        component: impl Into<String>,
        event: impl Into<String>,
        detail: impl fmt::Display,
    ) {
        let mut inner = self.inner.borrow_mut();
        if !inner.enabled || inner.events.len() >= inner.limit {
            return;
        }
        let ev = TraceEvent {
            at,
            component: component.into(),
            event: event.into(),
            detail: detail.to_string(),
        };
        inner.events.push(ev);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot all recorded events.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner.borrow().events.clone()
    }

    /// Events whose kind matches `event`.
    pub fn filter(&self, event: &str) -> Vec<TraceEvent> {
        self.inner
            .borrow()
            .events
            .iter()
            .filter(|e| e.event == event)
            .cloned()
            .collect()
    }

    /// Count of events with the given kind.
    pub fn count(&self, event: &str) -> usize {
        self.inner
            .borrow()
            .events
            .iter()
            .filter(|e| e.event == event)
            .count()
    }

    /// Render the whole trace, one event per line.
    pub fn render(&self) -> String {
        let inner = self.inner.borrow();
        let mut s = String::new();
        for e in &inner.events {
            s.push_str(&e.to_string());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::disabled();
        t.emit(SimTime::ZERO, "c", "e", "d");
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn enabled_trace_records_and_filters() {
        let t = Trace::enabled(100);
        t.emit(SimTime::ZERO + secs(1.0), "kubelet/n1", "pod-started", "p-1");
        t.emit(SimTime::ZERO + secs(2.0), "kubelet/n2", "pod-started", "p-2");
        t.emit(SimTime::ZERO + secs(3.0), "scheduler", "bound", "p-1->n1");
        assert_eq!(t.len(), 3);
        assert_eq!(t.count("pod-started"), 2);
        assert_eq!(t.filter("bound")[0].component, "scheduler");
        assert!(t.render().contains("pod-started"));
    }

    #[test]
    fn limit_caps_recording() {
        let t = Trace::enabled(2);
        for i in 0..5 {
            t.emit(SimTime::ZERO, "c", "e", i);
        }
        assert_eq!(t.len(), 2);
    }
}
