//! A capacity-`k` FIFO service station with built-in queueing statistics.
//!
//! This wraps [`Semaphore`] with measurement: wait
//! times, service times, utilization. It is the standard building block for
//! modelled hardware: CPU cores, disk channels, network links, registry
//! bandwidth.

use std::cell::RefCell;
use std::rc::Rc;

use crate::executor::{now, sleep};
use crate::sync::semaphore::{Permit, Semaphore};
use crate::time::{SimDuration, SimTime};

#[derive(Default, Clone, Debug)]
struct Stats {
    served: u64,
    total_wait: SimDuration,
    total_service: SimDuration,
    max_wait: SimDuration,
    busy_time: SimDuration,
    last_change: SimTime,
    in_service: usize,
}

/// FIFO resource with `capacity` parallel servers.
#[derive(Clone)]
pub struct Resource {
    name: Rc<str>,
    sem: Semaphore,
    stats: Rc<RefCell<Stats>>,
}

/// A claim on one server of a [`Resource`]; released on drop.
pub struct Claim {
    _permit: Permit,
    stats: Rc<RefCell<Stats>>,
    acquired_at: SimTime,
}

impl Resource {
    /// Create a named resource with `capacity` servers.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        Resource {
            name: Rc::from(name.into()),
            sem: Semaphore::new(capacity),
            stats: Rc::new(RefCell::new(Stats::default())),
        }
    }

    /// The resource's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total server count.
    pub fn capacity(&self) -> usize {
        self.sem.capacity()
    }

    /// Servers currently free.
    pub fn available(&self) -> usize {
        self.sem.available()
    }

    /// Requests waiting in the FIFO queue.
    pub fn queue_len(&self) -> usize {
        self.sem.queue_len()
    }

    /// Acquire one server, FIFO behind earlier requests.
    pub async fn acquire(&self) -> Claim {
        let requested = now();
        let permit = self.sem.acquire().await;
        let acquired = now();
        let wait = acquired - requested;
        {
            let mut st = self.stats.borrow_mut();
            let elapsed = acquired - st.last_change;
            let in_service = st.in_service as f64;
            st.busy_time += elapsed.mul_f64(in_service);
            st.last_change = acquired;
            st.in_service += 1;
            st.total_wait += wait;
            if wait > st.max_wait {
                st.max_wait = wait;
            }
        }
        Claim {
            _permit: permit,
            stats: Rc::clone(&self.stats),
            acquired_at: acquired,
        }
    }

    /// Acquire a server, hold it for `service_time`, release. Returns the
    /// time spent waiting in the queue.
    pub async fn serve(&self, service_time: SimDuration) -> SimDuration {
        let requested = now();
        let claim = self.acquire().await;
        let wait = now() - requested;
        sleep(service_time).await;
        drop(claim);
        wait
    }

    /// Number of completed services.
    pub fn served(&self) -> u64 {
        self.stats.borrow().served
    }

    /// Mean queue wait across completed acquisitions.
    pub fn mean_wait(&self) -> SimDuration {
        let st = self.stats.borrow();
        if st.served == 0 {
            SimDuration::ZERO
        } else {
            st.total_wait / st.served
        }
    }

    /// Maximum queue wait observed.
    pub fn max_wait(&self) -> SimDuration {
        self.stats.borrow().max_wait
    }

    /// Fraction of server-time busy since t=0 (0..=1 per server).
    pub fn utilization(&self, at: SimTime) -> f64 {
        let st = self.stats.borrow();
        let horizon = at.as_secs_f64() * self.sem.capacity() as f64;
        if horizon <= 0.0 {
            return 0.0;
        }
        let busy =
            st.busy_time.as_secs_f64() + (at - st.last_change).as_secs_f64() * st.in_service as f64;
        (busy / horizon).clamp(0.0, 1.0)
    }
}

impl Drop for Claim {
    fn drop(&mut self) {
        // During Sim teardown leftover tasks are dropped outside the run
        // loop; skip the stats update then (the permit still releases).
        let Some(sim) = crate::executor::try_current() else {
            return;
        };
        let released = sim.now();
        let mut st = self.stats.borrow_mut();
        let elapsed = released - st.last_change;
        let in_service = st.in_service as f64;
        st.busy_time += elapsed.mul_f64(in_service);
        st.last_change = released;
        st.in_service -= 1;
        st.served += 1;
        st.total_service += released - self.acquired_at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combinators::join_all;
    use crate::executor::{spawn, Sim};
    use crate::time::secs;

    #[test]
    fn serve_serializes_on_single_server() {
        let sim = Sim::new();
        let waits = sim.block_on(async {
            let r = Resource::new("disk", 1);
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let r = r.clone();
                    spawn(async move { r.serve(secs(2.0)).await })
                })
                .collect();
            join_all(handles).await
        });
        assert_eq!(waits, vec![secs(0.0), secs(2.0), secs(4.0)]);
    }

    #[test]
    fn stats_accumulate() {
        let sim = Sim::new();
        sim.block_on(async {
            let r = Resource::new("cpu", 2);
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let r = r.clone();
                    spawn(async move {
                        r.serve(secs(1.0)).await;
                    })
                })
                .collect();
            join_all(handles).await;
            assert_eq!(r.served(), 4);
            // Two waited 0, two waited 1s.
            assert_eq!(r.mean_wait(), secs(0.5));
            assert_eq!(r.max_wait(), secs(1.0));
            // 4 server-seconds of work over 2 servers × 2 seconds.
            let u = r.utilization(now());
            assert!((u - 1.0).abs() < 1e-9, "utilization {u}");
        });
    }

    #[test]
    fn utilization_partial() {
        let sim = Sim::new();
        sim.block_on(async {
            let r = Resource::new("link", 1);
            r.serve(secs(1.0)).await;
            sleep(secs(1.0)).await;
            let u = r.utilization(now());
            assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
        });
    }

    #[test]
    fn acquire_claim_holds_until_drop() {
        let sim = Sim::new();
        sim.block_on(async {
            let r = Resource::new("slot", 1);
            let c = r.acquire().await;
            assert_eq!(r.available(), 0);
            drop(c);
            assert_eq!(r.available(), 1);
        });
    }
}
