//! Small future combinators used throughout the simulation: racing two
//! futures, timeouts in virtual time, and joining homogeneous sets.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

use crate::executor::{sleep, Sleep};
use crate::time::SimDuration;

/// Result of [`race`].
#[derive(Debug, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future finished first.
    Left(A),
    /// The second future finished first.
    Right(B),
}

/// Run two futures concurrently, resolving with whichever finishes first.
/// The loser is dropped (cancelled). Ties go to the left future.
pub fn race<A, B>(a: A, b: B) -> Race<A, B>
where
    A: Future,
    B: Future,
{
    Race { a, b }
}

/// Future returned by [`race`].
pub struct Race<A, B> {
    a: A,
    b: B,
}

impl<A: Future, B: Future> Future for Race<A, B> {
    type Output = Either<A::Output, B::Output>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: we never move `a` or `b` out of the pinned struct; we only
        // project pinned references to the fields.
        let this = unsafe { self.get_unchecked_mut() };
        let a = unsafe { Pin::new_unchecked(&mut this.a) };
        if let Poll::Ready(v) = a.poll(cx) {
            return Poll::Ready(Either::Left(v));
        }
        let b = unsafe { Pin::new_unchecked(&mut this.b) };
        if let Poll::Ready(v) = b.poll(cx) {
            return Poll::Ready(Either::Right(v));
        }
        Poll::Pending
    }
}

/// Error returned by [`timeout`] when the deadline elapses first.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct Elapsed;

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "virtual-time deadline elapsed")
    }
}
impl std::error::Error for Elapsed {}

/// Run `fut` with a virtual-time deadline.
pub fn timeout<F: Future>(d: SimDuration, fut: F) -> Timeout<F> {
    Timeout {
        fut,
        sleep: sleep(d),
    }
}

/// Future returned by [`timeout`].
pub struct Timeout<F> {
    fut: F,
    sleep: Sleep,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: field projection only; nothing is moved.
        let this = unsafe { self.get_unchecked_mut() };
        let fut = unsafe { Pin::new_unchecked(&mut this.fut) };
        if let Poll::Ready(v) = fut.poll(cx) {
            return Poll::Ready(Ok(v));
        }
        let sleep = unsafe { Pin::new_unchecked(&mut this.sleep) };
        if sleep.poll(cx).is_ready() {
            return Poll::Ready(Err(Elapsed));
        }
        Poll::Pending
    }
}

/// Await every join handle, collecting results in order.
pub async fn join_all<T: 'static>(handles: Vec<crate::executor::JoinHandle<T>>) -> Vec<T> {
    let mut out = Vec::with_capacity(handles.len());
    for h in handles {
        out.push(h.await);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{now, sleep, spawn, Sim};
    use crate::time::{secs, SimTime};

    #[test]
    fn race_picks_earlier() {
        let sim = Sim::new();
        let r = sim.block_on(async {
            race(
                async {
                    sleep(secs(2.0)).await;
                    "slow"
                },
                async {
                    sleep(secs(1.0)).await;
                    "fast"
                },
            )
            .await
        });
        assert_eq!(r, Either::Right("fast"));
        assert_eq!(sim.now(), SimTime::ZERO + secs(1.0));
    }

    #[test]
    fn race_tie_goes_left() {
        let sim = Sim::new();
        let r = sim.block_on(async {
            race(
                async {
                    sleep(secs(1.0)).await;
                    1
                },
                async {
                    sleep(secs(1.0)).await;
                    2
                },
            )
            .await
        });
        assert_eq!(r, Either::Left(1));
    }

    #[test]
    fn timeout_ok_when_future_is_fast() {
        let sim = Sim::new();
        let r = sim.block_on(async {
            timeout(secs(5.0), async {
                sleep(secs(1.0)).await;
                42
            })
            .await
        });
        assert_eq!(r, Ok(42));
        assert_eq!(sim.now(), SimTime::ZERO + secs(1.0));
    }

    #[test]
    fn timeout_elapses() {
        let sim = Sim::new();
        let r = sim.block_on(async {
            timeout(secs(1.0), async {
                sleep(secs(100.0)).await;
                42
            })
            .await
        });
        assert_eq!(r, Err(Elapsed));
        assert_eq!(sim.now(), SimTime::ZERO + secs(1.0));
        // The loser's 100s timer must be cancelled: idle run stays at 1s.
        sim.run_until_idle();
        assert_eq!(sim.now(), SimTime::ZERO + secs(1.0));
    }

    #[test]
    fn join_all_preserves_order() {
        let sim = Sim::new();
        let out = sim.block_on(async {
            let handles: Vec<_> = (0..4u64)
                .map(|i| {
                    spawn(async move {
                        sleep(secs((4 - i) as f64)).await;
                        i
                    })
                })
                .collect();
            join_all(handles).await
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(sim.now(), SimTime::ZERO + secs(4.0));
    }

    #[test]
    fn nested_timeouts() {
        let sim = Sim::new();
        let r = sim.block_on(async {
            timeout(secs(10.0), async {
                let inner = timeout(secs(1.0), async {
                    sleep(secs(5.0)).await;
                })
                .await;
                assert_eq!(inner, Err(Elapsed));
                now()
            })
            .await
        });
        assert_eq!(r, Ok(SimTime::ZERO + secs(1.0)));
    }
}
