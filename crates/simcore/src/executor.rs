//! Deterministic single-threaded async executor over virtual time.
//!
//! The executor polls tasks from a FIFO ready queue. When no task is ready it
//! advances the virtual clock to the earliest pending timer and wakes the
//! sleepers registered for that instant. Within one instant, tasks run in the
//! order they were woken, and timers scheduled for the same instant fire in
//! the order they were created — so a run is a pure function of the program
//! and its RNG seeds.
//!
//! # Internals
//!
//! Three structures carry the hot path (see `DESIGN.md` §16 for the full
//! rationale; the pre-rewrite implementation survives verbatim as the
//! `swf-simref` oracle crate, and `tests/executor_equivalence.rs` proves the
//! two produce bit-identical schedules):
//!
//! - **Task slab**: tasks live in a `Vec` of slots recycled through a free
//!   list. A [`TaskId`] packs the slot index with a per-slot generation
//!   counter, so a waker aimed at a completed task can never reach the
//!   slot's next occupant.
//! - **Intrusive ready list**: each slot carries a `next_ready` link; the
//!   ready queue is just head/tail indices into the slab. Wakes are
//!   coalesced by a per-task `queued` flag (cleared when a poll starts), so
//!   a task is enqueued at most once per poll round and a wake costs two
//!   index writes — no allocation, no locking.
//! - **Timer wheel**: pending timers sit in the hierarchical wheel of
//!   [`crate::wheel`], which advances to the next deadline by scanning
//!   per-level occupancy bitmaps instead of popping a comparison heap.

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::mem::ManuallyDrop;
use std::pin::Pin;
use std::rc::{Rc, Weak};
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

use crate::error::SimError;
use crate::time::{SimDuration, SimTime};
use crate::wheel::TimerWheel;

/// Identifier of a spawned task: the slab slot index in the low 32 bits and
/// the slot's generation at spawn time in the high 32 bits. Ids are unique
/// across a simulation's lifetime even though slots are recycled.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct TaskId(pub u64);

impl TaskId {
    fn pack(index: u32, gen: u32) -> TaskId {
        TaskId((u64::from(gen) << 32) | u64::from(index))
    }
}

type LocalFuture = Pin<Box<dyn Future<Output = ()>>>;

/// Sentinel for "no slot" in the free list and ready list links.
const NONE_IDX: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Wakers
// ---------------------------------------------------------------------------

/// Wake-side state of one task, shared by every `Waker` clone handed out
/// during that task's polls.
struct WakerData {
    exec: Weak<Inner>,
    index: u32,
    gen: u32,
    /// Coalesces wakes between polls: set when the task is enqueued,
    /// cleared at the start of its next poll, so however many timers and
    /// channels wake a task in one round, it occupies exactly one ready
    /// link. On a completed task the flag latches `true`, making every
    /// later stale wake a no-op.
    queued: Cell<bool>,
}

impl WakerData {
    fn wake(&self) {
        if !self.queued.replace(true) {
            crate::perf::note_wake();
            if let Some(inner) = self.exec.upgrade() {
                inner.ready_push(self.index, self.gen);
            }
        }
    }

    fn waker(self: &Rc<Self>) -> Waker {
        // SAFETY: the vtable below upholds the RawWaker contract over a
        // plain `Rc` (see VTABLE).
        unsafe { Waker::from_raw(raw_waker(self)) }
    }
}

// SAFETY: `Waker` is nominally `Send + Sync`, but this executor is strictly
// single-threaded — the workspace linter's D1 rule bans `std::thread` in
// every simulation crate, so a waker can never leave the thread it was
// created on. The vtable therefore manages a plain `Rc<WakerData>` by hand:
// `clone` bumps the strong count, `wake` consumes one reference,
// `wake_by_ref` borrows without consuming, `drop` releases. The previous
// implementation satisfied the same contract with an `Arc` + `Mutex`d queue
// whose lock was never contended; this removes both from the hot path.
const VTABLE: RawWakerVTable = RawWakerVTable::new(vt_clone, vt_wake, vt_wake_by_ref, vt_drop);

fn raw_waker(data: &Rc<WakerData>) -> RawWaker {
    RawWaker::new(Rc::into_raw(Rc::clone(data)).cast(), &VTABLE)
}

unsafe fn vt_clone(ptr: *const ()) -> RawWaker {
    Rc::increment_strong_count(ptr.cast::<WakerData>());
    RawWaker::new(ptr, &VTABLE)
}

unsafe fn vt_wake(ptr: *const ()) {
    Rc::from_raw(ptr.cast::<WakerData>()).wake();
}

unsafe fn vt_wake_by_ref(ptr: *const ()) {
    ManuallyDrop::new(Rc::from_raw(ptr.cast::<WakerData>())).wake();
}

unsafe fn vt_drop(ptr: *const ()) {
    drop(Rc::from_raw(ptr.cast::<WakerData>()));
}

// ---------------------------------------------------------------------------
// Task slab
// ---------------------------------------------------------------------------

/// A task's future plus its shared waker state.
struct TaskCell {
    /// Taken out for the duration of a poll, so task code may reentrantly
    /// use the slab (spawn, wake) while its own future runs.
    fut: Option<LocalFuture>,
    waker: Rc<WakerData>,
}

/// Occupancy of one slab slot.
enum SlotState {
    /// Free; `next_free` chains the free list.
    Vacant { next_free: u32 },
    /// A spawned, not-yet-completed task.
    Live(TaskCell),
    /// Completed while still linked in the ready list. The slot stays
    /// reserved (not on the free list) until the stale link is popped, so
    /// the link can never deliver a poll to a later occupant — see the
    /// slab-reuse regression tests.
    Dead,
}

struct Slot {
    /// Bumped when the slot is freed; wakers carry the generation they
    /// were created under and are ignored once it goes stale.
    gen: u32,
    /// Intrusive ready-list link (`NONE_IDX` = unlinked or tail).
    next_ready: u32,
    state: SlotState,
}

struct Inner {
    clock: Cell<SimTime>,
    tasks: RefCell<Vec<Slot>>,
    /// Head of the vacant-slot free list.
    free_head: Cell<u32>,
    /// FIFO ready list threaded through `Slot::next_ready`.
    ready_head: Cell<u32>,
    ready_tail: Cell<u32>,
    ready_len: Cell<usize>,
    live_tasks: Cell<usize>,
    timers: RefCell<TimerWheel>,
    next_timer_seq: Cell<u64>,
    steps: Cell<u64>,
    step_limit: Cell<u64>,
    spawned_total: Cell<u64>,
}

impl Inner {
    /// Link a live task at the ready-list tail. Stale wakes — generation
    /// mismatch or a completed/vacated slot — fall through silently: the
    /// pre-rewrite executor pushed a stale id that the pop side skipped;
    /// here the skip happens at link time.
    fn ready_push(&self, index: u32, gen: u32) {
        let mut tasks = self.tasks.borrow_mut();
        match tasks.get_mut(index as usize) {
            Some(slot) if slot.gen == gen && matches!(slot.state, SlotState::Live(_)) => {
                slot.next_ready = NONE_IDX;
            }
            _ => return,
        }
        let tail = self.ready_tail.get();
        if tail == NONE_IDX {
            self.ready_head.set(index);
        } else if let Some(prev) = tasks.get_mut(tail as usize) {
            prev.next_ready = index;
        }
        self.ready_tail.set(index);
        let depth = self.ready_len.get() + 1;
        self.ready_len.set(depth);
        crate::perf::note_ready_depth(depth);
    }

    /// Unlink the next live task from the ready list, lazily retiring
    /// `Dead` slots (tasks that completed while linked) on the way.
    fn ready_pop(&self) -> Option<u32> {
        loop {
            let head = self.ready_head.get();
            if head == NONE_IDX {
                return None;
            }
            let mut tasks = self.tasks.borrow_mut();
            let Some(slot) = tasks.get_mut(head as usize) else {
                // Unreachable: links always point at allocated slots.
                self.ready_head.set(NONE_IDX);
                self.ready_tail.set(NONE_IDX);
                return None;
            };
            self.ready_head.set(slot.next_ready);
            if slot.next_ready == NONE_IDX {
                self.ready_tail.set(NONE_IDX);
            }
            slot.next_ready = NONE_IDX;
            self.ready_len.set(self.ready_len.get().saturating_sub(1));
            match slot.state {
                SlotState::Live(_) => return Some(head),
                SlotState::Dead => {
                    // The stale link is gone; the slot may now be reused.
                    slot.gen = slot.gen.wrapping_add(1);
                    slot.state = SlotState::Vacant {
                        next_free: self.free_head.get(),
                    };
                    self.free_head.set(head);
                }
                SlotState::Vacant { .. } => {
                    debug_assert!(false, "vacant slot linked in ready list");
                }
            }
        }
    }
}

/// Handle to a simulation. Cloning is cheap; all clones refer to the same
/// virtual world.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<Inner>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<Sim>> = const { RefCell::new(Vec::new()) };
}

struct EnterGuard;

impl Drop for EnterGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

fn enter(sim: &Sim) -> EnterGuard {
    CURRENT.with(|c| c.borrow_mut().push(sim.clone()));
    EnterGuard
}

/// The simulation handle of the currently running task.
///
/// # Panics
/// Panics when called outside a running simulation.
pub fn current() -> Sim {
    CURRENT.with(|c| {
        c.borrow()
            .last()
            .cloned()
            .expect("swf-simcore: no simulation is running on this thread")
    })
}

/// The simulation handle of the currently running task, or `None` when no
/// simulation is active on this thread (e.g. during `Sim` teardown, when
/// leftover task futures are dropped outside the run loop).
pub fn try_current() -> Option<Sim> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// The current virtual time of the running simulation.
pub fn now() -> SimTime {
    current().now()
}

/// Spawn a task onto the currently running simulation.
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    current().spawn(fut)
}

impl Sim {
    /// Create a fresh simulation at `t = 0`.
    pub fn new() -> Self {
        Sim {
            inner: Rc::new(Inner {
                clock: Cell::new(SimTime::ZERO),
                tasks: RefCell::new(Vec::new()),
                free_head: Cell::new(NONE_IDX),
                ready_head: Cell::new(NONE_IDX),
                ready_tail: Cell::new(NONE_IDX),
                ready_len: Cell::new(0),
                live_tasks: Cell::new(0),
                timers: RefCell::new(TimerWheel::new()),
                next_timer_seq: Cell::new(0),
                steps: Cell::new(0),
                step_limit: Cell::new(u64::MAX),
                spawned_total: Cell::new(0),
            }),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.clock.get()
    }

    /// Number of task polls executed so far.
    pub fn steps(&self) -> u64 {
        self.inner.steps.get()
    }

    /// Total number of tasks ever spawned.
    pub fn spawned_total(&self) -> u64 {
        self.inner.spawned_total.get()
    }

    /// Number of tasks that have not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.inner.live_tasks.get()
    }

    /// Cap the number of task polls; exceeding it panics. A guard against
    /// accidental infinite wake loops in model code.
    pub fn set_step_limit(&self, limit: u64) {
        self.inner.step_limit.set(limit);
    }

    /// Spawn a task. The task starts the next time the executor runs.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        self.inner
            .spawned_total
            .set(self.inner.spawned_total.get() + 1);
        crate::perf::note_spawn();

        let result: Rc<RefCell<JoinState<F::Output>>> =
            Rc::new(RefCell::new(JoinState::Pending(None)));
        let result2 = Rc::clone(&result);
        let wrapped: LocalFuture = Box::pin(async move {
            let out = fut.await;
            let waker = match std::mem::replace(&mut *result2.borrow_mut(), JoinState::Done(out)) {
                JoinState::Pending(w) => w,
                JoinState::Done(_) | JoinState::Taken => None,
            };
            if let Some(w) = waker {
                w.wake();
            }
        });

        let (index, gen) = {
            let mut tasks = self.inner.tasks.borrow_mut();
            let index = match self.inner.free_head.get() {
                NONE_IDX => {
                    tasks.push(Slot {
                        gen: 0,
                        next_ready: NONE_IDX,
                        state: SlotState::Vacant {
                            next_free: NONE_IDX,
                        },
                    });
                    (tasks.len() - 1) as u32
                }
                idx => {
                    let next = match tasks[idx as usize].state {
                        SlotState::Vacant { next_free } => next_free,
                        // Unreachable: the free list only chains vacant slots.
                        SlotState::Live(_) | SlotState::Dead => NONE_IDX,
                    };
                    self.inner.free_head.set(next);
                    idx
                }
            };
            let gen = tasks[index as usize].gen;
            let waker = Rc::new(WakerData {
                exec: Rc::downgrade(&self.inner),
                index,
                gen,
                queued: Cell::new(true), // linked right below
            });
            tasks[index as usize].state = SlotState::Live(TaskCell {
                fut: Some(wrapped),
                waker,
            });
            (index, gen)
        };
        self.inner.live_tasks.set(self.inner.live_tasks.get() + 1);
        self.inner.ready_push(index, gen);
        JoinHandle {
            state: result,
            id: TaskId::pack(index, gen),
        }
    }

    /// Register a timer at absolute time `at`; used by `sleep` and friends.
    pub(crate) fn register_timer(&self, at: SimTime) -> TimerHandle {
        let seq = self.inner.next_timer_seq.get();
        self.inner.next_timer_seq.set(seq + 1);
        crate::perf::note_timer_registered();
        let state = Rc::new(TimerState {
            waker: RefCell::new(None),
            fired: Cell::new(at <= self.now()),
            cancelled: Cell::new(false),
        });
        if state.fired.get() {
            // Born fired: a deadline at or before now never enters the wheel.
            crate::perf::note_timer_fired();
        } else {
            self.inner.timers.borrow_mut().insert(
                at.as_nanos(),
                seq,
                Rc::clone(&state),
                self.now().as_nanos(),
            );
        }
        TimerHandle { state }
    }

    fn poll_one(&self, index: u32) {
        let (mut fut, waker) = {
            let mut tasks = self.inner.tasks.borrow_mut();
            let Some(slot) = tasks.get_mut(index as usize) else {
                return;
            };
            let SlotState::Live(cell) = &mut slot.state else {
                return;
            };
            let Some(fut) = cell.fut.take() else {
                return;
            };
            // Clear the coalescing flag before polling so a wake arriving
            // mid-poll re-links the task for another round.
            cell.waker.queued.set(false);
            (fut, Rc::clone(&cell.waker))
        };
        crate::perf::note_poll();
        let steps = self.inner.steps.get() + 1;
        self.inner.steps.set(steps);
        if steps > self.inner.step_limit.get() {
            panic!(
                "swf-simcore: step limit {} exceeded (possible wake loop); {} live tasks",
                self.inner.step_limit.get(),
                self.live_tasks()
            );
        }
        let w = waker.waker();
        let mut cx = Context::from_waker(&w);
        match fut.as_mut().poll(&mut cx) {
            Poll::Pending => {
                let mut tasks = self.inner.tasks.borrow_mut();
                if let Some(slot) = tasks.get_mut(index as usize) {
                    if let SlotState::Live(cell) = &mut slot.state {
                        cell.fut = Some(fut);
                    }
                }
            }
            Poll::Ready(()) => {
                self.retire(index, &waker);
                // `fut` itself drops at the end of this call, after the
                // slab borrow is released, so destructors may spawn/wake.
            }
        }
    }

    /// Free a completed task's slot — or park it as `Dead` if the task
    /// re-woke itself during its final poll and is still linked.
    fn retire(&self, index: u32, waker: &Rc<WakerData>) {
        let mut tasks = self.inner.tasks.borrow_mut();
        if let Some(slot) = tasks.get_mut(index as usize) {
            slot.state = if waker.queued.get() {
                SlotState::Dead
            } else {
                slot.gen = slot.gen.wrapping_add(1);
                let vacant = SlotState::Vacant {
                    next_free: self.inner.free_head.get(),
                };
                self.inner.free_head.set(index);
                vacant
            };
        }
        self.inner
            .live_tasks
            .set(self.inner.live_tasks.get().saturating_sub(1));
    }

    /// Fire every timer scheduled for the earliest pending instant, advancing
    /// the clock to it. Returns false if no timers remain.
    fn advance_to_next_timer(&self) -> bool {
        // The wheel skips cancelled timers without advancing time for them.
        let Some((at, batch)) = self.inner.timers.borrow_mut().pop_next_due() else {
            return false;
        };
        let at = SimTime::from_nanos(at);
        debug_assert!(at >= self.now(), "timer in the past");
        self.inner.clock.set(at);
        crate::perf::note_clock_advance();
        for entry in batch {
            entry.state.fired.set(true);
            crate::perf::note_timer_fired();
            let waker = entry.state.waker.borrow_mut().take();
            if let Some(w) = waker {
                w.wake();
            }
        }
        true
    }

    /// Run until no task is ready and no timer is pending.
    pub fn run_until_idle(&self) {
        let _guard = enter(self);
        loop {
            while let Some(index) = self.inner.ready_pop() {
                self.poll_one(index);
            }
            if !self.advance_to_next_timer() {
                break;
            }
        }
    }

    /// Run the future to completion on this simulation, driving all spawned
    /// tasks as needed. Returns as soon as the future completes, even if
    /// other spawned tasks (e.g. controller loops with periodic timers) are
    /// still live — exactly like a conventional runtime's `block_on`.
    ///
    /// # Panics
    /// Panics if the simulation goes idle (no runnable task, no pending
    /// timer) before the future completes — i.e. the program deadlocked in
    /// virtual time. Harnesses that expect stalls can use
    /// [`Sim::try_block_on`] instead.
    pub fn block_on<F>(&self, fut: F) -> F::Output
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        match self.try_block_on(fut) {
            Ok(out) => out,
            Err(e) => panic!("swf-simcore: {e}"),
        }
    }

    /// Like [`Sim::block_on`], but a virtual-time deadlock is reported as
    /// [`SimError::Deadlock`] instead of a panic.
    pub fn try_block_on<F>(&self, fut: F) -> Result<F::Output, SimError>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let handle = self.spawn(fut);
        let _guard = enter(self);
        loop {
            while let Some(index) = self.inner.ready_pop() {
                self.poll_one(index);
            }
            if handle.is_finished() {
                break;
            }
            if !self.advance_to_next_timer() {
                break;
            }
        }
        handle.try_take().ok_or_else(|| SimError::Deadlock {
            at: self.now(),
            live_tasks: self.live_tasks(),
        })
    }
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

/// Per-timer flags shared between the wheel entry and the owning future.
pub(crate) struct TimerState {
    /// Waker of the task awaiting this timer, if it has been polled.
    pub(crate) waker: RefCell<Option<Waker>>,
    /// Set when the deadline is reached (or at registration, for a
    /// deadline at or before now).
    pub(crate) fired: Cell<bool>,
    /// Set by [`TimerHandle::cancel`]; the wheel drops the entry lazily.
    pub(crate) cancelled: Cell<bool>,
}

pub(crate) struct TimerHandle {
    state: Rc<TimerState>,
}

impl TimerHandle {
    pub(crate) fn fired(&self) -> bool {
        self.state.fired.get()
    }

    pub(crate) fn set_waker(&self, waker: &Waker) {
        *self.state.waker.borrow_mut() = Some(waker.clone());
    }

    pub(crate) fn cancel(&self) {
        self.state.cancelled.set(true);
    }
}

enum JoinState<T> {
    Pending(Option<Waker>),
    Done(T),
    Taken,
}

/// Awaitable handle to a spawned task's result.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
    id: TaskId,
}

impl<T> JoinHandle<T> {
    /// The spawned task's id.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Take the result if the task has completed.
    pub fn try_take(&self) -> Option<T> {
        let mut s = self.state.borrow_mut();
        if !matches!(&*s, JoinState::Done(_)) {
            return None;
        }
        match std::mem::replace(&mut *s, JoinState::Taken) {
            JoinState::Done(v) => Some(v),
            JoinState::Pending(_) | JoinState::Taken => None,
        }
    }

    /// True once the task has finished (even if the result was taken).
    pub fn is_finished(&self) -> bool {
        !matches!(&*self.state.borrow(), JoinState::Pending(_))
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut s = self.state.borrow_mut();
        if let JoinState::Pending(w) = &mut *s {
            *w = Some(cx.waker().clone());
            return Poll::Pending;
        }
        match std::mem::replace(&mut *s, JoinState::Taken) {
            JoinState::Done(v) => Poll::Ready(v),
            JoinState::Pending(_) | JoinState::Taken => {
                panic!("JoinHandle polled after completion")
            }
        }
    }
}

/// Sleep for `d` of virtual time.
pub fn sleep(d: SimDuration) -> Sleep {
    let sim = current();
    let at = sim.now() + d;
    Sleep {
        handle: sim.register_timer(at),
    }
}

/// Sleep until the absolute virtual instant `at`.
pub fn sleep_until(at: SimTime) -> Sleep {
    let sim = current();
    Sleep {
        handle: sim.register_timer(at),
    }
}

/// Future returned by [`sleep`] / [`sleep_until`].
pub struct Sleep {
    handle: TimerHandle,
}

impl Future for Sleep {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.handle.fired() {
            Poll::Ready(())
        } else {
            self.handle.set_waker(cx.waker());
            Poll::Pending
        }
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        self.handle.cancel();
    }
}

/// A fixed-rate virtual ticker: each [`tick`](Interval::tick) completes
/// at the next multiple of the period from the ticker's creation, so a
/// periodic task (e.g. the swf-obs snapshot scheduler) fires on an
/// exact, drift-free grid regardless of how long its body appears to
/// take between awaits. Each tick is one wheel insert; the bitmap scan
/// jumps straight to the grid point without visiting the empty slots in
/// between.
pub struct Interval {
    next: SimTime,
    period: SimDuration,
}

/// Create a ticker firing every `period`, first at `now + period`.
/// Must be called inside a running simulation. A zero period would spin
/// the executor without advancing time, so it panics loudly instead.
pub fn interval(period: SimDuration) -> Interval {
    assert!(!period.is_zero(), "interval period must be non-zero");
    Interval {
        next: current().now() + period,
        period,
    }
}

impl Interval {
    /// Wait for the next grid point and return the instant it fired at.
    pub async fn tick(&mut self) -> SimTime {
        let at = self.next;
        sleep_until(at).await;
        self.next = at + self.period;
        at
    }

    /// The instant the next [`tick`](Interval::tick) will complete at.
    pub fn next_at(&self) -> SimTime {
        self.next
    }
}

/// Yield once, letting every other ready task run before this one resumes.
pub async fn yield_now() {
    struct YieldNow(bool);
    impl Future for YieldNow {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.0 {
                Poll::Ready(())
            } else {
                self.0 = true;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }
    YieldNow(false).await
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::secs;

    #[test]
    fn block_on_returns_value() {
        let sim = Sim::new();
        assert_eq!(sim.block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn sleep_advances_virtual_clock() {
        let sim = Sim::new();
        let t = sim.block_on(async {
            sleep(secs(10.0)).await;
            sleep(secs(2.5)).await;
            now()
        });
        assert_eq!(t, SimTime::ZERO + secs(12.5));
    }

    #[test]
    fn spawned_tasks_interleave_deterministically() {
        let sim = Sim::new();
        let log = sim.block_on(async {
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut handles = Vec::new();
            for i in 0..3u32 {
                let log = Rc::clone(&log);
                handles.push(spawn(async move {
                    sleep(secs(f64::from(3 - i))).await;
                    log.borrow_mut().push(i);
                }));
            }
            for h in handles {
                h.await;
            }
            Rc::try_unwrap(log).unwrap().into_inner()
        });
        // Shorter sleeps fire first: i=2 slept 1s, i=1 slept 2s, i=0 slept 3s.
        assert_eq!(log, vec![2, 1, 0]);
    }

    #[test]
    fn simultaneous_timers_fire_in_creation_order() {
        let sim = Sim::new();
        let log = sim.block_on(async {
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut handles = Vec::new();
            for i in 0..5u32 {
                let log = Rc::clone(&log);
                handles.push(spawn(async move {
                    sleep(secs(1.0)).await;
                    log.borrow_mut().push(i);
                }));
            }
            for h in handles {
                h.await;
            }
            Rc::try_unwrap(log).unwrap().into_inner()
        });
        assert_eq!(log, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn join_handle_before_and_after_completion() {
        let sim = Sim::new();
        sim.block_on(async {
            let h = spawn(async {
                sleep(secs(1.0)).await;
                7
            });
            assert!(!h.is_finished());
            assert_eq!(h.try_take(), None);
            let v = h.await;
            assert_eq!(v, 7);
        });
    }

    #[test]
    #[should_panic(expected = "deadlocked")]
    fn deadlock_is_detected() {
        let sim = Sim::new();
        sim.block_on(async {
            // A oneshot-like hole: pending forever with no timer.
            std::future::pending::<()>().await;
        });
    }

    #[test]
    fn try_block_on_reports_deadlock_as_error() {
        let sim = Sim::new();
        let err = sim
            .try_block_on(async {
                sleep(secs(3.0)).await;
                std::future::pending::<()>().await;
            })
            .unwrap_err();
        assert_eq!(
            err,
            SimError::Deadlock {
                at: SimTime::ZERO + secs(3.0),
                live_tasks: 1,
            }
        );
    }

    #[test]
    fn zero_duration_sleep_completes() {
        let sim = Sim::new();
        sim.block_on(async {
            sleep(SimDuration::ZERO).await;
            sleep_until(now()).await;
        });
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn yield_now_lets_others_run() {
        let sim = Sim::new();
        let order = sim.block_on(async {
            let order = Rc::new(RefCell::new(Vec::new()));
            let o1 = Rc::clone(&order);
            let h = spawn(async move {
                o1.borrow_mut().push("spawned");
            });
            order.borrow_mut().push("before-yield");
            yield_now().await;
            order.borrow_mut().push("after-yield");
            h.await;
            Rc::try_unwrap(order).unwrap().into_inner()
        });
        assert_eq!(order, vec!["before-yield", "spawned", "after-yield"]);
    }

    #[test]
    fn dropping_sleep_cancels_timer() {
        let sim = Sim::new();
        sim.block_on(async {
            {
                let _s = sleep(secs(1000.0));
                // dropped without await
            }
            sleep(secs(1.0)).await;
        });
        // run_until_idle should not advance to the cancelled 1000s timer.
        sim.run_until_idle();
        assert_eq!(sim.now(), SimTime::ZERO + secs(1.0));
    }

    #[test]
    #[should_panic(expected = "step limit")]
    fn step_limit_catches_wake_loops() {
        let sim = Sim::new();
        sim.set_step_limit(100);
        sim.block_on(async {
            loop {
                yield_now().await;
            }
        });
    }

    #[test]
    fn many_tasks_complete() {
        let sim = Sim::new();
        let total = sim.block_on(async {
            let mut handles = Vec::new();
            for i in 0..1000u64 {
                handles.push(spawn(async move {
                    sleep(SimDuration::from_nanos(i % 7)).await;
                    i
                }));
            }
            let mut sum = 0;
            for h in handles {
                sum += h.await;
            }
            sum
        });
        assert_eq!(total, 499_500);
        assert_eq!(sim.live_tasks(), 0);
    }

    // -- slab-reuse and wake-coalescing regression tests ------------------

    /// Future that stashes its task's waker on first poll, then completes.
    struct CaptureWaker(Rc<RefCell<Option<Waker>>>);

    impl Future for CaptureWaker {
        type Output = ();
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            *self.0.borrow_mut() = Some(cx.waker().clone());
            Poll::Ready(())
        }
    }

    /// Future that counts its polls and waits on a shared flag.
    struct FlagWait {
        flag: Rc<Cell<bool>>,
        polls: Rc<Cell<u32>>,
        waker: Rc<RefCell<Option<Waker>>>,
    }

    impl Future for FlagWait {
        type Output = ();
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            self.polls.set(self.polls.get() + 1);
            if self.flag.get() {
                Poll::Ready(())
            } else {
                *self.waker.borrow_mut() = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }

    #[test]
    fn stale_waker_does_not_wake_slab_reuser() {
        // Task A completes and its slot is recycled by task B. A waker
        // captured while A was live carries A's generation; invoking it
        // after the recycle must not poll B.
        let sim = Sim::new();
        sim.block_on(async {
            let stale: Rc<RefCell<Option<Waker>>> = Rc::new(RefCell::new(None));
            let s2 = Rc::clone(&stale);
            let a = spawn(CaptureWaker(s2));
            a.await; // A's slot is now on the free list

            let flag = Rc::new(Cell::new(false));
            let polls = Rc::new(Cell::new(0));
            let b_waker: Rc<RefCell<Option<Waker>>> = Rc::new(RefCell::new(None));
            let b = spawn(FlagWait {
                flag: Rc::clone(&flag),
                polls: Rc::clone(&polls),
                waker: Rc::clone(&b_waker),
            });
            yield_now().await; // B polls once and parks
            assert_eq!(polls.get(), 1);

            let w = stale.borrow_mut().take().unwrap();
            w.wake(); // aimed at A's (index, generation)
            yield_now().await;
            yield_now().await;
            assert_eq!(polls.get(), 1, "stale wake polled the slot's new occupant");

            flag.set(true);
            b_waker.borrow_mut().take().unwrap().wake();
            b.await;
            assert_eq!(polls.get(), 2);
        });
    }

    /// Future that wakes itself twice mid-poll, then completes on the next.
    struct DoubleWake {
        polls: Rc<Cell<u32>>,
    }

    impl Future for DoubleWake {
        type Output = ();
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            self.polls.set(self.polls.get() + 1);
            if self.polls.get() == 1 {
                // Two wakes race the in-progress poll: coalescing must
                // collapse them into exactly one re-poll, not zero.
                cx.waker().wake_by_ref();
                cx.waker().wake_by_ref();
                Poll::Pending
            } else {
                Poll::Ready(())
            }
        }
    }

    #[test]
    fn wake_racing_a_poll_is_coalesced_not_dropped() {
        let sim = Sim::new();
        let polls = Rc::new(Cell::new(0));
        let p2 = Rc::clone(&polls);
        sim.block_on(DoubleWake { polls: p2 });
        assert_eq!(
            polls.get(),
            2,
            "mid-poll wakes must coalesce to one re-poll"
        );
    }

    /// Future that wakes itself and completes in the same poll.
    struct WakeThenDone;

    impl Future for WakeThenDone {
        type Output = ();
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            cx.waker().wake_by_ref();
            Poll::Ready(())
        }
    }

    #[test]
    fn task_completing_while_requeued_retires_safely() {
        // A task that wakes itself and then completes leaves a stale link
        // in the ready list. The slot must stay reserved until that link
        // is popped, and later spawns must run normally.
        let sim = Sim::new();
        sim.block_on(async {
            let h = spawn(WakeThenDone);
            yield_now().await; // executor pops the dead link here
            let h2 = spawn(async { 42 });
            assert_eq!(h2.await, 42);
            h.await;
        });
        assert_eq!(sim.live_tasks(), 0);
    }
}
