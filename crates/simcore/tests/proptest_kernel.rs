//! Property-based tests for the simulation kernel: time algebra, executor
//! determinism, semaphore conservation, FIFO resource ordering.

use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

use swf_simcore::sync::Semaphore;
use swf_simcore::{join_all, now, sleep, spawn, Resource, Sim, SimDuration, SimTime};

proptest! {
    /// Time addition is associative and ordered.
    #[test]
    fn time_add_is_monotone(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let t = SimTime::from_nanos(a);
        let d = SimDuration::from_nanos(b);
        let t2 = t + d;
        prop_assert!(t2 >= t);
        prop_assert_eq!(t2 - t, d);
    }

    /// from_secs_f64/as_secs_f64 roundtrip within float precision.
    #[test]
    fn duration_secs_roundtrip(s in 0.0f64..1.0e6) {
        let d = SimDuration::from_secs_f64(s);
        let back = d.as_secs_f64();
        prop_assert!((back - s).abs() < 1e-6, "{} vs {}", back, s);
    }

    /// The makespan of N tasks sleeping d each behind a capacity-c semaphore
    /// is ceil(N/c) * d — the textbook queueing identity.
    #[test]
    fn semaphore_batch_makespan(
        n in 1usize..20,
        c in 1usize..8,
        d_ms in 1u64..500,
    ) {
        let sim = Sim::new();
        let end = sim.block_on(async move {
            let sem = Semaphore::new(c);
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    let sem = sem.clone();
                    spawn(async move {
                        let _p = sem.acquire().await;
                        sleep(SimDuration::from_millis(d_ms)).await;
                    })
                })
                .collect();
            join_all(handles).await;
            now()
        });
        let batches = n.div_ceil(c) as u64;
        prop_assert_eq!(end, SimTime::ZERO + SimDuration::from_millis(batches * d_ms));
    }

    /// Executor determinism: two identical runs produce identical traces.
    #[test]
    fn identical_runs_identical_logs(delays in proptest::collection::vec(0u64..1000, 1..30)) {
        let run = |delays: Vec<u64>| -> Vec<(u64, usize)> {
            let sim = Sim::new();
            sim.block_on(async move {
                let log = Rc::new(RefCell::new(Vec::new()));
                let handles: Vec<_> = delays
                    .iter()
                    .enumerate()
                    .map(|(i, &d)| {
                        let log = Rc::clone(&log);
                        spawn(async move {
                            sleep(SimDuration::from_millis(d)).await;
                            log.borrow_mut().push((now().as_nanos(), i));
                        })
                    })
                    .collect();
                join_all(handles).await;
                Rc::try_unwrap(log).unwrap().into_inner()
            })
        };
        let a = run(delays.clone());
        let b = run(delays);
        prop_assert_eq!(a, b);
    }

    /// Resource FIFO: completion order equals arrival order when all service
    /// times are equal (no overtaking).
    #[test]
    fn resource_is_fifo(n in 1usize..25, cap in 1usize..4) {
        let sim = Sim::new();
        let order = sim.block_on(async move {
            let r = Resource::new("r", cap);
            let order = Rc::new(RefCell::new(Vec::new()));
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let r = r.clone();
                    let order = Rc::clone(&order);
                    spawn(async move {
                        // Stagger arrivals by 1ns to fix arrival order.
                        sleep(SimDuration::from_nanos(i as u64)).await;
                        r.serve(SimDuration::from_millis(10)).await;
                        order.borrow_mut().push(i);
                    })
                })
                .collect();
            join_all(handles).await;
            Rc::try_unwrap(order).unwrap().into_inner()
        });
        let expected: Vec<usize> = (0..n).collect();
        prop_assert_eq!(order, expected);
    }

    /// Permit conservation: after any acquire/release pattern the number of
    /// available permits returns to capacity.
    #[test]
    fn semaphore_conserves_permits(
        ops in proptest::collection::vec((0usize..4, 1u64..50), 1..40),
        cap in 1usize..5,
    ) {
        let sim = Sim::new();
        let sem = Semaphore::new(cap);
        let sem2 = sem.clone();
        sim.block_on(async move {
            let handles: Vec<_> = ops
                .into_iter()
                .map(|(_, hold_ms)| {
                    let sem = sem2.clone();
                    spawn(async move {
                        let _p = sem.acquire().await;
                        sleep(SimDuration::from_millis(hold_ms)).await;
                    })
                })
                .collect();
            join_all(handles).await;
        });
        prop_assert_eq!(sem.available(), cap);
        prop_assert_eq!(sem.queue_len(), 0);
    }
}
