//! # swf-core — Serverless Computing for Dynamic HPC Workflows
//!
//! The paper's contribution, reproduced end to end: integration of a
//! Knative-style serverless platform with a Pegasus-style workflow
//! management system running on HTCondor and Kubernetes.
//!
//! The four mechanisms of §IV map to modules here:
//!
//! 1. **Task containerization & registration** — [`function::FunctionBuilder`]
//!    wraps a Pegasus transformation in an HTTP event listener and registers
//!    it with Knative before workflow execution.
//! 2. **Container provisioning** — [`config::Provisioning`] selects between
//!    `min-scale` pre-staging and `initial-scale: 0` deferred downloads.
//! 3. **File management** — [`function::encode_payload`] passes input files
//!    by value inside the invocation request; outputs return in the
//!    response and are written back by the wrapper.
//! 4. **Transparent invocation** — [`factory::IntegratedFactory`] rewrites
//!    planned jobs into wrapper tasks that HTCondor schedules onto workers,
//!    which then synchronously invoke the pre-registered function.
//!
//! [`experiments`] regenerates every figure of the evaluation;
//! [`testbed::TestBed`] boots the full §V-A software stack in one call.
//!
//! ```
//! use swf_core::{ExperimentConfig, TestBed};
//! use swf_simcore::Sim;
//!
//! let sim = Sim::new();
//! sim.block_on(async {
//!     let bed = TestBed::boot(&ExperimentConfig::quick());
//!     assert_eq!(bed.condor.total_slots(), 24);
//! });
//! ```

#![warn(missing_docs)]

pub mod breakdown;
pub mod builder;
pub mod config;
pub mod error;
pub mod experiments;
pub mod factory;
pub mod function;
pub mod testbed;

pub use breakdown::{
    compute_share, container_lifecycle_share, render_mix_breakdown, slowest_workflow_breakdown,
};
pub use builder::{matmul_transformation, stage_chain_workflow};
pub use config::{ContainerStaging, ExperimentConfig, Provisioning};
pub use error::ExperimentError;
pub use factory::IntegratedFactory;
pub use function::{register_matmul, FunctionBuilder};
pub use testbed::TestBed;
