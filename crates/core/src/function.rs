//! Task containerization and registration (§IV-1 of the paper).
//!
//! A Pegasus transformation is wrapped in an HTTP event listener (the
//! paper's Flask route) and registered with Knative *before* workflow
//! execution, with autoscaling annotations controlling provisioning:
//! `min-scale = N` pre-stages containers on N workers, `initial-scale = 0`
//! defers downloads until the first invocation.

use bytes::Bytes;

use swf_cluster::Request;
use swf_container::{ImageRef, ResourceLimits, Workload};
use swf_knative::{KService, Knative};
use swf_pegasus::Transformation;
use swf_simcore::SimDuration;

use crate::config::{ExperimentConfig, Provisioning};

/// Builder turning a transformation into a registered serverless function.
pub struct FunctionBuilder {
    service_name: String,
    image: ImageRef,
    compute: SimDuration,
    logic: swf_pegasus::TaskLogic,
    container_concurrency: u32,
    provisioning: Provisioning,
    min_scale: u32,
    resources: ResourceLimits,
    serialization_rate: f64,
}

impl FunctionBuilder {
    /// Wrap `transformation` for service `name` backed by `image`.
    pub fn new(name: impl Into<String>, image: ImageRef, transformation: &Transformation) -> Self {
        FunctionBuilder {
            service_name: name.into(),
            image,
            compute: transformation.compute,
            logic: transformation.logic.clone(),
            container_concurrency: 1,
            provisioning: Provisioning::PreStage,
            min_scale: 1,
            resources: ResourceLimits::one_core(512),
            serialization_rate: 0.0,
        }
    }

    /// Set the function-side payload (de)serialization throughput, in
    /// bytes/s (builder style; 0 disables). Models the paper's Flask
    /// function decoding the request matrices and encoding the product.
    pub fn serialization_rate(mut self, rate: f64) -> Self {
        self.serialization_rate = rate;
        self
    }

    /// Set container concurrency (builder style).
    pub fn container_concurrency(mut self, cc: u32) -> Self {
        self.container_concurrency = cc;
        self
    }

    /// Set provisioning mode and min-scale (builder style).
    pub fn provisioning(mut self, mode: Provisioning, min_scale: u32) -> Self {
        self.provisioning = mode;
        self.min_scale = min_scale;
        self
    }

    /// Set pod resources (builder style).
    pub fn resources(mut self, r: ResourceLimits) -> Self {
        self.resources = r;
        self
    }

    /// Register with Knative: the paper's manual pre-execution step.
    /// The handler decodes the pass-by-value payload (all input files are
    /// in the request body), charges the modelled compute, runs the real
    /// logic, and returns the concatenated outputs.
    pub fn register(self, knative: &Knative) {
        let ksvc = match self.provisioning {
            Provisioning::PreStage => KService::new(&self.service_name, self.image.clone())
                .with_container_concurrency(self.container_concurrency)
                .with_resources(self.resources)
                .with_min_scale(self.min_scale),
            Provisioning::Deferred => KService::new(&self.service_name, self.image.clone())
                .with_container_concurrency(self.container_concurrency)
                .with_resources(self.resources)
                .with_initial_scale(0),
        };
        let compute = self.compute;
        let logic = self.logic;
        let ser_rate = self.serialization_rate;
        knative.register_fn(ksvc, move |req: &Request| {
            let payload = req.body.clone();
            let logic = logic.clone();
            // Function-side (de)serialization: decode the request payload,
            // later encode the response. The response is approximated at
            // half the request size (two matrices in, one out), charged as
            // part of the container's busy time.
            let mut busy = compute;
            if ser_rate > 0.0 {
                let bytes = payload.len() as f64 * 1.5;
                busy += swf_simcore::SimDuration::from_secs_f64(bytes / ser_rate);
            }
            Workload::new(busy, move || {
                let inputs = decode_payload(payload)?;
                let outputs = logic(inputs)?;
                Ok(encode_outputs(&outputs))
            })
        });
    }
}

/// Encode a list of input payloads into one request body (pass-by-value
/// invocation, §IV-3).
pub fn encode_payload(inputs: &[Bytes]) -> Bytes {
    use bytes::BufMut;
    let total: usize = inputs.iter().map(|b| 8 + b.len()).sum();
    let mut buf = bytes::BytesMut::with_capacity(4 + total);
    buf.put_u32_le(inputs.len() as u32);
    for b in inputs {
        buf.put_u64_le(b.len() as u64);
        buf.put_slice(b);
    }
    buf.freeze()
}

/// Decode a request body into its input payloads.
pub fn decode_payload(mut data: Bytes) -> Result<Vec<Bytes>, String> {
    use bytes::Buf;
    if data.len() < 4 {
        return Err("payload too short".into());
    }
    let n = data.get_u32_le() as usize;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        if data.len() < 8 {
            return Err(format!("payload truncated at item {i}"));
        }
        let len = data.get_u64_le() as usize;
        if data.len() < len {
            return Err(format!("payload item {i} truncated"));
        }
        out.push(data.split_to(len));
    }
    Ok(out)
}

/// Encode function outputs into one response body.
pub fn encode_outputs(outputs: &[Bytes]) -> Bytes {
    encode_payload(outputs)
}

/// Decode a response body into output payloads.
pub fn decode_outputs(data: Bytes) -> Result<Vec<Bytes>, String> {
    decode_payload(data)
}

/// Register the experiment's matmul function per the configuration.
pub fn register_matmul(knative: &Knative, config: &ExperimentConfig) -> String {
    let transformation = crate::builder::matmul_transformation(config);
    FunctionBuilder::new(
        "matmul",
        ImageRef::parse(ExperimentConfig::image_name()),
        &transformation,
    )
    .container_concurrency(config.container_concurrency)
    .provisioning(config.provisioning, config.min_scale)
    .serialization_rate(config.serialization_rate)
    .register(knative);
    "matmul".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_roundtrip() {
        let inputs = vec![
            Bytes::from_static(b"alpha"),
            Bytes::new(),
            Bytes::from(vec![9u8; 1000]),
        ];
        let enc = encode_payload(&inputs);
        let dec = decode_payload(enc).unwrap();
        assert_eq!(dec, inputs);
    }

    #[test]
    fn payload_bad_inputs() {
        assert!(decode_payload(Bytes::from_static(b"xx")).is_err());
        // Claim 2 items but provide none.
        let enc = {
            use bytes::BufMut;
            let mut b = bytes::BytesMut::new();
            b.put_u32_le(2);
            b.freeze()
        };
        assert!(decode_payload(enc).is_err());
        // Item length beyond buffer.
        let enc = {
            use bytes::BufMut;
            let mut b = bytes::BytesMut::new();
            b.put_u32_le(1);
            b.put_u64_le(100);
            b.put_slice(b"short");
            b.freeze()
        };
        assert!(decode_payload(enc).is_err());
    }
}
