//! Workflow construction and data staging.
//!
//! Turns the generated chain shapes (Fig. 3/4) into Pegasus abstract
//! workflows, generates the real seed matrices, stages them on the shared
//! filesystem and registers them in the replica catalog.

use swf_cluster::Cluster;
use swf_pegasus::{AbstractJob, AbstractWorkflow, ReplicaCatalog, ReplicaLocation, Transformation};
use swf_simcore::DetRng;
use swf_workloads::{encode, ChainWorkflow, Kernel, Matrix};

use crate::config::ExperimentConfig;

/// The experiment's matmul transformation: two encoded matrices in, their
/// encoded product out, with the config-calibrated compute time.
pub fn matmul_transformation(config: &ExperimentConfig) -> Transformation {
    let compute = config.compute.for_dim(config.matrix_dim);
    Transformation::new("matmul", compute, |inputs| {
        if inputs.len() != 2 {
            return Err(format!("matmul expects 2 inputs, got {}", inputs.len()));
        }
        let product =
            swf_workloads::multiply_encoded(inputs[0].clone(), inputs[1].clone(), Kernel::Blocked)?;
        Ok(vec![product])
    })
    .with_container(ExperimentConfig::image_name())
}

/// Stage a chain workflow's seed matrices (real random data at the
/// configured dimension) and register them as replicas. Returns the
/// abstract workflow ready for planning.
pub fn stage_chain_workflow(
    cluster: &Cluster,
    replicas: &ReplicaCatalog,
    chain: &ChainWorkflow,
    config: &ExperimentConfig,
) -> AbstractWorkflow {
    let mut rng = DetRng::new(config.seed, &format!("seeds-w{}", chain.index));
    for seed_file in &chain.seed_files {
        let m = Matrix::random(config.matrix_dim, config.matrix_dim, &mut rng, -100, 100);
        cluster.shared_fs().stage(seed_file, encode(&m));
        replicas.register(seed_file, ReplicaLocation::SharedFs(seed_file.clone()));
    }
    let mut wf = AbstractWorkflow::new(format!("workflow-{}", chain.index));
    for task in &chain.tasks {
        wf.add_job(AbstractJob {
            name: task.name.clone(),
            transformation: "matmul".into(),
            inputs: vec![task.input_a.clone(), task.input_b.clone()],
            outputs: vec![task.output.clone()],
            env: task.env,
        });
    }
    wf
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_cluster::ClusterConfig;
    use swf_simcore::Sim;
    use swf_workloads::{chain_workflow, EnvMix};

    #[test]
    fn staging_places_all_seeds_and_builds_jobs() {
        let sim = Sim::new();
        sim.block_on(async {
            let config = ExperimentConfig::quick();
            let cluster = Cluster::new(&ClusterConfig::default());
            let replicas = ReplicaCatalog::new();
            let mut rng = DetRng::new(1, "t");
            let chain = chain_workflow(0, 5, EnvMix::ALL_NATIVE, &mut rng);
            let wf = stage_chain_workflow(&cluster, &replicas, &chain, &config);
            assert_eq!(wf.len(), 5);
            for f in &chain.seed_files {
                assert!(cluster.shared_fs().exists(f), "{f} staged");
                assert!(replicas.contains(f));
            }
            // Matrices are real: decode and check the dimension.
            let data = cluster
                .shared_fs()
                .read(&chain.seed_files[0])
                .await
                .unwrap();
            let m = swf_workloads::decode(data).unwrap();
            assert_eq!(m.rows(), config.matrix_dim);
            // Dependencies chain correctly.
            let edges = wf.derive_dependencies().unwrap();
            assert_eq!(edges.len(), 4);
        });
    }

    #[test]
    fn matmul_transformation_computes_products() {
        let config = ExperimentConfig::quick();
        let t = matmul_transformation(&config);
        let mut rng = DetRng::new(2, "mm");
        let a = Matrix::random(4, 4, &mut rng, -5, 5);
        let b = Matrix::random(4, 4, &mut rng, -5, 5);
        let outs = (t.logic)(vec![encode(&a), encode(&b)]).unwrap();
        let product = swf_workloads::decode(outs[0].clone()).unwrap();
        assert_eq!(product, swf_workloads::matmul(&a, &b, Kernel::Blocked));
        assert!((t.logic)(vec![encode(&a)]).is_err());
        assert_eq!(
            t.container_image.as_deref(),
            Some(ExperimentConfig::image_name())
        );
    }
}
