//! Experiment configuration: every calibrated constant in one place.
//!
//! `ExperimentConfig::paper()` reproduces the paper's §V setup — a 4-VM
//! cluster (8 cores / 32 GiB each), Pegasus 5.0.7-style planning onto
//! HTCondor 23.8-style matchmaking, Knative-style serving — with timing
//! constants calibrated against the published numbers (1.48 s cold start,
//! Fig. 1 slopes, Fig. 6 native ≈ 250 s). `ExperimentConfig::quick()`
//! shrinks matrices and waits for fast unit/integration tests.

use swf_cluster::ClusterConfig;
use swf_condor::{CondorConfig, DagmanConfig, NegotiatorConfig, StartdConfig};
use swf_container::{OverheadModel, RegistryConfig};
use swf_k8s::K8sConfig;
use swf_knative::{AutoscalerConfig, KnativeConfig};
use swf_simcore::{millis, secs, RetryPolicy, SimDuration};
use swf_workloads::ComputeModel;

/// How Pegasus provisions container images for traditional-container tasks.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum ContainerStaging {
    /// Stage the image tarball with the job, every job — Pegasus' default
    /// data-flow, and the cost the paper's Fig. 2/6 container path pays.
    #[default]
    PerJob,
    /// Pull through the registry with per-node layer caching (an ablation:
    /// what container execution looks like with warm caches).
    PullIfMissing,
}

/// How serverless functions are provisioned before the workflow runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Provisioning {
    /// `autoscaling.knative.dev/min-scale = N`: pre-stage images and warm
    /// pods on N workers before execution.
    #[default]
    PreStage,
    /// `autoscaling.knative.dev/initial-scale = 0`: defer image downloads
    /// until the first invocation (cold path).
    Deferred,
}

/// The full experiment configuration.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// Cluster shape (paper: 4 VMs × 8 cores × 32 GiB).
    pub cluster: ClusterConfig,
    /// Image registry behaviour.
    pub registry: RegistryConfig,
    /// Container lifecycle overheads.
    pub overheads: OverheadModel,
    /// Kubernetes control-plane parameters.
    pub k8s: K8sConfig,
    /// Knative parameters.
    pub knative: KnativeConfig,
    /// HTCondor parameters.
    pub condor: CondorConfig,
    /// DAGMan parameters.
    pub dagman: DagmanConfig,
    /// Matrix dimension (paper: 350).
    pub matrix_dim: usize,
    /// Modelled compute per task.
    pub compute: ComputeModel,
    /// Container image staging mode for the traditional path.
    pub container_staging: ContainerStaging,
    /// Serverless provisioning mode.
    pub provisioning: Provisioning,
    /// Per-container concurrent-request cap for functions (paper evaluates
    /// 1 = strongest serverless isolation; 0 = unlimited sharing).
    pub container_concurrency: u32,
    /// `min-scale` used when pre-staging.
    pub min_scale: u32,
    /// Effective throughput (bytes/s) of pass-by-value payload
    /// serialization on each side of an invocation — the paper's Python
    /// wrapper JSON-encodes both input matrices into the request and the
    /// Flask function decodes/encodes symmetrically, which is the dominant
    /// per-invocation cost behind Fig. 6's ≈1.08× serverless premium.
    /// Charged as `bytes / rate` on the wrapper and in the function pod.
    pub serialization_rate: f64,
    /// Root RNG seed.
    pub seed: u64,
    /// Collect distributed-tracing spans and metrics during runs. Spans are
    /// pure annotation (no virtual-time cost), so enabling this does not
    /// change any timing; it is off by default to keep pre-existing outputs
    /// bit-identical.
    pub trace: bool,
    /// Virtual interval (seconds) at which the telemetry sampler snapshots
    /// the metrics registry into time series. `0.0` (the default) disables
    /// sampling. The sampler only reads the registry, so any interval
    /// leaves virtual-time results bit-identical; it requires `trace` to
    /// be on (no registry to sample otherwise).
    pub series_interval_s: f64,
}

impl ExperimentConfig {
    /// The paper's calibrated configuration.
    pub fn paper() -> Self {
        let k8s = K8sConfig {
            overheads: OverheadModel::default(),
            ..K8sConfig::default()
        };
        ExperimentConfig {
            cluster: ClusterConfig::default(),
            registry: RegistryConfig::default(),
            overheads: OverheadModel {
                // Mild lifecycle jitter desynchronizes concurrent
                // workflows, as on the real testbed.
                jitter_cv: 0.10,
                ..OverheadModel::default()
            },
            k8s,
            knative: KnativeConfig::default(),
            condor: CondorConfig {
                negotiator: NegotiatorConfig {
                    // Frequent matching with a per-job claim-activation
                    // latency (shadow spawn + claim handshake + transfer
                    // queue), calibrated with the 5 s DAGMan poll so one
                    // workflow stage averages ≈ 25 s and Fig. 6's
                    // all-native bar lands near the paper's 250 s. The
                    // activation delay is continuous (sampled per job), so
                    // per-venue overheads remain visible in makespans, as
                    // they are in the paper.
                    cycle_interval: secs(3.0),
                    match_latency: millis(30),
                    cycle_jitter_cv: 0.20,
                    activation_delay: secs(16.0),
                    activation_jitter_cv: 0.35,
                    seed: 0x5EED_CAFE,
                },
                startd: StartdConfig {
                    job_start_overhead: millis(800),
                },
            },
            dagman: DagmanConfig {
                poll_interval: secs(5.0),
                max_jobs: 0,
                poll_jitter_cv: 0.30,
                // Immediate resubmission — the pre-chaos behaviour; chaos
                // experiments opt into spaced backoff explicitly.
                retry: RetryPolicy::immediate(1),
                on_failure: swf_condor::FailurePolicy::Abort,
            },
            matrix_dim: 350,
            compute: ComputeModel::paper(),
            container_staging: ContainerStaging::PerJob,
            provisioning: Provisioning::PreStage,
            container_concurrency: 1,
            // One pre-staged warm pod; the autoscaler adds more under load
            // (overlapping stages from concurrent workflows then queue
            // briefly or ride a scale-out — the source of the serverless
            // premium over native in Fig. 6).
            min_scale: 3,
            serialization_rate: 4.0e6,
            seed: 0x5EED_CAFE,
            trace: false,
            series_interval_s: 0.0,
        }
    }

    /// Small and fast: 16×16 matrices, short waits — for tests. The
    /// compute model stays at the paper's 0.458 s per task (fixed, not
    /// dimension-scaled) so virtual timings keep the paper's shape.
    pub fn quick() -> Self {
        let mut c = Self::paper();
        c.matrix_dim = 16;
        c.compute = ComputeModel::fixed(millis(458));
        c.condor.negotiator.cycle_interval = secs(1.0);
        c.condor.startd.job_start_overhead = millis(50);
        c.dagman.poll_interval = secs(0.5);
        c.knative.autoscaler = AutoscalerConfig {
            tick: millis(500),
            stable_window: secs(10.0),
            panic_window: secs(2.0),
            scale_to_zero_grace: secs(10.0),
            ..AutoscalerConfig::default()
        };
        c
    }

    /// Virtual time the whole experiment may take before harnesses abort.
    pub fn deadline(&self) -> SimDuration {
        SimDuration::from_secs(24 * 3600)
    }

    /// The function image reference used by every experiment.
    pub fn image_name() -> &'static str {
        "dockerhub.io/hpc/matmul:1.0"
    }
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_testbed() {
        let c = ExperimentConfig::paper();
        assert_eq!(c.cluster.nodes, 4);
        assert_eq!(c.cluster.node_spec.cores, 8);
        assert_eq!(c.cluster.node_spec.memory, swf_cluster::gib(32));
        assert_eq!(c.matrix_dim, 350);
        assert_eq!(c.container_concurrency, 1);
        assert_eq!(c.container_staging, ContainerStaging::PerJob);
    }

    #[test]
    fn quick_config_is_smaller_and_faster() {
        let q = ExperimentConfig::quick();
        assert!(q.matrix_dim < 64);
        assert!(q.condor.negotiator.cycle_interval < secs(5.0));
    }
}
