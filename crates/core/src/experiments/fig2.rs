//! Figure 2: scaling of k parallel tasks under native, Knative, and
//! traditional-container execution, all scheduled through HTCondor.
//!
//! The paper fits regression slopes of 0.28 (native), 0.30 (Knative) and
//! 0.96 (container) seconds per task — Knative tracks native because warm
//! containers are shared and scaled automatically, while the container path
//! pays per-job image staging.

use swf_condor::JobSpec;
use swf_metrics::{fit, Line};
use swf_pegasus::PlannedTask;
use swf_simcore::{now, secs, Sim};
use swf_workloads::ExecEnv;

use crate::config::{ExperimentConfig, Provisioning};
use crate::factory::IntegratedFactory;
use crate::function::register_matmul;
use crate::testbed::TestBed;

use swf_pegasus::JobFactory;

/// Measured makespans for one task count.
#[derive(Clone, Copy, Debug)]
pub struct Fig2Row {
    /// Parallel task count.
    pub tasks: usize,
    /// Native makespan (s).
    pub native: f64,
    /// Knative makespan (s).
    pub knative: f64,
    /// Traditional-container makespan (s).
    pub container: f64,
}

/// Full Fig. 2 result.
#[derive(Clone, Debug)]
pub struct Fig2Result {
    /// Measured rows.
    pub rows: Vec<Fig2Row>,
    /// Native regression (paper slope 0.28).
    pub native_fit: Line,
    /// Knative regression (paper slope 0.30).
    pub knative_fit: Line,
    /// Container regression (paper slope 0.96).
    pub container_fit: Line,
}

/// Build one parallel matmul task: reads the two shared input matrices,
/// multiplies, writes a per-task output.
fn parallel_task(i: usize, env: ExecEnv, config: &ExperimentConfig) -> PlannedTask {
    let t = crate::builder::matmul_transformation(config);
    PlannedTask {
        name: format!("p{i}"),
        inputs: vec!["fig2_in_a.mat".into(), "fig2_in_b.mat".into()],
        outputs: vec![format!("fig2_out_{i}.mat")],
        compute: t.compute,
        logic: t.logic.clone(),
        container_image: t.container_image.clone(),
        env,
        clustered: 1,
        transformation: "matmul".into(),
    }
}

/// Run one arm: k parallel condor jobs in the given venue; returns the
/// makespan in seconds.
///
/// The Knative arm uses the paper's parallel setup: functions allow
/// multiple concurrent requests per container ("multiple tasks to be
/// co-located within the same container") and are pre-staged on every
/// worker, with the autoscaler free to add pods under load.
fn arm(config: &ExperimentConfig, env: ExecEnv, k: usize) -> f64 {
    let sim = Sim::new();
    let mut config = config.clone();
    if env == ExecEnv::Serverless {
        config.container_concurrency = 0;
        config.min_scale = config.cluster.nodes.saturating_sub(1).max(1) as u32;
    }
    sim.block_on(async move {
        let bed = TestBed::boot(&config);
        let tarball = bed.stage_image_tarball();
        register_matmul(&bed.knative, &config);
        if env == ExecEnv::Serverless && config.provisioning == Provisioning::PreStage {
            bed.knative
                .wait_ready("matmul", config.min_scale as usize, secs(3600.0))
                .await
                .expect("function ready");
        }
        let factory = IntegratedFactory::new(
            bed.knative.clone(),
            bed.k8s.clone(),
            bed.image.clone(),
            config.container_staging,
            Some(tarball.clone()),
        )
        .with_serialization_rate(config.serialization_rate);
        // Stage the shared input matrices (real data) on the submit node.
        let mut rng = swf_simcore::DetRng::new(config.seed, "fig2-inputs");
        let a = swf_workloads::Matrix::random(
            config.matrix_dim,
            config.matrix_dim,
            &mut rng,
            -100,
            100,
        );
        let b = swf_workloads::Matrix::random(
            config.matrix_dim,
            config.matrix_dim,
            &mut rng,
            -100,
            100,
        );
        bed.cluster
            .shared_fs()
            .stage("fig2_in_a.mat", swf_workloads::encode(&a));
        bed.cluster
            .shared_fs()
            .stage("fig2_in_b.mat", swf_workloads::encode(&b));
        let t0 = now();
        let mut ids = Vec::with_capacity(k);
        for i in 0..k {
            let task = parallel_task(i, env, &config);
            let program = factory.build(&task);
            let mut input_files = task.inputs.clone();
            input_files.extend(factory.extra_inputs(&task));
            let spec = JobSpec {
                program,
                requirements: swf_condor::Expr::True,
                request_cpus: 1,
                request_memory: swf_cluster::mib(512),
                input_files,
                output_files: Vec::new(),
                priority: 0,
                ad: swf_condor::ClassAd::new(),
                span: swf_obs::SpanContext::NONE,
            };
            ids.push(bed.condor.submit(spec));
        }
        for id in ids {
            let r = bed.condor.wait(id).await.expect("job completes");
            assert!(r.success, "{}", String::from_utf8_lossy(&r.output));
        }
        (now() - t0).as_secs_f64()
    })
}

/// Run Fig. 2 over the given parallel task counts.
pub fn run(config: &ExperimentConfig, counts: &[usize]) -> Fig2Result {
    let mut rows = Vec::new();
    for &k in counts {
        rows.push(Fig2Row {
            tasks: k,
            native: arm(config, ExecEnv::Native, k),
            knative: arm(config, ExecEnv::Serverless, k),
            container: arm(config, ExecEnv::Container, k),
        });
    }
    let series = |f: &dyn Fn(&Fig2Row) -> f64| {
        fit(&rows
            .iter()
            .map(|r| (r.tasks as f64, f(r)))
            .collect::<Vec<_>>())
    };
    Fig2Result {
        native_fit: series(&|r| r.native),
        knative_fit: series(&|r| r.knative),
        container_fit: series(&|r| r.container),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_cluster::NodeId;

    /// The determinism contract (DESIGN.md): a run is a pure function of
    /// config + seeds. Feeding the scheduler its node set in two different
    /// orders must therefore produce *byte-identical* makespans — this is
    /// the regression test for the HashMap-iteration class of bugs that
    /// swf-tidy's `map-iter` rule guards against.
    #[test]
    fn makespan_is_invariant_to_node_insertion_order() {
        let mut config = ExperimentConfig::quick();
        config.matrix_dim = 8;
        config.min_scale = 2;
        let arm_with_order = |order: &[usize], env: ExecEnv| {
            let mut c = config.clone();
            c.k8s.schedulable_nodes = Some(order.iter().map(|&n| NodeId(n)).collect());
            arm(&c, env, 6)
        };
        for env in [ExecEnv::Serverless, ExecEnv::Container] {
            let forward = arm_with_order(&[1, 2, 3], env);
            let reverse = arm_with_order(&[3, 1, 2], env);
            assert_eq!(
                forward.to_bits(),
                reverse.to_bits(),
                "{env:?} makespan depends on node insertion order: {forward} vs {reverse}"
            );
        }
    }

    #[test]
    fn ordering_matches_paper_native_knative_container() {
        let mut config = ExperimentConfig::quick();
        config.matrix_dim = 8;
        config.min_scale = 2;
        let result = run(&config, &[4, 8, 16]);
        // Shape: container slope much steeper; knative close to native.
        assert!(
            result.container_fit.slope > 2.0 * result.native_fit.slope,
            "container {:.3} vs native {:.3}",
            result.container_fit.slope,
            result.native_fit.slope
        );
        let ratio = result.knative_fit.slope / result.native_fit.slope.max(1e-9);
        assert!(
            ratio < 1.8,
            "knative slope {:.3} should track native {:.3}",
            result.knative_fit.slope,
            result.native_fit.slope
        );
    }
}
