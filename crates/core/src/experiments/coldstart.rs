//! §III-B cold-start measurement: the paper reports 1.48 s for a Knative
//! function whose image is already on the workers.

use swf_cluster::{NodeId, Request};
use swf_simcore::{now, secs, Sim};
use swf_workloads::{encode, Matrix};

use crate::config::{ExperimentConfig, Provisioning};
use crate::error::ExperimentError;
use crate::function::{encode_payload, register_matmul};
use crate::testbed::TestBed;

/// Cold-start measurement result.
#[derive(Clone, Copy, Debug)]
pub struct ColdStartResult {
    /// End-to-end first-request latency (s).
    pub first_request: f64,
    /// The same minus modelled compute: the cold start itself.
    pub cold_start: f64,
    /// A subsequent warm request for contrast (s).
    pub warm_request: f64,
}

/// Measure one cold start followed by one warm request.
pub fn run(config: &ExperimentConfig) -> Result<ColdStartResult, ExperimentError> {
    let sim = Sim::new();
    let mut config = config.clone();
    config.provisioning = Provisioning::Deferred;
    // §III-B stores input data on the node; the measured request carries no
    // bulky payload, so pass-by-value serialization does not apply.
    config.serialization_rate = 0.0;
    sim.block_on(async move {
        let bed = TestBed::boot(&config);
        // Image cached on workers; pods deferred — §III-B's setup.
        for node in bed.k8s.schedulable_nodes() {
            bed.registry.pull(node, &bed.image).await?;
        }
        register_matmul(&bed.knative, &config);
        swf_simcore::sleep(secs(1.0)).await;

        let mut rng = swf_simcore::DetRng::new(config.seed, "coldstart");
        let a = Matrix::random(config.matrix_dim, config.matrix_dim, &mut rng, -100, 100);
        let b = Matrix::random(config.matrix_dim, config.matrix_dim, &mut rng, -100, 100);
        let payload = encode_payload(&[encode(&a), encode(&b)]);
        let compute = config.compute.for_dim(config.matrix_dim).as_secs_f64();

        let t0 = now();
        bed.knative
            .invoke(
                NodeId(0),
                "matmul",
                Request::post("/invoke", payload.clone()),
            )
            .await?;
        let first_request = (now() - t0).as_secs_f64();

        let t1 = now();
        bed.knative
            .invoke(NodeId(0), "matmul", Request::post("/invoke", payload))
            .await?;
        let warm_request = (now() - t1).as_secs_f64();

        Ok(ColdStartResult {
            first_request,
            cold_start: first_request - compute,
            warm_request,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_start_is_near_paper_and_warm_is_cheap() {
        let mut config = ExperimentConfig::quick();
        config.matrix_dim = 8;
        let r = run(&config).unwrap();
        assert!(
            (r.cold_start - 1.48).abs() < 0.25,
            "cold start {:.3}s",
            r.cold_start
        );
        assert!(r.warm_request < r.first_request / 3.0);
    }
}
