//! Experiment runners for every figure in the paper's evaluation.

pub mod coldstart;
pub mod concurrent;
pub mod fig1;
pub mod fig2;
pub mod fig56;

pub use coldstart::ColdStartResult;
pub use concurrent::{average_slowest, run_once, ConcurrentOutcome, ConcurrentParams};
pub use fig1::{Fig1Result, Fig1Row};
pub use fig2::{Fig2Result, Fig2Row};
pub use fig56::{run_fig5, run_fig6, Fig5Result, Fig5Row, Fig6Result, Fig6Row};

use crate::config::ExperimentConfig;

/// Render the §V-A setup header printed by every harness binary.
pub fn setup_header(config: &ExperimentConfig) -> String {
    let mut t = swf_metrics::Table::new(
        "Software & Hardware Configuration (paper §V-A)",
        &["component", "paper", "reproduction"],
    );
    t.row(&[
        "cluster".into(),
        "4 VMs".into(),
        format!("{} simulated nodes", config.cluster.nodes),
    ]);
    t.row(&[
        "per-node".into(),
        "8 cores / 32 GB, Xeon Gold 6342".into(),
        format!(
            "{} cores / {}",
            config.cluster.node_spec.cores,
            swf_cluster::human_bytes(config.cluster.node_spec.memory)
        ),
    ]);
    t.row(&[
        "workflow manager".into(),
        "Pegasus 5.0.7".into(),
        "swf-pegasus (planner + DAGMan)".into(),
    ]);
    t.row(&[
        "batch system".into(),
        "HTCondor 23.8.1".into(),
        format!(
            "swf-condor (negotiation every {})",
            config.condor.negotiator.cycle_interval
        ),
    ]);
    t.row(&[
        "orchestrator".into(),
        "Kubernetes v1.30.3".into(),
        "swf-k8s (API server, scheduler, kubelets)".into(),
    ]);
    t.row(&[
        "serverless".into(),
        "Knative".into(),
        "swf-knative (KPA, activator, queue-proxy)".into(),
    ]);
    t.row(&[
        "task".into(),
        "350×350 int matmul (NumPy 2.0.1)".into(),
        format!(
            "{dim}×{dim} i64 matmul (Rust kernels), compute model {}",
            config.compute.for_dim(config.matrix_dim),
            dim = config.matrix_dim
        ),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_mentions_all_subsystems() {
        let h = setup_header(&ExperimentConfig::paper());
        for needle in ["Pegasus", "HTCondor", "Kubernetes", "Knative", "350×350"] {
            assert!(h.contains(needle), "missing {needle} in header");
        }
    }
}
