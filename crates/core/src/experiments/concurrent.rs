//! The concurrent-workflow engine behind Figures 5 and 6.
//!
//! Runs `count` sequential workflows (Fig. 3 chains) concurrently through
//! the full stack — Pegasus planning, DAGMan, HTCondor matchmaking, and the
//! three execution venues — and reports the paper's §V-D metric: the
//! execution time of the slowest workflow, averaged over repetitions.

use std::rc::Rc;

use swf_pegasus::{Pegasus, ReplicaLocation};
use swf_simcore::{secs, Sim};
use swf_workloads::{concurrent_workflows, EnvMix};

use crate::builder::{matmul_transformation, stage_chain_workflow};
use crate::config::{ExperimentConfig, Provisioning};
use crate::factory::IntegratedFactory;
use crate::function::register_matmul;
use crate::testbed::TestBed;

/// Result of one concurrent-workflow run.
#[derive(Clone, Debug)]
pub struct ConcurrentOutcome {
    /// Per-workflow makespans in seconds (workflow index order).
    pub workflow_makespans: Vec<f64>,
    /// Makespan of the slowest workflow (the paper's metric).
    pub slowest: f64,
    /// Mean workflow makespan.
    pub mean: f64,
    /// Total tasks executed.
    pub tasks: usize,
    /// Span collector for this run — enabled (and populated) only when
    /// `config.trace` is set; a disabled handle otherwise.
    pub obs: swf_obs::Obs,
}

/// Parameters of a concurrent run.
#[derive(Clone, Copy, Debug)]
pub struct ConcurrentParams {
    /// Number of concurrent workflows (paper: 10).
    pub workflows: usize,
    /// Tasks per workflow (paper: 10).
    pub tasks_per_workflow: usize,
    /// Environment mix.
    pub mix: EnvMix,
    /// Planner options (clustering / retries — §IX-C ablations).
    pub plan: swf_pegasus::PlanOptions,
}

impl Default for ConcurrentParams {
    fn default() -> Self {
        ConcurrentParams {
            workflows: 10,
            tasks_per_workflow: 10,
            mix: EnvMix::ALL_NATIVE,
            plan: swf_pegasus::PlanOptions::default(),
        }
    }
}

impl ConcurrentParams {
    /// The paper's 10×10 experiment at a given mix.
    pub fn paper(mix: EnvMix) -> Self {
        ConcurrentParams {
            mix,
            ..ConcurrentParams::default()
        }
    }
}

/// Run one repetition in a fresh simulation; `rep` perturbs the RNG streams
/// (the paper redraws the random environment assignment per instance).
pub fn run_once(
    config: &ExperimentConfig,
    params: ConcurrentParams,
    rep: u64,
) -> ConcurrentOutcome {
    let sim = Sim::new();
    let config = config.clone();
    let obs = if config.trace {
        swf_obs::Obs::enabled()
    } else {
        swf_obs::Obs::disabled()
    };
    let obs2 = obs.clone();
    sim.block_on(async move {
        let obs = obs2;
        let _obs_guard = swf_obs::install(obs.clone());
        let bed = TestBed::boot(&config);
        let tarball = bed.stage_image_tarball();
        register_matmul(&bed.knative, &config);
        if config.provisioning == Provisioning::PreStage {
            bed.knative
                .wait_ready("matmul", config.min_scale as usize, secs(3600.0))
                .await
                .expect("function pods ready");
        }
        let pegasus = Rc::new(
            Pegasus::new(bed.condor.clone())
                .with_dagman(config.dagman)
                .with_plan_options(params.plan),
        );
        pegasus
            .transformations()
            .register(matmul_transformation(&config));
        pegasus
            .replicas()
            .register(&tarball, ReplicaLocation::SharedFs(tarball.clone()));
        let factory = Rc::new(
            IntegratedFactory::new(
                bed.knative.clone(),
                bed.k8s.clone(),
                bed.image.clone(),
                config.container_staging,
                Some(tarball),
            )
            .with_serialization_rate(config.serialization_rate),
        );

        let chains = concurrent_workflows(
            params.workflows,
            params.tasks_per_workflow,
            params.mix,
            config.seed ^ (rep.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let mut phase_rng =
            swf_simcore::DetRng::new(config.seed ^ rep.wrapping_mul(31), "dagman-phase");
        let poll = config.dagman.poll_interval.as_secs_f64();
        let mut handles = Vec::new();
        for chain in &chains {
            let wf = stage_chain_workflow(&bed.cluster, pegasus.replicas(), chain, &config);
            let pegasus = Rc::clone(&pegasus);
            let factory = Rc::clone(&factory);
            // Each DAGMan instance starts at its own phase within the poll
            // interval (real workflows are submitted at slightly different
            // moments); this desynchronizes the concurrent chains.
            let phase = swf_simcore::SimDuration::from_secs_f64(phase_rng.uniform(0.0, poll));
            handles.push(swf_simcore::spawn(async move {
                swf_simcore::sleep(phase).await;
                let (stats, _report) = pegasus
                    .run(&wf, factory.as_ref())
                    .await
                    .expect("workflow completes");
                stats.makespan.as_secs_f64()
            }));
        }
        let workflow_makespans = swf_simcore::join_all(handles).await;
        let slowest = workflow_makespans.iter().copied().fold(0.0, f64::max);
        let mean = workflow_makespans.iter().sum::<f64>() / workflow_makespans.len().max(1) as f64;
        ConcurrentOutcome {
            slowest,
            mean,
            tasks: params.workflows * params.tasks_per_workflow,
            workflow_makespans,
            obs,
        }
    })
}

/// Average the slowest-workflow makespan over `repeats` repetitions.
pub fn average_slowest(
    config: &ExperimentConfig,
    params: ConcurrentParams,
    repeats: u64,
) -> (f64, Vec<ConcurrentOutcome>) {
    let outcomes: Vec<ConcurrentOutcome> = (0..repeats)
        .map(|rep| run_once(config, params, rep))
        .collect();
    let avg = outcomes.iter().map(|o| o.slowest).sum::<f64>() / repeats.max(1) as f64;
    (avg, outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(mix: EnvMix) -> ConcurrentOutcome {
        let config = ExperimentConfig::quick();
        run_once(
            &config,
            ConcurrentParams {
                workflows: 3,
                tasks_per_workflow: 3,
                mix,
                ..ConcurrentParams::default()
            },
            0,
        )
    }

    #[test]
    fn all_native_runs_and_reports() {
        let o = tiny(EnvMix::ALL_NATIVE);
        assert_eq!(o.workflow_makespans.len(), 3);
        assert_eq!(o.tasks, 9);
        assert!(o.slowest >= o.mean);
        assert!(o.slowest > 0.0);
    }

    #[test]
    fn all_serverless_runs() {
        let o = tiny(EnvMix::ALL_SERVERLESS);
        assert!(o.slowest > 0.0);
    }

    #[test]
    fn all_container_is_slower_than_native() {
        let native = tiny(EnvMix::ALL_NATIVE);
        let container = tiny(EnvMix::ALL_CONTAINER);
        assert!(
            container.slowest > native.slowest,
            "container {:.1}s vs native {:.1}s",
            container.slowest,
            native.slowest
        );
    }

    #[test]
    fn repetitions_average() {
        let config = ExperimentConfig::quick();
        let (avg, outcomes) = average_slowest(
            &config,
            ConcurrentParams {
                workflows: 2,
                tasks_per_workflow: 2,
                mix: EnvMix::ALL_NATIVE,
                ..ConcurrentParams::default()
            },
            2,
        );
        assert_eq!(outcomes.len(), 2);
        assert!(avg > 0.0);
    }

    #[test]
    fn identical_reps_are_deterministic() {
        let config = ExperimentConfig::quick();
        let p = ConcurrentParams {
            workflows: 2,
            tasks_per_workflow: 2,
            mix: EnvMix::HALF_SERVERLESS,
            ..ConcurrentParams::default()
        };
        let a = run_once(&config, p, 7);
        let b = run_once(&config, p, 7);
        assert_eq!(a.workflow_makespans, b.workflow_makespans);
    }
}
