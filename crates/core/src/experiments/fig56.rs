//! Figures 5 and 6: the performance–isolation trade-off.
//!
//! Fig. 5 sweeps the simplex of environment mixes and reports the average
//! makespan of the slowest of 10 concurrent workflows per mix. Fig. 6 is
//! the five highlighted mixes as bars: all-native (fastest, ≈ 250 s in the
//! paper), half-serverless, all-serverless (≈ 1.08× native), half-container,
//! all-container (slowest).

use swf_metrics::{fig6_mixes, simplex_grid, MixPoint};
use swf_workloads::EnvMix;

use crate::config::ExperimentConfig;
use crate::experiments::concurrent::{average_slowest, ConcurrentParams};

/// One Fig. 5 grid sample.
#[derive(Clone, Copy, Debug)]
pub struct Fig5Row {
    /// The mix point.
    pub mix: MixPoint,
    /// Average slowest-workflow makespan (s).
    pub makespan: f64,
}

/// Full Fig. 5 result.
#[derive(Clone, Debug)]
pub struct Fig5Result {
    /// Samples over the simplex grid.
    pub rows: Vec<Fig5Row>,
    /// Critical-path breakdown per row (same order), from the slowest
    /// traced workflow of each point's first repetition; `None` entries
    /// when tracing is disabled.
    pub breakdowns: Vec<Option<swf_obs::CriticalPath>>,
    /// Span collector per row (same order; disabled handles when tracing
    /// is off) — feeds `--trace-out` export.
    pub collectors: Vec<swf_obs::Obs>,
}

impl Fig5Result {
    /// The fastest sampled mix.
    pub fn best(&self) -> Fig5Row {
        *self
            .rows
            .iter()
            .min_by(|a, b| a.makespan.total_cmp(&b.makespan))
            .expect("non-empty grid")
    }

    /// The slowest sampled mix.
    pub fn worst(&self) -> Fig5Row {
        *self
            .rows
            .iter()
            .max_by(|a, b| a.makespan.total_cmp(&b.makespan))
            .expect("non-empty grid")
    }
}

fn mix_of(point: MixPoint) -> EnvMix {
    EnvMix {
        serverless: point.serverless,
        container: point.container,
    }
}

/// Run the Fig. 5 sweep: `steps` grid subdivisions, `repeats` reps/point.
pub fn run_fig5(
    config: &ExperimentConfig,
    steps: usize,
    workflows: usize,
    tasks_per_workflow: usize,
    repeats: u64,
) -> Fig5Result {
    let mut rows = Vec::new();
    let mut breakdowns = Vec::new();
    let mut collectors = Vec::new();
    for mix in simplex_grid(steps) {
        let params = ConcurrentParams {
            workflows,
            tasks_per_workflow,
            mix: mix_of(mix),
            ..ConcurrentParams::default()
        };
        let (makespan, outcomes) = average_slowest(config, params, repeats);
        let obs = outcomes.first().map(|o| o.obs.clone()).unwrap_or_default();
        breakdowns.push(crate::breakdown::slowest_workflow_breakdown(&obs));
        collectors.push(obs);
        rows.push(Fig5Row { mix, makespan });
    }
    Fig5Result {
        rows,
        breakdowns,
        collectors,
    }
}

/// One Fig. 6 bar.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Bar label (paper order).
    pub label: &'static str,
    /// The mix.
    pub mix: MixPoint,
    /// Average slowest-workflow makespan (s).
    pub makespan: f64,
    /// Ratio to the all-native bar.
    pub vs_native: f64,
    /// Critical-path breakdown of the slowest traced workflow in the first
    /// repetition (`None` when tracing is disabled).
    pub breakdown: Option<swf_obs::CriticalPath>,
    /// Span collector of the first repetition (a disabled handle when
    /// tracing is off) — feeds `--trace-out` Chrome-trace export.
    pub obs: swf_obs::Obs,
}

/// Full Fig. 6 result.
#[derive(Clone, Debug)]
pub struct Fig6Result {
    /// The five bars in paper order.
    pub rows: Vec<Fig6Row>,
}

impl Fig6Result {
    /// Bar by label.
    pub fn bar(&self, label: &str) -> &Fig6Row {
        self.rows
            .iter()
            .find(|r| r.label == label)
            .expect("known bar label")
    }
}

/// Run the five Fig. 6 scenarios.
pub fn run_fig6(
    config: &ExperimentConfig,
    workflows: usize,
    tasks_per_workflow: usize,
    repeats: u64,
) -> Fig6Result {
    let mut rows = Vec::new();
    for (label, mix) in fig6_mixes() {
        let params = ConcurrentParams {
            workflows,
            tasks_per_workflow,
            mix: mix_of(mix),
            ..ConcurrentParams::default()
        };
        let (makespan, outcomes) = average_slowest(config, params, repeats);
        let obs = outcomes.first().map(|o| o.obs.clone()).unwrap_or_default();
        let breakdown = crate::breakdown::slowest_workflow_breakdown(&obs);
        rows.push(Fig6Row {
            label,
            mix,
            makespan,
            vs_native: 0.0,
            breakdown,
            obs,
        });
    }
    let native = rows[0].makespan;
    for r in &mut rows {
        r.vs_native = r.makespan / native;
    }
    Fig6Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_ordering_matches_paper() {
        let config = ExperimentConfig::quick();
        let result = run_fig6(&config, 3, 3, 1);
        assert_eq!(result.rows.len(), 5);
        let native = result.bar("all-native").makespan;
        let half_srv = result.bar("half-serverless-half-native").makespan;
        let all_srv = result.bar("all-serverless").makespan;
        let all_ctr = result.bar("all-container").makespan;
        // Core orderings the paper reports: native fastest, all-container
        // slowest, serverless between.
        assert!(
            native <= half_srv * 1.05,
            "native {native} vs half-srv {half_srv}"
        );
        assert!(
            all_srv >= native,
            "all-serverless {all_srv} vs native {native}"
        );
        assert!(
            all_ctr > all_srv,
            "all-container {all_ctr} should exceed all-serverless {all_srv}"
        );
        assert!((result.bar("all-native").vs_native - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig5_grid_brackets_fig6_corners() {
        let config = ExperimentConfig::quick();
        let result = run_fig5(&config, 1, 2, 2, 1);
        // steps=1 → exactly the three corners.
        assert_eq!(result.rows.len(), 3);
        let best = result.best();
        let worst = result.worst();
        assert!(best.makespan <= worst.makespan);
        // At this tiny scale DAGMan-poll quantization blurs the
        // native/serverless gap, but the container corner is robustly the
        // worst (per-job image staging + lifecycle), and the best corner is
        // never the container one. The full-scale corner ordering is
        // asserted by the fig5/fig6 harness at paper parameters.
        assert!(best.mix.container < 0.1, "best mix {:?}", best.mix);
        assert!(worst.mix.container > 0.9, "worst mix {:?}", worst.mix);
    }
}
