//! Figure 1: Docker vs Knative for N sequential small tasks.
//!
//! Docker runs each task in a brand-new container (`docker run`); Knative
//! pays one cold start then reuses the same container. The paper reports
//! ≈ 100 s (Docker) vs ≈ 78 s (Knative) at 160 tasks and a regression-slope
//! reduction of "up to 30%".

use swf_cluster::{NodeId, Request};
use swf_container::{DockerCli, PullPolicy, ResourceLimits, Workload};
use swf_metrics::{fit, Line};
use swf_simcore::{now, secs, DetRng, Sim};
use swf_workloads::{encode, Kernel, Matrix};

use crate::config::{ExperimentConfig, Provisioning};
use crate::error::ExperimentError;
use crate::testbed::TestBed;

/// One measured row of Fig. 1.
#[derive(Clone, Copy, Debug)]
pub struct Fig1Row {
    /// Sequential task count.
    pub tasks: usize,
    /// Docker end-to-end time (s).
    pub docker_total: f64,
    /// Knative end-to-end time (s), including one cold start.
    pub knative_total: f64,
    /// Mean per-task execution time under Docker (lifecycle excluded).
    pub docker_exec: f64,
    /// Mean per-task execution time under Knative.
    pub knative_exec: f64,
}

/// Full Fig. 1 result.
#[derive(Clone, Debug)]
pub struct Fig1Result {
    /// Measured rows.
    pub rows: Vec<Fig1Row>,
    /// Regression over Docker totals.
    pub docker_fit: Line,
    /// Regression over Knative totals.
    pub knative_fit: Line,
    /// Slope reduction of Knative vs Docker (paper: up to 30%).
    pub slope_reduction: f64,
    /// Measured Knative cold start (paper: 1.48 s).
    pub cold_start: f64,
}

/// Run the Docker arm: N sequential `docker run` invocations on a worker.
fn docker_arm(config: &ExperimentConfig, n: usize) -> Result<(f64, f64), ExperimentError> {
    let sim = Sim::new();
    let config = config.clone();
    sim.block_on(async move {
        let bed = TestBed::boot(&config);
        let node = bed.cluster.worker_nodes()[0].clone();
        let runtime = bed
            .k8s
            .runtime(node.id())
            .cloned()
            .ok_or_else(|| ExperimentError::MissingRuntime(node.name().to_string()))?;
        // Image present before the measured loop (as in the paper's setup).
        runtime.ensure_image(&bed.image).await?;
        let cli = DockerCli::new(runtime);
        // Stage the two input matrices on the node's local disk.
        let mut rng = DetRng::new(config.seed, "fig1-inputs");
        let a = Matrix::random(config.matrix_dim, config.matrix_dim, &mut rng, -100, 100);
        let b = Matrix::random(config.matrix_dim, config.matrix_dim, &mut rng, -100, 100);
        node.fs().stage("in_a.mat", encode(&a));
        node.fs().stage("in_b.mat", encode(&b));
        let compute = config.compute.for_dim(config.matrix_dim);

        let t0 = now();
        let mut exec_time = 0.0;
        for i in 0..n {
            let fs = node.fs().clone();
            let out_name = format!("out_{i}.mat");
            let ea = fs.read("in_a.mat").await?;
            let eb = fs.read("in_b.mat").await?;
            let report = cli
                .run(
                    &bed.image,
                    ResourceLimits::one_core(512),
                    Workload::new(compute, move || {
                        swf_workloads::multiply_encoded(ea, eb, Kernel::Blocked)
                    }),
                    PullPolicy::IfNotPresent,
                )
                .await?;
            fs.write(out_name, report.exec.output).await;
            exec_time += report.exec.busy.as_secs_f64();
        }
        Ok(((now() - t0).as_secs_f64(), exec_time / n as f64))
    })
}

/// Run the Knative arm: one deferred-start function, N sequential HTTP
/// invocations from the submit node. Returns (total, mean exec, cold start).
fn knative_arm(config: &ExperimentConfig, n: usize) -> Result<(f64, f64, f64), ExperimentError> {
    let sim = Sim::new();
    let mut config = config.clone();
    // The §III-B measurement defers provisioning so the first request pays
    // the cold start, but pre-caches the image on workers, and "the input
    // data was stored on the node": requests carry no payload, so no
    // pass-by-value serialization applies here.
    config.provisioning = Provisioning::Deferred;
    config.serialization_rate = 0.0;
    sim.block_on(async move {
        let bed = TestBed::boot(&config);
        for node in bed.k8s.schedulable_nodes() {
            bed.registry.pull(node, &bed.image).await?;
        }
        // Register a function whose inputs live on the node (captured at
        // registration), exactly like the paper's Fig. 1 Knative setup.
        let mut rng = DetRng::new(config.seed, "fig1-inputs");
        let a = Matrix::random(config.matrix_dim, config.matrix_dim, &mut rng, -100, 100);
        let b = Matrix::random(config.matrix_dim, config.matrix_dim, &mut rng, -100, 100);
        let (ea, eb) = (encode(&a), encode(&b));
        let node_local = swf_pegasus::Transformation::new(
            "matmul",
            config.compute.for_dim(config.matrix_dim),
            move |_inputs| {
                let product =
                    swf_workloads::multiply_encoded(ea.clone(), eb.clone(), Kernel::Blocked)?;
                Ok(vec![product])
            },
        );
        crate::function::FunctionBuilder::new("matmul", bed.image.clone(), &node_local)
            .container_concurrency(0)
            .provisioning(Provisioning::Deferred, 0)
            .register(&bed.knative);
        swf_simcore::sleep(secs(1.0)).await; // controllers settle

        let payload = crate::function::encode_payload(&[]);

        let compute = config.compute.for_dim(config.matrix_dim).as_secs_f64();
        let t0 = now();
        let mut cold_start = 0.0;
        for i in 0..n {
            let t_req = now();
            let resp = bed
                .knative
                .invoke(
                    NodeId(0),
                    "matmul",
                    Request::post("/invoke", payload.clone()),
                )
                .await?;
            if !resp.is_success() {
                return Err(ExperimentError::FailedResponse {
                    service: "matmul".into(),
                    status: resp.status,
                });
            }
            if i == 0 {
                cold_start = (now() - t_req).as_secs_f64() - compute;
            }
        }
        let total = (now() - t0).as_secs_f64();
        Ok((total, compute, cold_start))
    })
}

/// Run Fig. 1 over the given task counts.
pub fn run(config: &ExperimentConfig, counts: &[usize]) -> Result<Fig1Result, ExperimentError> {
    let mut rows = Vec::new();
    let mut cold_start = 0.0;
    for &n in counts {
        let (docker_total, docker_exec) = docker_arm(config, n)?;
        let (knative_total, knative_exec, cs) = knative_arm(config, n)?;
        cold_start = cs;
        rows.push(Fig1Row {
            tasks: n,
            docker_total,
            knative_total,
            docker_exec,
            knative_exec,
        });
    }
    let docker_fit = fit(&rows
        .iter()
        .map(|r| (r.tasks as f64, r.docker_total))
        .collect::<Vec<_>>());
    let knative_fit = fit(&rows
        .iter()
        .map(|r| (r.tasks as f64, r.knative_total))
        .collect::<Vec<_>>());
    Ok(Fig1Result {
        slope_reduction: knative_fit.slope_reduction_vs(&docker_fit),
        rows,
        docker_fit,
        knative_fit,
        cold_start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knative_wins_at_scale_and_cold_start_matches_paper() {
        let mut config = ExperimentConfig::quick();
        config.matrix_dim = 8;
        let result = run(&config, &[5, 20, 40]).unwrap();
        assert_eq!(result.rows.len(), 3);
        // Fig. 1's shape: Docker wins at tiny counts (the one cold start
        // dominates), Knative wins once reuse amortizes it.
        let last = result.rows.last().unwrap();
        assert!(
            last.knative_total < last.docker_total,
            "at {} tasks: knative {:.2}s vs docker {:.2}s",
            last.tasks,
            last.knative_total,
            last.docker_total
        );
        // Slope reduction in the paper's "up to 30%" regime.
        assert!(result.slope_reduction > 0.1, "{}", result.slope_reduction);
        assert!(result.slope_reduction < 0.45, "{}", result.slope_reduction);
        // Cold start ≈ 1.48 s.
        assert!(
            (result.cold_start - 1.48).abs() < 0.25,
            "cold start {:.3}",
            result.cold_start
        );
        // Per-task execution times are similar across platforms (paper:
        // "these times remained similar between Knative and Docker").
        assert!((last.docker_exec - last.knative_exec).abs() < 0.05);
    }
}
