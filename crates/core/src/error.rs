//! Typed errors for the experiment runners.
//!
//! The experiment harnesses drive every layer of the stack — cluster
//! filesystems, the container runtime, and the Knative data plane — so a
//! failed run can originate anywhere. [`ExperimentError`] wraps each
//! substrate's error type and adds the two failure modes the harness
//! itself can detect (a worker without a runtime, a non-2xx function
//! response), so `experiments::*::run` can return `Result` instead of
//! panicking mid-measurement.

use std::fmt;

use swf_cluster::ClusterError;
use swf_container::ContainerError;
use swf_knative::KnativeError;

/// Any failure an experiment run can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentError {
    /// A cluster-layer operation (staging, reads) failed.
    Cluster(ClusterError),
    /// A container runtime or registry operation failed.
    Container(ContainerError),
    /// A Knative invocation failed after the platform's own retries.
    Knative(KnativeError),
    /// A scheduled worker node has no container runtime attached.
    MissingRuntime(String),
    /// A function invocation returned a non-success HTTP status.
    FailedResponse {
        /// The KService that was invoked.
        service: String,
        /// The HTTP status code of the response.
        status: u16,
    },
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::Cluster(e) => write!(f, "cluster error: {e}"),
            ExperimentError::Container(e) => write!(f, "container error: {e}"),
            ExperimentError::Knative(e) => write!(f, "knative error: {e}"),
            ExperimentError::MissingRuntime(node) => {
                write!(f, "no container runtime on worker {node}")
            }
            ExperimentError::FailedResponse { service, status } => {
                write!(f, "{service} returned HTTP {status}")
            }
        }
    }
}

impl std::error::Error for ExperimentError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExperimentError::Cluster(e) => Some(e),
            ExperimentError::Container(e) => Some(e),
            ExperimentError::Knative(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ClusterError> for ExperimentError {
    fn from(e: ClusterError) -> Self {
        ExperimentError::Cluster(e)
    }
}

impl From<ContainerError> for ExperimentError {
    fn from(e: ContainerError) -> Self {
        ExperimentError::Container(e)
    }
}

impl From<KnativeError> for ExperimentError {
    fn from(e: KnativeError) -> Self {
        ExperimentError::Knative(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_wraps_the_source() {
        let e = ExperimentError::from(ClusterError::FileNotFound("in_a.mat".into()));
        assert_eq!(e.to_string(), "cluster error: file not found: in_a.mat");
        let e = ExperimentError::FailedResponse {
            service: "matmul".into(),
            status: 503,
        };
        assert_eq!(e.to_string(), "matmul returned HTTP 503");
    }

    #[test]
    fn source_chains_to_the_substrate_error() {
        use std::error::Error;
        let e = ExperimentError::from(KnativeError::ServiceNotFound("f".into()));
        assert!(e.source().is_some());
        assert!(ExperimentError::MissingRuntime("w1".into())
            .source()
            .is_none());
    }
}
