//! The integrated execution-venue factory (§IV-2..4 of the paper).
//!
//! Dispatches each planned task to its venue:
//!
//! - **Native** — read sandbox inputs, compute, write outputs (Setup 1).
//! - **Container** — fresh `docker run` per task on the matched worker;
//!   with [`ContainerStaging::PerJob`] the image tarball rides HTCondor's
//!   file transfer with every job, exactly like Pegasus' container support
//!   (Setup 2).
//! - **Serverless** — the *wrapper task*: an HTCondor job that reads the
//!   staged inputs, embeds them pass-by-value in an HTTP request, invokes
//!   the pre-registered Knative function synchronously, and writes the
//!   response to the sandbox for stage-out (Setup 3). The wrapper holds its
//!   Condor slot for the whole round trip — the paper's "critical path of
//!   execution now has been extended".

use std::rc::Rc;

use bytes::Bytes;

use swf_cluster::Request;
use swf_container::{ContainerError, DockerCli, ImageRef, PullPolicy, ResourceLimits, Workload};
use swf_k8s::K8s;
use swf_knative::Knative;
use swf_pegasus::{run_native, JobFactory, PlannedTask};
use swf_workloads::ExecEnv;

use swf_condor::{JobContext, JobFn};

use crate::config::ContainerStaging;
use crate::function::{decode_outputs, encode_payload};

/// The paper's integrated factory.
pub struct IntegratedFactory {
    knative: Knative,
    k8s: K8s,
    image: ImageRef,
    staging: ContainerStaging,
    /// Shared-fs path of the image tarball (staged by the testbed) used
    /// when `staging == PerJob`.
    image_tarball: Option<String>,
    /// Pass-by-value serialization throughput (bytes/s) charged on the
    /// wrapper side of each invocation; 0 disables.
    serialization_rate: f64,
}

impl IntegratedFactory {
    /// Build the factory.
    pub fn new(
        knative: Knative,
        k8s: K8s,
        image: ImageRef,
        staging: ContainerStaging,
        image_tarball: Option<String>,
    ) -> Self {
        if staging == ContainerStaging::PerJob {
            assert!(
                image_tarball.is_some(),
                "PerJob staging requires a staged image tarball"
            );
        }
        IntegratedFactory {
            knative,
            k8s,
            image,
            staging,
            image_tarball,
            serialization_rate: 0.0,
        }
    }

    /// Set the wrapper-side serialization throughput (builder style).
    pub fn with_serialization_rate(mut self, rate: f64) -> Self {
        self.serialization_rate = rate;
        self
    }

    fn serverless_job(&self, task: &PlannedTask) -> JobFn {
        let knative = self.knative.clone();
        let service = task.transformation.clone();
        let task = task.clone();
        let ser_rate = self.serialization_rate;
        Rc::new(move |ctx: JobContext| {
            let knative = knative.clone();
            let service = service.clone();
            let task = task.clone();
            Box::pin(async move {
                // Gather staged inputs from the sandbox (they were moved
                // submit node → this worker by Condor; the invocation now
                // moves them again worker → function pod: the paper's
                // redundant data movement).
                let mut inputs = Vec::with_capacity(task.inputs.len());
                for f in &task.inputs {
                    let data = ctx
                        .node
                        .fs()
                        .read(&ctx.sandbox_path(f))
                        .await
                        .map_err(|e| e.to_string())?;
                    inputs.push(data);
                }
                let obs = swf_obs::current();
                let wrapper = format!("{}/wrapper", ctx.node.name());
                let payload = encode_payload(&inputs);
                // Client-side serialization of the pass-by-value request
                // (the paper's Python wrapper JSON-encodes the matrices).
                if ser_rate > 0.0 {
                    let ser = obs.span(
                        ctx.span,
                        &wrapper,
                        "serialize:request",
                        swf_obs::Category::Serialize,
                    );
                    swf_simcore::sleep(swf_simcore::SimDuration::from_secs_f64(
                        payload.len() as f64 / ser_rate,
                    ))
                    .await;
                    drop(ser);
                }
                let mut request = Request::post("/invoke", payload);
                if !ctx.span.is_none() {
                    request = request.with_header(swf_obs::TRACE_HEADER, ctx.span.to_header());
                }
                let response = knative
                    .invoke(ctx.node_id(), &service, request)
                    .await
                    .map_err(|e| e.to_string())?;
                // Client-side deserialization of the response.
                if ser_rate > 0.0 {
                    let ser = obs.span(
                        ctx.span,
                        &wrapper,
                        "serialize:response",
                        swf_obs::Category::Serialize,
                    );
                    swf_simcore::sleep(swf_simcore::SimDuration::from_secs_f64(
                        response.body.len() as f64 / ser_rate,
                    ))
                    .await;
                    drop(ser);
                }
                let outputs = decode_outputs(response.body)?;
                if outputs.len() != task.outputs.len() {
                    return Err(format!(
                        "function returned {} outputs, expected {}",
                        outputs.len(),
                        task.outputs.len()
                    ));
                }
                for (name, data) in task.outputs.iter().zip(outputs) {
                    ctx.node.fs().write(ctx.sandbox_path(name), data).await;
                }
                Ok(Bytes::new())
            })
        })
    }

    fn container_job(&self, task: &PlannedTask) -> JobFn {
        let k8s = self.k8s.clone();
        let image = self.image.clone();
        let staging = self.staging;
        let tarball = self.image_tarball.clone();
        let task = task.clone();
        Rc::new(move |ctx: JobContext| {
            let k8s = k8s.clone();
            let image = image.clone();
            let tarball = tarball.clone();
            let task = task.clone();
            Box::pin(async move {
                let runtime = k8s
                    .runtime(ctx.node_id())
                    .cloned()
                    .ok_or_else(|| format!("no container runtime on {}", ctx.node_id()))?;
                let obs = swf_obs::current();
                match staging {
                    ContainerStaging::PerJob => {
                        // The tarball arrived via Condor file transfer; a
                        // `docker load` reads it off the local disk and
                        // registers the layers.
                        let load = obs.span(
                            ctx.span,
                            &format!("{}/docker", ctx.node.name()),
                            "docker-load",
                            swf_obs::Category::Pull,
                        );
                        let tar = tarball
                            .as_deref()
                            .ok_or_else(|| "image tarball was not staged".to_string())?;
                        ctx.node
                            .fs()
                            .read(&ctx.sandbox_path(tar))
                            .await
                            .map_err(|e| format!("image tarball: {e}"))?;
                        runtime
                            .registry()
                            .mark_cached(ctx.node_id(), &image)
                            .map_err(|e| e.to_string())?;
                        drop(load);
                    }
                    ContainerStaging::PullIfMissing => {
                        let pull = obs.span(
                            ctx.span,
                            &format!("{}/docker", ctx.node.name()),
                            "ensure-image",
                            swf_obs::Category::Pull,
                        );
                        runtime
                            .ensure_image(&image)
                            .await
                            .map_err(|e| e.to_string())?;
                        drop(pull);
                    }
                }
                // Read inputs, then run the task inside a fresh container.
                let mut inputs = Vec::with_capacity(task.inputs.len());
                for f in &task.inputs {
                    let data = ctx
                        .node
                        .fs()
                        .read(&ctx.sandbox_path(f))
                        .await
                        .map_err(|e| e.to_string())?;
                    inputs.push(data);
                }
                let logic = task.logic.clone();
                let workload = Workload::new(task.compute, move || {
                    let outs = logic(inputs)?;
                    Ok(crate::function::encode_outputs(&outs))
                });
                let cli = DockerCli::new(runtime);
                let report = cli
                    .run_with_span(
                        ctx.span,
                        &image,
                        ResourceLimits::one_core(512),
                        workload,
                        PullPolicy::Never,
                    )
                    .await
                    .map_err(|e: ContainerError| e.to_string())?;
                let outputs = decode_outputs(report.exec.output)?;
                if outputs.len() != task.outputs.len() {
                    return Err(format!(
                        "container task returned {} outputs, expected {}",
                        outputs.len(),
                        task.outputs.len()
                    ));
                }
                for (name, data) in task.outputs.iter().zip(outputs) {
                    ctx.node.fs().write(ctx.sandbox_path(name), data).await;
                }
                Ok(Bytes::new())
            })
        })
    }
}

impl JobFactory for IntegratedFactory {
    fn build(&self, task: &PlannedTask) -> JobFn {
        match task.env {
            ExecEnv::Native => {
                let task = task.clone();
                Rc::new(move |ctx: JobContext| {
                    let task = task.clone();
                    Box::pin(async move { run_native(&task, &ctx).await })
                })
            }
            ExecEnv::Serverless => self.serverless_job(task),
            ExecEnv::Container => self.container_job(task),
        }
    }

    fn extra_inputs(&self, task: &PlannedTask) -> Vec<String> {
        if task.env == ExecEnv::Container && self.staging == ContainerStaging::PerJob {
            // A missing tarball surfaces later as a typed MissingInput error
            // on the job rather than a panic here.
            self.image_tarball.clone().into_iter().collect()
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExperimentConfig, Provisioning};
    use crate::testbed::TestBed;
    use swf_pegasus::{NativeFactory, Pegasus, ReplicaLocation};
    use swf_simcore::{secs, Sim};
    use swf_workloads::{chain_workflow, decode, EnvMix};

    /// Run a 3-task chain in the given mix end to end; return final matrix.
    fn run_mix(mix: EnvMix) -> (swf_workloads::Matrix, swf_workloads::Matrix) {
        let sim = Sim::new();
        sim.block_on(async move {
            let config = ExperimentConfig::quick();
            let bed = TestBed::boot(&config);
            let tarball = bed.stage_image_tarball();
            crate::function::register_matmul(&bed.knative, &config);
            if config.provisioning == Provisioning::PreStage {
                bed.knative
                    .wait_ready("matmul", 1, secs(600.0))
                    .await
                    .unwrap();
            }
            let pegasus = Pegasus::new(bed.condor.clone()).with_dagman(config.dagman);
            pegasus
                .transformations()
                .register(crate::builder::matmul_transformation(&config));
            let mut rng = swf_simcore::DetRng::new(config.seed, "mix");
            let chain = chain_workflow(0, 3, mix, &mut rng);
            let wf = crate::builder::stage_chain_workflow(
                &bed.cluster,
                pegasus.replicas(),
                &chain,
                &config,
            );
            // The tarball must be discoverable as a replica too.
            pegasus
                .replicas()
                .register(&tarball, ReplicaLocation::SharedFs(tarball.clone()));
            let factory = IntegratedFactory::new(
                bed.knative.clone(),
                bed.k8s.clone(),
                bed.image.clone(),
                config.container_staging,
                Some(tarball),
            );
            let (_stats, _report) = pegasus.run(&wf, &factory).await.unwrap();
            // Reference result via pure native execution on a fresh bed is
            // overkill; recompute expected product directly instead.
            let out = bed
                .cluster
                .shared_fs()
                .read(&chain.tasks.last().unwrap().output)
                .await
                .unwrap();
            let got = decode(out).unwrap();
            // Recompute expected from the staged seeds.
            let mut acc = decode(
                bed.cluster
                    .shared_fs()
                    .read(&chain.tasks[0].input_a)
                    .await
                    .unwrap(),
            )
            .unwrap();
            for t in &chain.tasks {
                let b = decode(bed.cluster.shared_fs().read(&t.input_b).await.unwrap()).unwrap();
                acc = swf_workloads::matmul(&acc, &b, swf_workloads::Kernel::Blocked);
            }
            (got, acc)
        })
    }

    #[test]
    fn all_native_chain_produces_correct_product() {
        let (got, expected) = run_mix(EnvMix::ALL_NATIVE);
        assert_eq!(got, expected);
    }

    #[test]
    fn all_serverless_chain_produces_correct_product() {
        let (got, expected) = run_mix(EnvMix::ALL_SERVERLESS);
        assert_eq!(got, expected);
    }

    #[test]
    fn all_container_chain_produces_correct_product() {
        let (got, expected) = run_mix(EnvMix::ALL_CONTAINER);
        assert_eq!(got, expected);
    }

    #[test]
    fn mixed_chain_produces_correct_product() {
        let (got, expected) = run_mix(EnvMix {
            serverless: 0.34,
            container: 0.33,
        });
        assert_eq!(got, expected);
    }

    #[test]
    fn native_factory_matches_integrated_native() {
        // Sanity: the pegasus-native factory and the integrated factory's
        // native arm run the same path.
        let sim = Sim::new();
        sim.block_on(async {
            let config = ExperimentConfig::quick();
            let bed = TestBed::boot(&config);
            let pegasus = Pegasus::new(bed.condor.clone()).with_dagman(config.dagman);
            pegasus
                .transformations()
                .register(crate::builder::matmul_transformation(&config));
            let mut rng = swf_simcore::DetRng::new(9, "nf");
            let chain = chain_workflow(1, 2, EnvMix::ALL_NATIVE, &mut rng);
            let wf = crate::builder::stage_chain_workflow(
                &bed.cluster,
                pegasus.replicas(),
                &chain,
                &config,
            );
            let (stats, _) = pegasus.run(&wf, &NativeFactory).await.unwrap();
            assert_eq!(stats.tasks, 2);
        });
    }
}
