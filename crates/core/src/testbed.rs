//! The assembled testbed: cluster + registry + HTCondor + Kubernetes +
//! Knative, mirroring the paper's §V-A software stack on 4 VMs.

use swf_cluster::Cluster;
use swf_condor::Condor;
use swf_container::{Image, ImageRef, Registry};
use swf_k8s::K8s;
use swf_knative::Knative;

use crate::config::ExperimentConfig;

/// A fully booted reproduction of the paper's environment.
pub struct TestBed {
    /// The 4-VM cluster.
    pub cluster: Cluster,
    /// Image registry (DockerHub stand-in) with the matmul image pushed.
    pub registry: Registry,
    /// HTCondor pool (submit node schedd + worker startds).
    pub condor: Condor,
    /// Kubernetes control plane (one kubelet per worker).
    pub k8s: K8s,
    /// Knative serving on top of Kubernetes.
    pub knative: Knative,
    /// The function image used by all experiments.
    pub image: ImageRef,
    /// The configuration the bed was built from.
    pub config: ExperimentConfig,
}

impl TestBed {
    /// Boot everything. Must run inside a simulation (`Sim::block_on`).
    pub fn boot(config: &ExperimentConfig) -> TestBed {
        let cluster = Cluster::new(&config.cluster);
        let registry = Registry::new(config.registry);
        let image = ImageRef::parse(ExperimentConfig::image_name());
        registry.push(Image::python_scientific(image.clone(), 1));
        let condor = Condor::start(&cluster, config.condor);
        let k8s = K8s::start(&cluster, registry.clone(), config.k8s.clone(), config.seed);
        let knative = Knative::start(&cluster, k8s.clone(), config.knative);
        if config.trace && config.series_interval_s > 0.0 {
            let obs = swf_obs::current();
            if obs.is_enabled() {
                // Start the telemetry snapshot scheduler for this run. The
                // sampler only reads the registry, so virtual-time results
                // stay bit-identical whether or not it runs.
                obs.configure_series(swf_obs::SeriesConfig::every(swf_simcore::secs(
                    config.series_interval_s,
                )));
                swf_obs::spawn_sampler(&obs);
            }
        }
        TestBed {
            cluster,
            registry,
            condor,
            k8s,
            knative,
            image,
            config: config.clone(),
        }
    }

    /// Stage the container image tarball on the shared filesystem so
    /// Pegasus can transfer it per job (traditional container path).
    /// Returns the logical file name.
    pub fn stage_image_tarball(&self) -> String {
        let name = "images/matmul.tar".to_string();
        let size = self
            .registry
            .manifest(&self.image)
            .expect("image pushed at boot")
            .total_size();
        // The tarball is opaque bulk data: real size, synthetic content.
        // `zeroed_bytes` shares one backing allocation across boots, so
        // re-staging per experiment arm is O(1) instead of a 450 MiB copy.
        self.cluster
            .shared_fs()
            .stage(&name, swf_cluster::zeroed_bytes(size as usize));
        name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_simcore::Sim;

    #[test]
    fn boot_brings_up_all_subsystems() {
        let sim = Sim::new();
        sim.block_on(async {
            let bed = TestBed::boot(&ExperimentConfig::quick());
            assert_eq!(bed.cluster.nodes().len(), 4);
            assert_eq!(bed.condor.total_slots(), 24);
            assert_eq!(bed.k8s.schedulable_nodes().len(), 3);
            assert!(bed.registry.manifest(&bed.image).is_ok());
        });
    }

    #[test]
    fn image_tarball_has_image_size() {
        let sim = Sim::new();
        sim.block_on(async {
            let bed = TestBed::boot(&ExperimentConfig::quick());
            let name = bed.stage_image_tarball();
            let expected = bed.registry.manifest(&bed.image).unwrap().total_size();
            assert_eq!(bed.cluster.shared_fs().size(&name), Some(expected));
        });
    }
}
