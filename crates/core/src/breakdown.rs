//! "Where the time goes": critical-path makespan breakdowns computed from
//! traced experiment runs.
//!
//! When an experiment runs with [`crate::ExperimentConfig::trace`] set, the
//! whole stack (DAGMan, schedd, negotiator, startd, docker, kubelet, the
//! knative router/activator and queue-proxies) records spans into one
//! [`swf_obs::Obs`] collector per repetition. These helpers reduce that span
//! forest to the paper's question: which overhead category dominates each
//! environment mix's makespan.

use swf_obs::{critical_path, roots, Category, CriticalPath, Obs};

/// Critical path of the slowest traced workflow in `obs`: among root spans
/// named `workflow:*`, the one with the longest duration (matching the
/// paper's slowest-of-N-concurrent-workflows metric). `None` when tracing
/// was disabled or no workflow root was recorded.
pub fn slowest_workflow_breakdown(obs: &Obs) -> Option<CriticalPath> {
    let spans = obs.spans();
    let root = roots(&spans)
        .into_iter()
        .filter(|s| s.name.starts_with("workflow:"))
        .max_by(|a, b| {
            a.duration_secs()
                .total_cmp(&b.duration_secs())
                .then(a.id.0.cmp(&b.id.0))
        })?
        .id;
    Some(critical_path(&spans, root))
}

/// Share of the makespan the paper attributes to useful scheduling work:
/// compute plus claim activation.
pub fn compute_share(cp: &CriticalPath) -> f64 {
    cp.share(&[Category::Compute, Category::Activation])
}

/// Share of the makespan spent on container lifecycle (pull + create +
/// destroy) — zero on the all-native path.
pub fn container_lifecycle_share(cp: &CriticalPath) -> f64 {
    cp.share(&[Category::Pull, Category::Create, Category::Destroy])
}

/// Render one labelled mix's breakdown as an indented table block.
pub fn render_mix_breakdown(label: &str, cp: &CriticalPath) -> String {
    let mut out = format!("{label}: {} makespan {:.1}s\n", cp.root_name, cp.makespan_s);
    for line in cp.render_breakdown().lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_simcore::{secs, sleep, Sim};

    #[test]
    fn slowest_workflow_wins() {
        let sim = Sim::new();
        let obs = Obs::enabled();
        let obs2 = obs.clone();
        sim.block_on(async move {
            let obs = obs2;
            let short = obs.span(
                swf_obs::SpanContext::NONE,
                "condor/dagman",
                "workflow:short",
                Category::Other,
            );
            sleep(secs(1.0)).await;
            drop(short);
            let long = obs.span(
                swf_obs::SpanContext::NONE,
                "condor/dagman",
                "workflow:long",
                Category::Other,
            );
            let c = obs.span(long.ctx(), "n/startd", "execute", Category::Compute);
            sleep(secs(5.0)).await;
            drop(c);
            drop(long);
        });
        let cp = slowest_workflow_breakdown(&obs).expect("traced workflows");
        assert_eq!(cp.root_name, "workflow:long");
        assert!((cp.makespan_s - 5.0).abs() < 1e-9);
        assert!((compute_share(&cp) - 1.0).abs() < 1e-9);
        assert_eq!(container_lifecycle_share(&cp), 0.0);
        let rendered = render_mix_breakdown("all-native", &cp);
        assert!(rendered.contains("workflow:long"));
        assert!(rendered.contains("compute"));
    }

    #[test]
    fn disabled_obs_yields_none() {
        assert!(slowest_workflow_breakdown(&Obs::disabled()).is_none());
    }
}
