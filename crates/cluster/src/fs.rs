//! Simulated filesystems.
//!
//! Files hold real byte payloads (`bytes::Bytes`) so workflow tasks compute
//! on genuine data, while read/write operations charge virtual disk time.
//! Two flavors exist in the cluster: one local filesystem per node, and one
//! shared filesystem exported by the submit node (the paper's staging area).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use bytes::Bytes;

use crate::disk::Disk;
use crate::error::ClusterError;

/// A simulated filesystem backed by a [`Disk`] for timing.
#[derive(Clone)]
pub struct SimFs {
    name: Rc<str>,
    disk: Disk,
    files: Rc<RefCell<BTreeMap<String, Bytes>>>,
}

impl SimFs {
    /// Create an empty filesystem whose operations are charged to `disk`.
    pub fn new(name: impl Into<String>, disk: Disk) -> Self {
        SimFs {
            name: Rc::from(name.into()),
            disk,
            files: Rc::new(RefCell::new(BTreeMap::new())),
        }
    }

    /// Filesystem name (diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Read a whole file, charging disk time proportional to its size.
    pub async fn read(&self, path: &str) -> Result<Bytes, ClusterError> {
        let data = self
            .files
            .borrow()
            .get(path)
            .cloned()
            .ok_or_else(|| ClusterError::FileNotFound(format!("{}:{path}", self.name)))?;
        self.disk.read(data.len() as u64).await;
        Ok(data)
    }

    /// Write a whole file, charging disk time.
    pub async fn write(&self, path: impl Into<String>, data: Bytes) {
        self.disk.write(data.len() as u64).await;
        self.files.borrow_mut().insert(path.into(), data);
    }

    /// Instantaneously place a file (experiment setup, not measured I/O).
    pub fn stage(&self, path: impl Into<String>, data: Bytes) {
        self.files.borrow_mut().insert(path.into(), data);
    }

    /// Remove a file; true if it existed.
    pub fn remove(&self, path: &str) -> bool {
        self.files.borrow_mut().remove(path).is_some()
    }

    /// Does the file exist?
    pub fn exists(&self, path: &str) -> bool {
        self.files.borrow().contains_key(path)
    }

    /// Size of a file without charging I/O time (metadata lookup).
    pub fn size(&self, path: &str) -> Option<u64> {
        self.files.borrow().get(path).map(|d| d.len() as u64)
    }

    /// Number of files stored.
    pub fn file_count(&self) -> usize {
        self.files.borrow().len()
    }

    /// Paths currently stored (sorted).
    pub fn list(&self) -> Vec<String> {
        self.files.borrow().keys().cloned().collect()
    }

    /// Total bytes stored.
    pub fn total_bytes(&self) -> u64 {
        self.files.borrow().values().map(|d| d.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Rate;
    use swf_simcore::{now, secs, Sim, SimDuration, SimTime};

    fn fast_fs() -> SimFs {
        SimFs::new(
            "t",
            Disk::new("d", Rate::mb_per_s(100.0), SimDuration::ZERO),
        )
    }

    #[test]
    fn write_then_read_roundtrips_content() {
        let sim = Sim::new();
        sim.block_on(async {
            let fs = fast_fs();
            fs.write("a.mat", Bytes::from(vec![1u8, 2, 3])).await;
            let b = fs.read("a.mat").await.unwrap();
            assert_eq!(&b[..], &[1, 2, 3]);
        });
    }

    #[test]
    fn read_missing_file_errors() {
        let sim = Sim::new();
        sim.block_on(async {
            let fs = fast_fs();
            let e = fs.read("nope").await.unwrap_err();
            assert!(matches!(e, ClusterError::FileNotFound(_)));
        });
    }

    #[test]
    fn io_charges_time_by_size() {
        let sim = Sim::new();
        sim.block_on(async {
            let fs = fast_fs();
            fs.write("big", crate::bulk::zeroed_bytes(100_000_000))
                .await;
            assert_eq!(now(), SimTime::ZERO + secs(1.0));
            fs.read("big").await.unwrap();
            assert_eq!(now(), SimTime::ZERO + secs(2.0));
        });
    }

    #[test]
    fn stage_is_instant() {
        let sim = Sim::new();
        sim.block_on(async {
            let fs = fast_fs();
            fs.stage("x", Bytes::from_static(b"abc"));
            assert_eq!(now(), SimTime::ZERO);
            assert!(fs.exists("x"));
            assert_eq!(fs.size("x"), Some(3));
        });
    }

    #[test]
    fn metadata_helpers() {
        let sim = Sim::new();
        sim.block_on(async {
            let fs = fast_fs();
            fs.stage("b", Bytes::from_static(b"yy"));
            fs.stage("a", Bytes::from_static(b"x"));
            assert_eq!(fs.list(), vec!["a".to_string(), "b".to_string()]);
            assert_eq!(fs.file_count(), 2);
            assert_eq!(fs.total_bytes(), 3);
            assert!(fs.remove("a"));
            assert!(!fs.remove("a"));
        });
    }
}
