//! A compute node: CPU cores, memory pool, local disk and filesystem.

use swf_simcore::{Resource, SimDuration};

use crate::disk::Disk;
use crate::fs::SimFs;
use crate::memory::MemoryPool;
use crate::network::NodeId;
use crate::units::gib;

/// Per-node hardware shape.
#[derive(Clone, Copy, Debug)]
pub struct NodeSpec {
    /// CPU cores (paper: 8 per VM).
    pub cores: usize,
    /// Memory bytes (paper: 32 GiB per VM).
    pub memory: u64,
}

impl Default for NodeSpec {
    fn default() -> Self {
        // The paper's testbed VMs: 8 cores, 32 GB, Xeon Gold 6342.
        NodeSpec {
            cores: 8,
            memory: gib(32),
        }
    }
}

/// One compute node.
#[derive(Clone)]
pub struct Node {
    id: NodeId,
    name: String,
    cores: Resource,
    memory: MemoryPool,
    disk: Disk,
    local_fs: SimFs,
}

impl Node {
    /// Build a node from a spec.
    pub fn new(id: NodeId, spec: NodeSpec) -> Self {
        let name = id.to_string();
        let disk = Disk::standard_ssd(format!("{name}-disk"));
        Node {
            id,
            cores: Resource::new(format!("{name}-cores"), spec.cores),
            memory: MemoryPool::new(name.clone(), spec.memory),
            local_fs: SimFs::new(format!("{name}-fs"), disk.clone()),
            disk,
            name,
        }
    }

    /// Node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Node name (`node-<i>`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The CPU core pool (acquire one core to run a task thread).
    pub fn cores(&self) -> &Resource {
        &self.cores
    }

    /// The memory pool.
    pub fn memory(&self) -> &MemoryPool {
        &self.memory
    }

    /// The node-local disk.
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// The node-local filesystem.
    pub fn fs(&self) -> &SimFs {
        &self.local_fs
    }

    /// Execute `compute` seconds of single-core work: waits for a free core,
    /// then holds it for the duration. Returns queueing delay.
    pub async fn run_on_core(&self, compute: SimDuration) -> SimDuration {
        self.cores.serve(compute).await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_simcore::{join_all, now, secs, spawn, Sim, SimTime};

    #[test]
    fn default_spec_matches_paper_testbed() {
        let spec = NodeSpec::default();
        assert_eq!(spec.cores, 8);
        assert_eq!(spec.memory, gib(32));
    }

    #[test]
    fn cores_limit_parallelism() {
        let sim = Sim::new();
        sim.block_on(async {
            let node = Node::new(
                NodeId(0),
                NodeSpec {
                    cores: 2,
                    memory: gib(1),
                },
            );
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let node = node.clone();
                    spawn(async move {
                        node.run_on_core(secs(1.0)).await;
                    })
                })
                .collect();
            join_all(handles).await;
            assert_eq!(now(), SimTime::ZERO + secs(2.0));
        });
    }

    #[test]
    fn node_has_isolated_fs_and_memory() {
        let sim = Sim::new();
        sim.block_on(async {
            let a = Node::new(NodeId(0), NodeSpec::default());
            let b = Node::new(NodeId(1), NodeSpec::default());
            a.fs().stage("only-on-a", bytes::Bytes::from_static(b"x"));
            assert!(a.fs().exists("only-on-a"));
            assert!(!b.fs().exists("only-on-a"));
            let _lease = a.memory().reserve(gib(1)).unwrap();
            assert_eq!(b.memory().used(), 0);
        });
    }
}
