//! Cluster network model.
//!
//! Every node has one full-duplex NIC modelled as two FIFO channels (egress
//! and ingress). A transfer from A to B charges propagation latency once and
//! serializes the payload through A's egress and B's ingress at link
//! bandwidth — so many concurrent transfers into one node contend, which is
//! exactly the effect behind the paper's "redundant data movement" concern.
//! Loopback transfers only pay a small kernel cost.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use swf_simcore::{secs, Resource, SimDuration};

use crate::error::ClusterError;
use crate::units::Rate;

/// Identifies a node in the cluster (index into the node table).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub usize);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node-{}", self.0)
    }
}

/// Configuration of the fabric.
#[derive(Clone, Copy, Debug)]
pub struct NetworkConfig {
    /// Per-NIC bandwidth.
    pub bandwidth: Rate,
    /// One-way propagation latency between distinct nodes.
    pub latency: SimDuration,
    /// Cost of a loopback round through the kernel.
    pub loopback_cost: SimDuration,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            bandwidth: Rate::gbit_per_s(10.0),
            latency: SimDuration::from_micros(200),
            loopback_cost: SimDuration::from_micros(20),
        }
    }
}

struct Nic {
    egress: Resource,
    ingress: Resource,
}

/// Fault-injected quality degradation of one (unordered) node pair's link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkQuality {
    /// Multiplier on the propagation latency (≥ 1 slows the link).
    pub latency_factor: f64,
    /// Divisor on the effective bandwidth (≥ 1 slows the link).
    pub bandwidth_factor: f64,
}

impl LinkQuality {
    /// The undegraded link.
    pub const NOMINAL: LinkQuality = LinkQuality {
        latency_factor: 1.0,
        bandwidth_factor: 1.0,
    };
}

struct State {
    nics: BTreeMap<NodeId, Nic>,
    transfers: u64,
    bytes_moved: u64,
    /// Unordered node pairs currently partitioned (fault injection).
    /// Empty by default — the common case pays one `is_empty` check.
    partitions: std::collections::BTreeSet<(NodeId, NodeId)>,
    /// Unordered node pairs with degraded links (fault injection).
    degraded: BTreeMap<(NodeId, NodeId), LinkQuality>,
    /// Transfers refused because of a partition.
    partition_drops: u64,
}

/// Canonical (sorted) key for an unordered node pair.
fn pair(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The cluster fabric.
#[derive(Clone)]
pub struct Network {
    config: NetworkConfig,
    state: Rc<RefCell<State>>,
}

impl Network {
    /// Fabric over `node_count` nodes.
    pub fn new(config: NetworkConfig, node_count: usize) -> Self {
        let mut nics = BTreeMap::new();
        for i in 0..node_count {
            nics.insert(
                NodeId(i),
                Nic {
                    egress: Resource::new(format!("nic-{i}-out"), 1),
                    ingress: Resource::new(format!("nic-{i}-in"), 1),
                },
            );
        }
        Network {
            config,
            state: Rc::new(RefCell::new(State {
                nics,
                transfers: 0,
                bytes_moved: 0,
                partitions: std::collections::BTreeSet::new(),
                degraded: BTreeMap::new(),
                partition_drops: 0,
            })),
        }
    }

    /// The fabric configuration.
    pub fn config(&self) -> NetworkConfig {
        self.config
    }

    /// Move `bytes` from `from` to `to`, returning the elapsed transfer time.
    pub async fn transfer(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: u64,
    ) -> Result<SimDuration, ClusterError> {
        // Fault state is sampled once, at transfer start: a partition that
        // heals mid-flight does not rescue an already-refused transfer, and
        // a degradation applies to the whole payload.
        let quality = {
            let s = self.state.borrow();
            if !s.nics.contains_key(&from) {
                return Err(ClusterError::UnknownNode(from.to_string()));
            }
            if !s.nics.contains_key(&to) {
                return Err(ClusterError::UnknownNode(to.to_string()));
            }
            if from != to && !s.partitions.is_empty() && s.partitions.contains(&pair(from, to)) {
                drop(s);
                self.state.borrow_mut().partition_drops += 1;
                return Err(ClusterError::Partitioned {
                    from: from.to_string(),
                    to: to.to_string(),
                });
            }
            s.degraded.get(&pair(from, to)).copied()
        };
        let start = swf_simcore::now();
        if from == to {
            swf_simcore::sleep(self.config.loopback_cost).await;
        } else {
            // Degradation multiplies latency and divides bandwidth only
            // when a fault entry exists, so the calm path keeps the exact
            // float arithmetic it always had.
            let (latency, wire) = match quality {
                None => (
                    self.config.latency,
                    secs(self.config.bandwidth.time_for(bytes)),
                ),
                Some(q) => (
                    self.config.latency.mul_f64(q.latency_factor.max(0.0)),
                    secs(self.config.bandwidth.time_for(bytes) * q.bandwidth_factor.max(1.0)),
                ),
            };
            // Hold source egress while the payload serializes out...
            let egress = {
                let s = self.state.borrow();
                s.nics[&from].egress.clone()
            };
            let ingress = {
                let s = self.state.borrow();
                s.nics[&to].ingress.clone()
            };
            let eg = egress.acquire().await;
            swf_simcore::sleep(latency).await;
            // ...then through destination ingress.
            let ig = ingress.acquire().await;
            swf_simcore::sleep(wire).await;
            drop(ig);
            drop(eg);
        }
        let elapsed = swf_simcore::now() - start;
        {
            let mut s = self.state.borrow_mut();
            s.transfers += 1;
            s.bytes_moved += bytes;
        }
        Ok(elapsed)
    }

    /// Number of completed transfers.
    pub fn transfers(&self) -> u64 {
        self.state.borrow().transfers
    }

    /// Total bytes moved across the fabric (including loopback).
    pub fn bytes_moved(&self) -> u64 {
        self.state.borrow().bytes_moved
    }

    /// Fault injection: partition the (unordered) link between `a` and `b`.
    /// Transfers between them fail with [`ClusterError::Partitioned`] until
    /// [`Network::heal`]. Loopback traffic is never partitionable.
    pub fn partition(&self, a: NodeId, b: NodeId) {
        if a != b {
            self.state.borrow_mut().partitions.insert(pair(a, b));
        }
    }

    /// Heal a partition injected with [`Network::partition`]. Returns true
    /// when a partition was actually present.
    pub fn heal(&self, a: NodeId, b: NodeId) -> bool {
        self.state.borrow_mut().partitions.remove(&pair(a, b))
    }

    /// Is the link between `a` and `b` currently partitioned?
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.state.borrow().partitions.contains(&pair(a, b))
    }

    /// Fault injection: degrade the link between `a` and `b` — multiply its
    /// propagation latency by `quality.latency_factor` and divide its
    /// bandwidth by `quality.bandwidth_factor`.
    pub fn degrade_link(&self, a: NodeId, b: NodeId, quality: LinkQuality) {
        if a != b {
            self.state.borrow_mut().degraded.insert(pair(a, b), quality);
        }
    }

    /// Remove a degradation injected with [`Network::degrade_link`].
    /// Returns true when a degradation was actually present.
    pub fn restore_link(&self, a: NodeId, b: NodeId) -> bool {
        self.state
            .borrow_mut()
            .degraded
            .remove(&pair(a, b))
            .is_some()
    }

    /// Transfers refused because the link was partitioned.
    pub fn partition_drops(&self) -> u64 {
        self.state.borrow().partition_drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_simcore::{join_all, now, spawn, Sim, SimTime};

    fn testnet(nodes: usize) -> Network {
        Network::new(
            NetworkConfig {
                bandwidth: Rate::mb_per_s(100.0),
                latency: SimDuration::from_millis(1),
                loopback_cost: SimDuration::from_micros(10),
            },
            nodes,
        )
    }

    #[test]
    fn transfer_time_is_latency_plus_wire() {
        let sim = Sim::new();
        sim.block_on(async {
            let net = testnet(2);
            let t = net
                .transfer(NodeId(0), NodeId(1), 100_000_000)
                .await
                .unwrap();
            assert_eq!(t, secs(1.0) + SimDuration::from_millis(1));
        });
    }

    #[test]
    fn loopback_is_cheap() {
        let sim = Sim::new();
        sim.block_on(async {
            let net = testnet(1);
            let t = net
                .transfer(NodeId(0), NodeId(0), 1_000_000_000)
                .await
                .unwrap();
            assert_eq!(t, SimDuration::from_micros(10));
        });
    }

    #[test]
    fn partition_refuses_traffic_until_healed() {
        let sim = Sim::new();
        sim.block_on(async {
            let net = testnet(3);
            net.partition(NodeId(1), NodeId(0));
            assert!(net.is_partitioned(NodeId(0), NodeId(1)));
            // Both directions of the unordered pair are cut.
            assert!(matches!(
                net.transfer(NodeId(0), NodeId(1), 1).await,
                Err(ClusterError::Partitioned { .. })
            ));
            assert!(matches!(
                net.transfer(NodeId(1), NodeId(0), 1).await,
                Err(ClusterError::Partitioned { .. })
            ));
            // Unrelated links are untouched; loopback always works.
            assert!(net.transfer(NodeId(0), NodeId(2), 1).await.is_ok());
            assert!(net.transfer(NodeId(0), NodeId(0), 1).await.is_ok());
            assert_eq!(net.partition_drops(), 2);
            assert!(net.heal(NodeId(0), NodeId(1)));
            assert!(!net.heal(NodeId(0), NodeId(1)));
            assert!(net.transfer(NodeId(0), NodeId(1), 1).await.is_ok());
        });
    }

    #[test]
    fn degraded_link_slows_latency_and_bandwidth() {
        let sim = Sim::new();
        sim.block_on(async {
            let net = testnet(2);
            let nominal = net
                .transfer(NodeId(0), NodeId(1), 100_000_000)
                .await
                .unwrap();
            net.degrade_link(
                NodeId(0),
                NodeId(1),
                LinkQuality {
                    latency_factor: 3.0,
                    bandwidth_factor: 2.0,
                },
            );
            let degraded = net
                .transfer(NodeId(0), NodeId(1), 100_000_000)
                .await
                .unwrap();
            // 1 ms latency → 3 ms; 1 s wire → 2 s.
            assert_eq!(degraded, secs(2.0) + SimDuration::from_millis(3));
            assert!(degraded > nominal);
            assert!(net.restore_link(NodeId(0), NodeId(1)));
            assert!(!net.restore_link(NodeId(0), NodeId(1)));
            let restored = net
                .transfer(NodeId(0), NodeId(1), 100_000_000)
                .await
                .unwrap();
            assert_eq!(restored, nominal);
        });
    }

    #[test]
    fn unknown_node_is_an_error() {
        let sim = Sim::new();
        sim.block_on(async {
            let net = testnet(1);
            assert!(matches!(
                net.transfer(NodeId(0), NodeId(9), 1).await,
                Err(ClusterError::UnknownNode(_))
            ));
            assert!(matches!(
                net.transfer(NodeId(9), NodeId(0), 1).await,
                Err(ClusterError::UnknownNode(_))
            ));
        });
    }

    #[test]
    fn concurrent_sends_from_one_node_serialize_on_egress() {
        let sim = Sim::new();
        sim.block_on(async {
            let net = testnet(3);
            let handles: Vec<_> = [NodeId(1), NodeId(2)]
                .into_iter()
                .map(|dst| {
                    let net = net.clone();
                    spawn(async move {
                        net.transfer(NodeId(0), dst, 100_000_000).await.unwrap();
                        now()
                    })
                })
                .collect();
            let done = join_all(handles).await;
            let wire = secs(1.0) + SimDuration::from_millis(1);
            assert_eq!(done[0], SimTime::ZERO + wire);
            // Second send waits for the first to clear node-0 egress.
            assert!(done[1] > done[0]);
        });
    }

    #[test]
    fn fanin_contends_on_ingress() {
        let sim = Sim::new();
        sim.block_on(async {
            let net = testnet(3);
            let handles: Vec<_> = [NodeId(1), NodeId(2)]
                .into_iter()
                .map(|src| {
                    let net = net.clone();
                    spawn(async move {
                        net.transfer(src, NodeId(0), 100_000_000).await.unwrap();
                        now()
                    })
                })
                .collect();
            let done = join_all(handles).await;
            assert!(done[1] >= done[0] + secs(1.0), "{:?}", done);
            assert_eq!(net.transfers(), 2);
            assert_eq!(net.bytes_moved(), 200_000_000);
        });
    }
}
