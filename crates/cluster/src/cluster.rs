//! The assembled cluster: nodes + fabric + HTTP + shared filesystem.
//!
//! Mirrors the paper's testbed: N virtual machines, one of which (node 0)
//! is the *submit node* hosting the HTCondor schedd, the Kubernetes control
//! plane, and the shared staging filesystem.

use std::rc::Rc;

use bytes::Bytes;

use crate::disk::Disk;
use crate::error::ClusterError;
use crate::fs::SimFs;
use crate::http::HttpStack;
use crate::network::{Network, NetworkConfig, NodeId};
use crate::node::{Node, NodeSpec};

/// Whole-cluster configuration.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of nodes (paper: 4).
    pub nodes: usize,
    /// Shape of each node.
    pub node_spec: NodeSpec,
    /// Fabric parameters.
    pub network: NetworkConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            node_spec: NodeSpec::default(),
            network: NetworkConfig::default(),
        }
    }
}

/// The simulated cluster.
#[derive(Clone)]
pub struct Cluster {
    nodes: Rc<Vec<Node>>,
    network: Network,
    http: HttpStack,
    shared_fs: SimFs,
}

impl Cluster {
    /// Build a cluster from its config.
    pub fn new(config: &ClusterConfig) -> Self {
        assert!(config.nodes >= 1, "cluster needs at least the submit node");
        let nodes: Vec<Node> = (0..config.nodes)
            .map(|i| Node::new(NodeId(i), config.node_spec))
            .collect();
        let network = Network::new(config.network, config.nodes);
        let http = HttpStack::new(network.clone());
        // The shared filesystem lives on the submit node's disk.
        let shared_fs = SimFs::new("shared-fs", Disk::standard_ssd("shared-fs-disk"));
        Cluster {
            nodes: Rc::new(nodes),
            network,
            http,
            shared_fs,
        }
    }

    /// The paper's 4-node testbed with default fabric.
    pub fn paper_testbed() -> Self {
        Cluster::new(&ClusterConfig::default())
    }

    /// The submit node (HTCondor schedd + k8s control plane + shared FS).
    pub fn submit_node(&self) -> &Node {
        &self.nodes[0]
    }

    /// Worker nodes (everything but the submit node). With a single-node
    /// cluster the submit node is also the worker.
    pub fn worker_nodes(&self) -> &[Node] {
        if self.nodes.len() == 1 {
            &self.nodes[..]
        } else {
            &self.nodes[1..]
        }
    }

    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node by id.
    pub fn node(&self, id: NodeId) -> Result<&Node, ClusterError> {
        self.nodes
            .get(id.0)
            .ok_or_else(|| ClusterError::UnknownNode(id.to_string()))
    }

    /// The network fabric.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The HTTP layer.
    pub fn http(&self) -> &HttpStack {
        &self.http
    }

    /// The shared filesystem object (unmetered network; see
    /// [`Cluster::shared_read_from`] for metered access).
    pub fn shared_fs(&self) -> &SimFs {
        &self.shared_fs
    }

    /// Read `path` from the shared FS as seen from `from`: charges the
    /// submit-node disk plus a network hop for the payload.
    pub async fn shared_read_from(&self, from: NodeId, path: &str) -> Result<Bytes, ClusterError> {
        let data = self.shared_fs.read(path).await?;
        self.network
            .transfer(self.submit_node().id(), from, data.len() as u64)
            .await?;
        Ok(data)
    }

    /// Write `path` to the shared FS from `from`: network hop plus disk.
    pub async fn shared_write_from(
        &self,
        from: NodeId,
        path: impl Into<String>,
        data: Bytes,
    ) -> Result<(), ClusterError> {
        self.network
            .transfer(from, self.submit_node().id(), data.len() as u64)
            .await?;
        self.shared_fs.write(path, data).await;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_simcore::{now, Sim, SimTime};

    #[test]
    fn paper_testbed_shape() {
        let sim = Sim::new();
        sim.block_on(async {
            let c = Cluster::paper_testbed();
            assert_eq!(c.nodes().len(), 4);
            assert_eq!(c.worker_nodes().len(), 3);
            assert_eq!(c.submit_node().id(), NodeId(0));
            assert!(c.node(NodeId(5)).is_err());
        });
    }

    #[test]
    fn single_node_cluster_worker_is_submit() {
        let sim = Sim::new();
        sim.block_on(async {
            let c = Cluster::new(&ClusterConfig {
                nodes: 1,
                ..ClusterConfig::default()
            });
            assert_eq!(c.worker_nodes().len(), 1);
            assert_eq!(c.worker_nodes()[0].id(), c.submit_node().id());
        });
    }

    #[test]
    fn shared_fs_roundtrip_from_worker() {
        let sim = Sim::new();
        sim.block_on(async {
            let c = Cluster::paper_testbed();
            let worker = c.worker_nodes()[0].id();
            c.shared_write_from(worker, "in.mat", Bytes::from(vec![9u8; 1024]))
                .await
                .unwrap();
            let got = c.shared_read_from(worker, "in.mat").await.unwrap();
            assert_eq!(got.len(), 1024);
            assert!(now() > SimTime::ZERO); // time was charged
        });
    }
}
