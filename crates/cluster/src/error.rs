//! Error types for the cluster model.

use std::fmt;

/// Errors surfaced by cluster components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Referenced node does not exist.
    UnknownNode(String),
    /// File not present in the queried filesystem.
    FileNotFound(String),
    /// Memory allocation would exceed node capacity.
    OutOfMemory {
        /// Node that rejected the allocation.
        node: String,
        /// Bytes requested.
        requested: u64,
        /// Bytes still free.
        available: u64,
    },
    /// No listener bound at the target address.
    ConnectionRefused {
        /// Target node.
        node: String,
        /// Target port.
        port: u16,
    },
    /// The remote listener dropped the request without responding.
    ConnectionReset,
    /// The link between two nodes is partitioned (fault injection): no
    /// traffic passes until the partition heals.
    Partitioned {
        /// Source node.
        from: String,
        /// Destination node.
        to: String,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::UnknownNode(n) => write!(f, "unknown node {n}"),
            ClusterError::FileNotFound(p) => write!(f, "file not found: {p}"),
            ClusterError::OutOfMemory {
                node,
                requested,
                available,
            } => write!(
                f,
                "out of memory on {node}: requested {requested}B, available {available}B"
            ),
            ClusterError::ConnectionRefused { node, port } => {
                write!(f, "connection refused: {node}:{port}")
            }
            ClusterError::ConnectionReset => write!(f, "connection reset by peer"),
            ClusterError::Partitioned { from, to } => {
                write!(f, "network partition: {from} -/- {to}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}
