//! Simulated HTTP layer over the cluster network.
//!
//! Listeners bind `(node, port)` and receive [`Incoming`] requests on an
//! mpsc mailbox; clients call [`HttpStack::request`] which charges network
//! time for the request and response payloads. This is the invocation path
//! the paper uses for Knative functions ("input data is sent in the function
//! invocation as part of the invocation network request").

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use bytes::Bytes;

use swf_simcore::sync::{mpsc, oneshot};

use crate::error::ClusterError;
use crate::network::{Network, NodeId};

/// HTTP request method (only what the reproduction needs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Method {
    /// Retrieve a resource.
    Get,
    /// Invoke / submit a payload.
    Post,
    /// Remove a resource.
    Delete,
}

/// A simulated HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Request path, e.g. `/invoke/matmul`.
    pub path: String,
    /// Request body (real bytes — tasks compute on them).
    pub body: Bytes,
    /// Header map.
    pub headers: BTreeMap<String, String>,
}

impl Request {
    /// A POST with a body.
    pub fn post(path: impl Into<String>, body: Bytes) -> Self {
        Request {
            method: Method::Post,
            path: path.into(),
            body,
            headers: BTreeMap::new(),
        }
    }

    /// A GET.
    pub fn get(path: impl Into<String>) -> Self {
        Request {
            method: Method::Get,
            path: path.into(),
            body: Bytes::new(),
            headers: BTreeMap::new(),
        }
    }

    /// Add a header.
    pub fn with_header(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.headers.insert(k.into(), v.into());
        self
    }

    /// Total on-wire size: body plus a small framing overhead.
    pub fn wire_size(&self) -> u64 {
        self.body.len() as u64 + 256
    }
}

/// A simulated HTTP response.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: Bytes,
}

impl Response {
    /// 200 with a body.
    pub fn ok(body: Bytes) -> Self {
        Response { status: 200, body }
    }

    /// An empty response with the given status.
    pub fn status(status: u16) -> Self {
        Response {
            status,
            body: Bytes::new(),
        }
    }

    /// True for 2xx.
    pub fn is_success(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// Total on-wire size.
    pub fn wire_size(&self) -> u64 {
        self.body.len() as u64 + 128
    }
}

/// A request delivered to a listener, with its response channel.
pub struct Incoming {
    /// The request.
    pub request: Request,
    /// Originating node.
    pub from: NodeId,
    responder: oneshot::Sender<Response>,
}

impl Incoming {
    /// Send the response back to the caller.
    pub fn respond(self, response: Response) {
        let _ = self.responder.send(response);
    }
}

type ListenerMap = BTreeMap<(NodeId, u16), mpsc::Sender<Incoming>>;

/// The cluster-wide HTTP fabric.
#[derive(Clone)]
pub struct HttpStack {
    network: Network,
    listeners: Rc<RefCell<ListenerMap>>,
    requests: Rc<RefCell<u64>>,
}

impl HttpStack {
    /// Build over a network fabric.
    pub fn new(network: Network) -> Self {
        HttpStack {
            network,
            listeners: Rc::new(RefCell::new(BTreeMap::new())),
            requests: Rc::new(RefCell::new(0)),
        }
    }

    /// Bind a listener at `(node, port)`; returns its request mailbox.
    /// Rebinding an existing address replaces the previous listener.
    pub fn listen(&self, node: NodeId, port: u16) -> mpsc::Receiver<Incoming> {
        let (tx, rx) = mpsc::channel();
        self.listeners.borrow_mut().insert((node, port), tx);
        rx
    }

    /// Remove a listener; true if one was bound.
    pub fn unlisten(&self, node: NodeId, port: u16) -> bool {
        self.listeners.borrow_mut().remove(&(node, port)).is_some()
    }

    /// Is anything listening at `(node, port)`?
    pub fn is_bound(&self, node: NodeId, port: u16) -> bool {
        self.listeners.borrow().contains_key(&(node, port))
    }

    /// Perform a full HTTP round trip from `from` to `(to, port)`.
    pub async fn request(
        &self,
        from: NodeId,
        to: NodeId,
        port: u16,
        request: Request,
    ) -> Result<Response, ClusterError> {
        let req_size = request.wire_size();
        // Charge the request payload on the wire.
        self.network.transfer(from, to, req_size).await?;
        let tx = {
            let listeners = self.listeners.borrow();
            listeners
                .get(&(to, port))
                .cloned()
                .ok_or(ClusterError::ConnectionRefused {
                    node: to.to_string(),
                    port,
                })?
        };
        let (resp_tx, resp_rx) = oneshot::channel();
        tx.send(Incoming {
            request,
            from,
            responder: resp_tx,
        })
        .map_err(|_| ClusterError::ConnectionRefused {
            node: to.to_string(),
            port,
        })?;
        let response = resp_rx.await.map_err(|_| ClusterError::ConnectionReset)?;
        // Charge the response payload on the wire back.
        self.network
            .transfer(to, from, response.wire_size())
            .await?;
        *self.requests.borrow_mut() += 1;
        Ok(response)
    }

    /// Completed request/response round trips.
    pub fn completed_requests(&self) -> u64 {
        *self.requests.borrow()
    }

    /// The underlying network (for byte accounting).
    pub fn network(&self) -> &Network {
        &self.network
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkConfig;
    use crate::units::Rate;
    use swf_simcore::{now, secs, spawn, Sim, SimDuration, SimTime};

    fn stack(nodes: usize) -> HttpStack {
        HttpStack::new(Network::new(
            NetworkConfig {
                bandwidth: Rate::mb_per_s(100.0),
                latency: SimDuration::from_millis(1),
                loopback_cost: SimDuration::from_micros(10),
            },
            nodes,
        ))
    }

    /// Spawn an echo server at (node, port) that doubles each body byte.
    fn spawn_echo(stack: &HttpStack, node: NodeId, port: u16) {
        let mut rx = stack.listen(node, port);
        spawn(async move {
            while let Some(incoming) = rx.recv().await {
                let doubled: Vec<u8> = incoming
                    .request
                    .body
                    .iter()
                    .map(|b| b.wrapping_mul(2))
                    .collect();
                incoming.respond(Response::ok(Bytes::from(doubled)));
            }
        });
    }

    #[test]
    fn request_roundtrip() {
        let sim = Sim::new();
        sim.block_on(async {
            let st = stack(2);
            spawn_echo(&st, NodeId(1), 8080);
            let resp = st
                .request(
                    NodeId(0),
                    NodeId(1),
                    8080,
                    Request::post("/", Bytes::from(vec![1, 2, 3])),
                )
                .await
                .unwrap();
            assert!(resp.is_success());
            assert_eq!(&resp.body[..], &[2, 4, 6]);
            assert_eq!(st.completed_requests(), 1);
        });
    }

    #[test]
    fn connection_refused_when_unbound() {
        let sim = Sim::new();
        sim.block_on(async {
            let st = stack(2);
            let err = st
                .request(NodeId(0), NodeId(1), 9999, Request::get("/"))
                .await
                .unwrap_err();
            assert!(matches!(err, ClusterError::ConnectionRefused { .. }));
        });
    }

    #[test]
    fn connection_reset_when_listener_drops_request() {
        let sim = Sim::new();
        sim.block_on(async {
            let st = stack(2);
            let mut rx = st.listen(NodeId(1), 80);
            spawn(async move {
                // Take the request and drop it without responding.
                let incoming = rx.recv().await.unwrap();
                drop(incoming);
            });
            let err = st
                .request(NodeId(0), NodeId(1), 80, Request::get("/"))
                .await
                .unwrap_err();
            assert_eq!(err, ClusterError::ConnectionReset);
        });
    }

    #[test]
    fn large_payload_charges_wire_time() {
        let sim = Sim::new();
        sim.block_on(async {
            let st = stack(2);
            spawn_echo(&st, NodeId(1), 8080);
            let body = crate::bulk::zeroed_bytes(100_000_000);
            st.request(NodeId(0), NodeId(1), 8080, Request::post("/", body))
                .await
                .unwrap();
            // ~1s request + ~1s doubled response + 2 × 1ms latency.
            assert!(now() >= SimTime::ZERO + secs(2.0), "t = {}", now());
        });
    }

    #[test]
    fn unlisten_then_refused() {
        let sim = Sim::new();
        sim.block_on(async {
            let st = stack(1);
            let _rx = st.listen(NodeId(0), 80);
            assert!(st.is_bound(NodeId(0), 80));
            assert!(st.unlisten(NodeId(0), 80));
            assert!(!st.unlisten(NodeId(0), 80));
            let err = st
                .request(NodeId(0), NodeId(0), 80, Request::get("/"))
                .await
                .unwrap_err();
            assert!(matches!(err, ClusterError::ConnectionRefused { .. }));
        });
    }
}
