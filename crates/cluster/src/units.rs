//! Byte-size and rate helpers.

/// Bytes, as a plain u64 with readable constructors.
pub type Bytes64 = u64;

/// Kibibytes → bytes.
pub const fn kib(n: u64) -> Bytes64 {
    n * 1024
}

/// Mebibytes → bytes.
pub const fn mib(n: u64) -> Bytes64 {
    n * 1024 * 1024
}

/// Gibibytes → bytes.
pub const fn gib(n: u64) -> Bytes64 {
    n * 1024 * 1024 * 1024
}

/// A transfer rate in bytes per second.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug)]
pub struct Rate(pub f64);

impl Rate {
    /// Megabytes (decimal) per second.
    pub fn mb_per_s(v: f64) -> Rate {
        Rate(v * 1e6)
    }

    /// Gigabits per second (network convention).
    pub fn gbit_per_s(v: f64) -> Rate {
        Rate(v * 1e9 / 8.0)
    }

    /// Seconds needed to move `bytes` at this rate.
    pub fn time_for(self, bytes: Bytes64) -> f64 {
        if self.0 <= 0.0 {
            return 0.0;
        }
        bytes as f64 / self.0
    }
}

/// Render a byte count human-readably (reporting only).
pub fn human_bytes(b: Bytes64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b}B")
    } else {
        format!("{v:.1}{}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_constructors() {
        assert_eq!(kib(2), 2048);
        assert_eq!(mib(1), 1_048_576);
        assert_eq!(gib(1), 1_073_741_824);
    }

    #[test]
    fn rate_times() {
        let r = Rate::mb_per_s(100.0);
        assert!((r.time_for(100_000_000) - 1.0).abs() < 1e-9);
        let g = Rate::gbit_per_s(10.0);
        assert!((g.time_for(1_250_000_000) - 1.0).abs() < 1e-9);
        assert_eq!(Rate(0.0).time_for(100), 0.0);
    }

    #[test]
    fn human_rendering() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(2048), "2.0KiB");
        assert_eq!(human_bytes(mib(3)), "3.0MiB");
    }
}
