//! Disk I/O model: a bandwidth-limited channel with per-operation latency.
//!
//! All reads/writes on one disk serialize through a FIFO channel resource
//! (one outstanding operation at a time, as with a single NVMe queue pair in
//! the simulated regime); time charged is `latency + size / bandwidth`.

use swf_simcore::{secs, Resource, SimDuration};

use crate::units::Rate;

/// A node-local disk.
#[derive(Clone)]
pub struct Disk {
    channel: Resource,
    bandwidth: Rate,
    latency: SimDuration,
}

impl Disk {
    /// Disk with the given sequential bandwidth and per-op latency.
    pub fn new(name: impl Into<String>, bandwidth: Rate, latency: SimDuration) -> Self {
        Disk {
            channel: Resource::new(name.into(), 1),
            bandwidth,
            latency,
        }
    }

    /// A typical datacenter SSD: 500 MB/s, 100 µs per op.
    pub fn standard_ssd(name: impl Into<String>) -> Self {
        Disk::new(name, Rate::mb_per_s(500.0), SimDuration::from_micros(100))
    }

    /// Charge virtual time for reading `bytes`.
    pub async fn read(&self, bytes: u64) -> SimDuration {
        self.io(bytes).await
    }

    /// Charge virtual time for writing `bytes`.
    pub async fn write(&self, bytes: u64) -> SimDuration {
        self.io(bytes).await
    }

    async fn io(&self, bytes: u64) -> SimDuration {
        let service = self.latency + secs(self.bandwidth.time_for(bytes));
        let wait = self.channel.serve(service).await;
        wait + service
    }

    /// Completed I/O operations.
    pub fn ops(&self) -> u64 {
        self.channel.served()
    }

    /// Fraction of time busy.
    pub fn utilization(&self) -> f64 {
        self.channel.utilization(swf_simcore::now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_simcore::{join_all, now, spawn, Sim, SimTime};

    #[test]
    fn read_time_scales_with_size() {
        let sim = Sim::new();
        sim.block_on(async {
            let d = Disk::new("d", Rate::mb_per_s(100.0), SimDuration::ZERO);
            let t = d.read(100_000_000).await;
            assert_eq!(t, secs(1.0));
            assert_eq!(now(), SimTime::ZERO + secs(1.0));
        });
    }

    #[test]
    fn latency_applies_per_op() {
        let sim = Sim::new();
        sim.block_on(async {
            let d = Disk::new("d", Rate::mb_per_s(1e12), SimDuration::from_millis(5));
            d.read(10).await;
            d.write(10).await;
            assert_eq!(now(), SimTime::ZERO + SimDuration::from_millis(10));
        });
    }

    #[test]
    fn concurrent_ops_serialize() {
        let sim = Sim::new();
        sim.block_on(async {
            let d = Disk::new("d", Rate::mb_per_s(100.0), SimDuration::ZERO);
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let d = d.clone();
                    spawn(async move { d.read(100_000_000).await })
                })
                .collect();
            let times = join_all(handles).await;
            // Each op takes 1s of service; total observed latencies are 1,2,3.
            assert_eq!(times, vec![secs(1.0), secs(2.0), secs(3.0)]);
            assert_eq!(d.ops(), 3);
        });
    }
}
