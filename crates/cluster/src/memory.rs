//! Node memory accounting.
//!
//! Containers and native tasks reserve memory from a per-node pool; the pool
//! rejects oversubscription (a scheduling feasibility constraint rather than
//! a performance model — the paper's tasks are small relative to 32 GB).

use std::cell::RefCell;
use std::rc::Rc;

use crate::error::ClusterError;

struct State {
    capacity: u64,
    used: u64,
    peak: u64,
}

/// A per-node memory pool.
#[derive(Clone)]
pub struct MemoryPool {
    node: Rc<str>,
    state: Rc<RefCell<State>>,
}

/// An owned memory reservation; freed on drop.
pub struct MemoryLease {
    state: Rc<RefCell<State>>,
    bytes: u64,
}

impl std::fmt::Debug for MemoryLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryLease")
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl MemoryPool {
    /// Pool with `capacity` bytes on node `node`.
    pub fn new(node: impl Into<String>, capacity: u64) -> Self {
        MemoryPool {
            node: Rc::from(node.into()),
            state: Rc::new(RefCell::new(State {
                capacity,
                used: 0,
                peak: 0,
            })),
        }
    }

    /// Reserve `bytes`, failing if the pool cannot fit them.
    pub fn reserve(&self, bytes: u64) -> Result<MemoryLease, ClusterError> {
        let mut s = self.state.borrow_mut();
        let available = s.capacity - s.used;
        if bytes > available {
            return Err(ClusterError::OutOfMemory {
                node: self.node.to_string(),
                requested: bytes,
                available,
            });
        }
        s.used += bytes;
        s.peak = s.peak.max(s.used);
        Ok(MemoryLease {
            state: Rc::clone(&self.state),
            bytes,
        })
    }

    /// Bytes currently free.
    pub fn available(&self) -> u64 {
        let s = self.state.borrow();
        s.capacity - s.used
    }

    /// Total bytes.
    pub fn capacity(&self) -> u64 {
        self.state.borrow().capacity
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.state.borrow().used
    }

    /// Peak bytes ever reserved.
    pub fn peak(&self) -> u64 {
        self.state.borrow().peak
    }
}

impl MemoryLease {
    /// Size of this reservation.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for MemoryLease {
    fn drop(&mut self) {
        self.state.borrow_mut().used -= self.bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let pool = MemoryPool::new("n1", 1000);
        let lease = pool.reserve(400).unwrap();
        assert_eq!(pool.used(), 400);
        assert_eq!(pool.available(), 600);
        assert_eq!(lease.bytes(), 400);
        drop(lease);
        assert_eq!(pool.used(), 0);
        assert_eq!(pool.peak(), 400);
    }

    #[test]
    fn oversubscription_rejected() {
        let pool = MemoryPool::new("n1", 1000);
        let _a = pool.reserve(800).unwrap();
        let err = pool.reserve(300).unwrap_err();
        assert_eq!(
            err,
            ClusterError::OutOfMemory {
                node: "n1".into(),
                requested: 300,
                available: 200
            }
        );
    }

    #[test]
    fn exact_fit_is_allowed() {
        let pool = MemoryPool::new("n1", 100);
        let _l = pool.reserve(100).unwrap();
        assert_eq!(pool.available(), 0);
        assert!(pool.reserve(1).is_err());
    }

    #[test]
    fn zero_byte_reservation_is_free() {
        let pool = MemoryPool::new("n1", 10);
        let _l = pool.reserve(0).unwrap();
        assert_eq!(pool.used(), 0);
    }
}
