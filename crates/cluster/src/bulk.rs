//! Shared zero-filled bulk payloads.
//!
//! Experiments stage large synthetic blobs — container-image tarballs,
//! benchmark transfer bodies — whose *size* matters to the simulation but
//! whose content is all zeros. Building each one as `Bytes::from(vec![0u8;
//! len])` allocates and copies the whole payload every time (the 450 MiB
//! image tarball is re-staged on every testbed boot, which used to dominate
//! the quick suite's wall clock in page-fault churn). Instead, every caller
//! gets an O(1) window into one thread-local zero pool that grows
//! geometrically to the largest size ever requested.

use std::cell::RefCell;

use bytes::Bytes;

thread_local! {
    static ZERO_POOL: RefCell<Bytes> = RefCell::new(Bytes::new());
}

/// A zero-filled buffer of `len` bytes, sharing one thread-local backing
/// allocation across all callers. Byte-for-byte identical to
/// `Bytes::from(vec![0u8; len])`, but repeated requests cost a refcount
/// bump and a slice instead of a fresh allocation-and-copy.
pub fn zeroed_bytes(len: usize) -> Bytes {
    ZERO_POOL.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < len {
            // Geometric growth amortizes mixed-size request sequences; the
            // common case (one constant tarball size) allocates exactly once.
            let cap = len.max(pool.len().saturating_mul(2));
            *pool = Bytes::from(vec![0u8; cap]);
        }
        pool.slice(..len)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_bytes_match_naive_allocation() {
        let b = zeroed_bytes(1024);
        assert_eq!(b.len(), 1024);
        assert_eq!(b, Bytes::from(vec![0u8; 1024]));
    }

    #[test]
    fn repeated_requests_share_one_backing_buffer() {
        let a = zeroed_bytes(100);
        let b = zeroed_bytes(100);
        // Same backing storage: both windows start at the same address.
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
    }

    #[test]
    fn pool_grows_to_largest_request() {
        let small = zeroed_bytes(8);
        let big = zeroed_bytes(4096);
        assert_eq!(small.len(), 8);
        assert_eq!(big.len(), 4096);
        assert!(big.iter().all(|&x| x == 0));
        // After growth, smaller requests ride the bigger buffer.
        let again = zeroed_bytes(8);
        assert_eq!(again.as_ref().as_ptr(), big.as_ref().as_ptr());
    }

    #[test]
    fn zero_length_request_is_empty() {
        assert!(zeroed_bytes(0).is_empty());
    }
}
