//! # swf-cluster
//!
//! Cluster hardware substrate for the *Serverless Computing for Dynamic HPC
//! Workflows* reproduction: compute nodes (cores, memory, disk), a network
//! fabric with per-NIC contention, node-local and shared filesystems holding
//! real byte payloads, and an HTTP layer used for serverless invocations.
//!
//! All timing is virtual (see `swf-simcore`); all data is real (`Bytes`), so
//! workflow tasks higher in the stack perform genuine matrix computations
//! while infrastructure costs are modelled.

#![warn(missing_docs)]

pub mod bulk;
pub mod cluster;
pub mod disk;
pub mod error;
pub mod fs;
pub mod http;
pub mod memory;
pub mod network;
pub mod node;
pub mod units;

pub use bulk::zeroed_bytes;
pub use cluster::{Cluster, ClusterConfig};
pub use disk::Disk;
pub use error::ClusterError;
pub use fs::SimFs;
pub use http::{HttpStack, Incoming, Method, Request, Response};
pub use memory::{MemoryLease, MemoryPool};
pub use network::{LinkQuality, Network, NetworkConfig, NodeId};
pub use node::{Node, NodeSpec};
pub use units::{gib, human_bytes, kib, mib, Rate};
