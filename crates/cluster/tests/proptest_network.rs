//! Property tests for the cluster fabric and filesystems: transfer-time
//! monotonicity, byte accounting, and shared-fs roundtrip integrity.

use bytes::Bytes;
use proptest::prelude::*;

use swf_cluster::{Cluster, ClusterConfig, Network, NetworkConfig, NodeId, Rate};
use swf_simcore::{Sim, SimDuration};

fn net(nodes: usize) -> Network {
    Network::new(
        NetworkConfig {
            bandwidth: Rate::mb_per_s(100.0),
            latency: SimDuration::from_millis(1),
            loopback_cost: SimDuration::from_micros(10),
        },
        nodes,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Transfer time is monotone in payload size on an idle fabric.
    #[test]
    fn transfer_time_monotone_in_size(a in 0u64..10_000_000, b in 0u64..10_000_000) {
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        let sim = Sim::new();
        sim.block_on(async move {
            let n = net(2);
            let t_small = n.transfer(NodeId(0), NodeId(1), small).await.unwrap();
            let t_large = n.transfer(NodeId(0), NodeId(1), large).await.unwrap();
            prop_assert!(t_large >= t_small, "{t_large} < {t_small}");
            Ok(())
        })?;
    }

    /// The fabric accounts every byte of every transfer exactly once.
    #[test]
    fn bytes_moved_accounting(
        transfers in proptest::collection::vec((0usize..3, 0usize..3, 0u64..1_000_000), 1..15),
    ) {
        let sim = Sim::new();
        sim.block_on(async move {
            let n = net(3);
            let mut total = 0u64;
            for (from, to, bytes) in transfers.iter().copied() {
                n.transfer(NodeId(from), NodeId(to), bytes).await.unwrap();
                total += bytes;
            }
            prop_assert_eq!(n.bytes_moved(), total);
            prop_assert_eq!(n.transfers(), transfers.len() as u64);
            Ok(())
        })?;
    }

    /// Loopback is always at least as fast as a remote hop of equal size.
    #[test]
    fn loopback_never_slower(bytes in 0u64..50_000_000) {
        let sim = Sim::new();
        sim.block_on(async move {
            let n = net(2);
            let local = n.transfer(NodeId(0), NodeId(0), bytes).await.unwrap();
            let remote = n.transfer(NodeId(0), NodeId(1), bytes).await.unwrap();
            prop_assert!(local <= remote, "loopback {local} > remote {remote}");
            Ok(())
        })?;
    }

    /// Shared-fs writes from any worker roundtrip byte-identically, and
    /// file metadata stays consistent under arbitrary write sequences.
    #[test]
    fn shared_fs_roundtrips(
        files in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..2048), 1usize..4),
            1..10,
        ),
    ) {
        let sim = Sim::new();
        sim.block_on(async move {
            let cluster = Cluster::new(&ClusterConfig::default());
            let mut expected_total = 0u64;
            for (i, (content, node)) in files.iter().enumerate() {
                let name = format!("f{i}");
                expected_total += content.len() as u64;
                cluster
                    .shared_write_from(NodeId(*node), &name, Bytes::from(content.clone()))
                    .await
                    .unwrap();
            }
            for (i, (content, node)) in files.iter().enumerate() {
                let name = format!("f{i}");
                let read_back = cluster
                    .shared_read_from(NodeId(*node), &name)
                    .await
                    .unwrap();
                prop_assert_eq!(&read_back[..], &content[..]);
                prop_assert_eq!(cluster.shared_fs().size(&name), Some(content.len() as u64));
            }
            prop_assert_eq!(cluster.shared_fs().file_count(), files.len());
            prop_assert_eq!(cluster.shared_fs().total_bytes(), expected_total);
            Ok(())
        })?;
    }
}
