//! Pool assembly: schedd + one startd per worker + negotiator.

use swf_cluster::Cluster;
use swf_simcore::spawn;

use crate::error::CondorError;
use crate::job::{JobId, JobResult, JobSpec, JobStatus};
use crate::negotiator::{Negotiator, NegotiatorConfig};
use crate::schedd::Schedd;
use crate::startd::{Startd, StartdConfig};

/// Pool-wide configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct CondorConfig {
    /// Negotiator parameters.
    pub negotiator: NegotiatorConfig,
    /// Startd parameters.
    pub startd: StartdConfig,
}

/// A running HTCondor-style pool.
#[derive(Clone)]
pub struct Condor {
    schedd: Schedd,
    startds: Vec<Startd>,
}

impl Condor {
    /// Boot the pool: schedd on the submit node, a startd per worker node,
    /// negotiator loop spawned.
    pub fn start(cluster: &Cluster, config: CondorConfig) -> Condor {
        let schedd = Schedd::new();
        let startds: Vec<Startd> = cluster
            .worker_nodes()
            .iter()
            .map(|n| Startd::new(n.clone(), cluster.clone(), config.startd))
            .collect();
        spawn(Negotiator::new(schedd.clone(), startds.clone(), config.negotiator).run());
        Condor { schedd, startds }
    }

    /// Submit a job.
    pub fn submit(&self, spec: JobSpec) -> JobId {
        self.schedd.submit(spec)
    }

    /// Job status.
    pub fn status(&self, id: JobId) -> Result<JobStatus, CondorError> {
        self.schedd.status(id)
    }

    /// Await completion.
    pub async fn wait(&self, id: JobId) -> Result<JobResult, CondorError> {
        self.schedd.wait(id).await
    }

    /// Submit then await.
    pub async fn submit_and_wait(&self, spec: JobSpec) -> Result<JobResult, CondorError> {
        let id = self.submit(spec);
        self.wait(id).await
    }

    /// The schedd (queue inspection).
    pub fn schedd(&self) -> &Schedd {
        &self.schedd
    }

    /// The startd pool.
    pub fn startds(&self) -> &[Startd] {
        &self.startds
    }

    /// Total slots across the pool.
    pub fn total_slots(&self) -> usize {
        self.startds.iter().map(|s| s.total_slots()).sum()
    }

    /// Free slots across the pool.
    pub fn free_slots(&self) -> usize {
        self.startds.iter().map(|s| s.free_slots()).sum()
    }

    /// Drain a worker: running jobs complete, no new matches land there
    /// (`condor_drain`). Returns false if the node has no startd.
    pub fn drain_node(&self, node: swf_cluster::NodeId) -> bool {
        match self.startds.iter().find(|s| s.node().id() == node) {
            Some(s) => {
                s.drain();
                true
            }
            None => false,
        }
    }

    /// Resume matching on a drained worker.
    pub fn undrain_node(&self, node: swf_cluster::NodeId) -> bool {
        match self.startds.iter().find(|s| s.node().id() == node) {
            Some(s) => {
                s.undrain();
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobContext;
    use bytes::Bytes;
    use swf_cluster::ClusterConfig;
    use swf_simcore::{secs, Sim, SimDuration};

    #[test]
    fn pool_boots_and_runs_a_job() {
        let sim = Sim::new();
        sim.block_on(async {
            let cluster = Cluster::new(&ClusterConfig::default());
            let condor = Condor::start(
                &cluster,
                CondorConfig {
                    negotiator: NegotiatorConfig {
                        cycle_interval: secs(2.0),
                        match_latency: SimDuration::ZERO,
                        ..NegotiatorConfig::default()
                    },
                    ..CondorConfig::default()
                },
            );
            assert_eq!(condor.total_slots(), 24);
            let r = condor
                .submit_and_wait(JobSpec::new(|ctx: JobContext| {
                    Box::pin(async move {
                        ctx.compute(secs(0.458)).await;
                        Ok(Bytes::from_static(b"matmul"))
                    })
                }))
                .await
                .unwrap();
            assert!(r.success);
            assert_eq!(&r.output[..], b"matmul");
            assert_eq!(condor.free_slots(), 24);
            assert_eq!(condor.schedd().completed_total(), 1);
        });
    }
}
