//! Pool assembly: schedd + one startd per worker + negotiator.

use swf_cluster::Cluster;
use swf_simcore::spawn;

use crate::error::CondorError;
use crate::job::{JobId, JobResult, JobSpec, JobStatus};
use crate::negotiator::{Negotiator, NegotiatorConfig};
use crate::schedd::Schedd;
use crate::startd::{Startd, StartdConfig};

/// Pool-wide configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct CondorConfig {
    /// Negotiator parameters.
    pub negotiator: NegotiatorConfig,
    /// Startd parameters.
    pub startd: StartdConfig,
}

/// A running HTCondor-style pool.
#[derive(Clone)]
pub struct Condor {
    schedd: Schedd,
    startds: Vec<Startd>,
}

impl Condor {
    /// Boot the pool: schedd on the submit node, a startd per worker node,
    /// negotiator loop spawned.
    pub fn start(cluster: &Cluster, config: CondorConfig) -> Condor {
        let schedd = Schedd::new();
        let startds: Vec<Startd> = cluster
            .worker_nodes()
            .iter()
            .map(|n| Startd::new(n.clone(), cluster.clone(), config.startd))
            .collect();
        spawn(Negotiator::new(schedd.clone(), startds.clone(), config.negotiator).run());
        Condor { schedd, startds }
    }

    /// Submit a job.
    pub fn submit(&self, spec: JobSpec) -> JobId {
        self.schedd.submit(spec)
    }

    /// Job status.
    pub fn status(&self, id: JobId) -> Result<JobStatus, CondorError> {
        self.schedd.status(id)
    }

    /// Await completion.
    pub async fn wait(&self, id: JobId) -> Result<JobResult, CondorError> {
        self.schedd.wait(id).await
    }

    /// Submit then await.
    pub async fn submit_and_wait(&self, spec: JobSpec) -> Result<JobResult, CondorError> {
        let id = self.submit(spec);
        self.wait(id).await
    }

    /// The schedd (queue inspection).
    pub fn schedd(&self) -> &Schedd {
        &self.schedd
    }

    /// The startd pool.
    pub fn startds(&self) -> &[Startd] {
        &self.startds
    }

    /// Total slots across the pool.
    pub fn total_slots(&self) -> usize {
        self.startds.iter().map(|s| s.total_slots()).sum()
    }

    /// Free slots across the pool.
    pub fn free_slots(&self) -> usize {
        self.startds.iter().map(|s| s.free_slots()).sum()
    }

    /// Drain a worker: running jobs complete, no new matches land there
    /// (`condor_drain`). Returns false if the node has no startd.
    pub fn drain_node(&self, node: swf_cluster::NodeId) -> bool {
        match self.startds.iter().find(|s| s.node().id() == node) {
            Some(s) => {
                s.drain();
                true
            }
            None => false,
        }
    }

    /// Resume matching on a drained worker.
    pub fn undrain_node(&self, node: swf_cluster::NodeId) -> bool {
        match self.startds.iter().find(|s| s.node().id() == node) {
            Some(s) => {
                s.undrain();
                true
            }
            None => false,
        }
    }

    /// Crash a worker (fault injection): the negotiator stops matching
    /// there and every job Running on it is reclaimed to Idle under a new
    /// claim epoch, so the next cycle re-matches the stranded work onto
    /// healthy nodes. Late reports from the lost claims are discarded.
    /// Returns false when the node has no startd.
    pub fn fail_node(&self, node: swf_cluster::NodeId) -> bool {
        match self.startds.iter().find(|s| s.node().id() == node) {
            Some(s) => {
                s.fail();
                let requeued = self.schedd.requeue_running_on(node);
                let obs = swf_obs::current();
                obs.counter_add("condor.node_failures", 1);
                if !requeued.is_empty() {
                    obs.counter_add("condor.stranded_jobs", requeued.len() as u64);
                }
                true
            }
            None => false,
        }
    }

    /// Bring a crashed worker back: the negotiator may match there again.
    pub fn recover_node(&self, node: swf_cluster::NodeId) -> bool {
        match self.startds.iter().find(|s| s.node().id() == node) {
            Some(s) => {
                s.recover();
                true
            }
            None => false,
        }
    }

    /// Is the worker currently crashed?
    pub fn node_is_failed(&self, node: swf_cluster::NodeId) -> bool {
        self.startds
            .iter()
            .find(|s| s.node().id() == node)
            .map(|s| s.is_failed())
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobContext;
    use bytes::Bytes;
    use swf_cluster::ClusterConfig;
    use swf_simcore::{secs, Sim, SimDuration};

    fn crash_rig() -> (Cluster, Condor) {
        let cluster = Cluster::new(&ClusterConfig::default());
        let condor = Condor::start(
            &cluster,
            CondorConfig {
                negotiator: NegotiatorConfig {
                    cycle_interval: secs(1.0),
                    match_latency: SimDuration::ZERO,
                    ..NegotiatorConfig::default()
                },
                ..CondorConfig::default()
            },
        );
        (cluster, condor)
    }

    async fn stranded_job_scenario() -> (swf_cluster::NodeId, crate::job::JobResult) {
        let (_cluster, condor) = crash_rig();
        let id = condor.submit(JobSpec::new(|ctx: JobContext| {
            Box::pin(async move {
                ctx.compute(secs(10.0)).await;
                Ok(Bytes::from_static(b"long"))
            })
        }));
        // Matched at the t=1 cycle; crash the node mid-execution.
        swf_simcore::sleep(secs(2.0)).await;
        let victim = match condor.status(id).unwrap() {
            JobStatus::Running(node) => node,
            other => panic!("expected Running, got {other:?}"),
        };
        assert!(condor.fail_node(victim));
        assert!(condor.node_is_failed(victim));
        // Reclaimed immediately: back to Idle for the next cycle.
        assert_eq!(condor.status(id).unwrap(), JobStatus::Idle);
        let r = condor.wait(id).await.unwrap();
        assert!(condor.recover_node(victim));
        assert!(!condor.node_is_failed(victim));
        (victim, r)
    }

    #[test]
    fn stranded_job_is_rematched_after_node_loss_deterministically() {
        let run = || {
            let sim = Sim::new();
            sim.block_on(async { stranded_job_scenario().await })
        };
        let (victim_a, ra) = run();
        let (victim_b, rb) = run();
        assert!(ra.success);
        assert_ne!(ra.node, victim_a, "re-match must avoid the crashed node");
        // The stale claim (crashed node) never shadows the re-match.
        assert_eq!(&ra.output[..], b"long");
        // Deterministic retry timing: both runs agree bitwise.
        assert_eq!(victim_a, victim_b);
        assert_eq!(ra.node, rb.node);
        assert_eq!(
            ra.finished.as_secs_f64().to_bits(),
            rb.finished.as_secs_f64().to_bits()
        );
        // Re-matched at the first cycle after the crash (t=2), so the job
        // finishes at 2 s + 0.8 s start overhead + a fresh 10 s of compute.
        assert_eq!(ra.finished.as_secs_f64().to_bits(), 12.8f64.to_bits());
    }

    #[test]
    fn failing_an_unknown_node_is_a_no_op() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_cluster, condor) = crash_rig();
            assert!(!condor.fail_node(swf_cluster::NodeId(99)));
            assert!(!condor.recover_node(swf_cluster::NodeId(99)));
            assert!(!condor.node_is_failed(swf_cluster::NodeId(99)));
        });
    }

    #[test]
    fn pool_boots_and_runs_a_job() {
        let sim = Sim::new();
        sim.block_on(async {
            let cluster = Cluster::new(&ClusterConfig::default());
            let condor = Condor::start(
                &cluster,
                CondorConfig {
                    negotiator: NegotiatorConfig {
                        cycle_interval: secs(2.0),
                        match_latency: SimDuration::ZERO,
                        ..NegotiatorConfig::default()
                    },
                    ..CondorConfig::default()
                },
            );
            assert_eq!(condor.total_slots(), 24);
            let r = condor
                .submit_and_wait(JobSpec::new(|ctx: JobContext| {
                    Box::pin(async move {
                        ctx.compute(secs(0.458)).await;
                        Ok(Bytes::from_static(b"matmul"))
                    })
                }))
                .await
                .unwrap();
            assert!(r.success);
            assert_eq!(&r.output[..], b"matmul");
            assert_eq!(condor.free_slots(), 24);
            assert_eq!(condor.schedd().completed_total(), 1);
        });
    }
}
