//! Jobs: what the schedd queues and startds execute.

use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

use bytes::Bytes;

use swf_cluster::{Cluster, Node, NodeId};
use swf_simcore::{SimDuration, SimTime};

use crate::classad::{ClassAd, Expr};

/// Job identifier (cluster id in HTCondor terms).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Boxed local future, the return of a job program.
pub type LocalBoxFuture<T> = Pin<Box<dyn Future<Output = T>>>;

/// The executable of a job: an async program run on the claimed worker.
pub type JobFn = Rc<dyn Fn(JobContext) -> LocalBoxFuture<Result<Bytes, String>>>;

/// Everything a running job can touch on its worker.
#[derive(Clone)]
pub struct JobContext {
    /// The job's id.
    pub job: JobId,
    /// Node the job was matched to.
    pub node: Node,
    /// The whole cluster (network, shared fs, HTTP).
    pub cluster: Cluster,
    /// Node-local sandbox path prefix (`sandbox/<job>/`).
    pub sandbox: String,
    /// Tracing context of the startd's execute span — job programs parent
    /// their own spans (and outgoing HTTP headers) under it.
    pub span: swf_obs::SpanContext,
}

impl JobContext {
    /// Charge `d` of single-core compute on the executing node. The core
    /// was claimed by the startd slot, so this is a plain virtual sleep.
    pub async fn compute(&self, d: SimDuration) {
        swf_simcore::sleep(d).await;
    }

    /// Sandbox-relative path of a transferred input/output file.
    pub fn sandbox_path(&self, file: &str) -> String {
        format!("{}{file}", self.sandbox)
    }

    /// The node this job runs on.
    pub fn node_id(&self) -> NodeId {
        self.node.id()
    }
}

/// A submitted job description.
#[derive(Clone)]
pub struct JobSpec {
    /// Program to run on the worker.
    pub program: JobFn,
    /// Machine constraints.
    pub requirements: Expr,
    /// Cores requested (slot granularity is one core; >1 claims several).
    pub request_cpus: u32,
    /// Memory requested (bytes) — advisory in the ad.
    pub request_memory: u64,
    /// Files staged submit-node → worker sandbox before the program runs.
    pub input_files: Vec<String>,
    /// Files staged worker sandbox → submit node after success.
    pub output_files: Vec<String>,
    /// Higher runs first within a negotiation cycle.
    pub priority: i32,
    /// Extra job-ad attributes.
    pub ad: ClassAd,
    /// Tracing parent for every span of this job's lifecycle (queue,
    /// negotiate, activation, transfer, execute). DAGMan sets it to the
    /// workflow node's span; `NONE` leaves the job spans as roots.
    pub span: swf_obs::SpanContext,
}

impl JobSpec {
    /// Job with a program and defaults.
    pub fn new(
        program: impl Fn(JobContext) -> LocalBoxFuture<Result<Bytes, String>> + 'static,
    ) -> Self {
        JobSpec {
            program: Rc::new(program),
            requirements: Expr::True,
            request_cpus: 1,
            request_memory: swf_cluster::mib(512),
            input_files: Vec::new(),
            output_files: Vec::new(),
            priority: 0,
            ad: ClassAd::new(),
            span: swf_obs::SpanContext::NONE,
        }
    }

    /// Set the tracing parent (builder style).
    pub fn with_span(mut self, span: swf_obs::SpanContext) -> Self {
        self.span = span;
        self
    }

    /// Set requirements (builder style).
    pub fn with_requirements(mut self, req: Expr) -> Self {
        self.requirements = req;
        self
    }

    /// Set input files (builder style).
    pub fn with_inputs(mut self, files: Vec<String>) -> Self {
        self.input_files = files;
        self
    }

    /// Set output files (builder style).
    pub fn with_outputs(mut self, files: Vec<String>) -> Self {
        self.output_files = files;
        self
    }

    /// Set priority (builder style).
    pub fn with_priority(mut self, p: i32) -> Self {
        self.priority = p;
        self
    }

    /// The job's ClassAd including request attributes.
    pub fn job_ad(&self) -> ClassAd {
        let mut ad = self.ad.clone();
        ad.insert("RequestCpus", i64::from(self.request_cpus));
        ad.insert("RequestMemory", self.request_memory as i64);
        ad
    }
}

/// Observable job state.
#[derive(Clone, Debug, PartialEq)]
pub enum JobStatus {
    /// Queued, waiting for a match.
    Idle,
    /// Matched and executing on a node.
    Running(NodeId),
    /// Finished.
    Completed(JobResult),
    /// Removed before completion.
    Removed,
}

/// Result of a completed job.
#[derive(Clone, Debug, PartialEq)]
pub struct JobResult {
    /// Whether the program returned Ok.
    pub success: bool,
    /// Program output (or error text).
    pub output: Bytes,
    /// Node that ran the job.
    pub node: NodeId,
    /// When execution started (after match + transfer).
    pub started: SimTime,
    /// When the job finished.
    pub finished: SimTime,
}

impl JobResult {
    /// Wall-clock from start of execution to completion.
    pub fn execution_time(&self) -> SimDuration {
        self.finished - self.started
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_ad_carries_requests() {
        let spec = JobSpec::new(|_ctx| Box::pin(async { Ok(Bytes::new()) }))
            .with_priority(5)
            .with_inputs(vec!["a.mat".into()]);
        let ad = spec.job_ad();
        assert_eq!(ad.get_int("RequestCpus"), Some(1));
        assert!(ad.get_int("RequestMemory").unwrap() > 0);
        assert_eq!(spec.priority, 5);
        assert_eq!(spec.input_files, vec!["a.mat"]);
    }

    #[test]
    fn result_execution_time() {
        let r = JobResult {
            success: true,
            output: Bytes::new(),
            node: NodeId(1),
            started: SimTime::from_nanos(1_000_000_000),
            finished: SimTime::from_nanos(3_500_000_000),
        };
        assert_eq!(r.execution_time(), SimDuration::from_millis(2500));
    }
}
