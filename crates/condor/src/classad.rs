//! ClassAd-lite: typed attribute maps plus a small requirement-expression
//! tree, the matchmaking language of HTCondor reduced to what the paper's
//! workloads exercise (resource comparisons and boolean combinators).

use std::collections::BTreeMap;
use std::fmt;

/// An attribute value.
#[derive(Clone, Debug, PartialEq)]
pub enum AdValue {
    /// Integer attribute (cpus, memory MB, ...).
    Int(i64),
    /// Floating attribute.
    Float(f64),
    /// String attribute (machine name, arch, ...).
    Str(String),
    /// Boolean attribute.
    Bool(bool),
}

impl fmt::Display for AdValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdValue::Int(v) => write!(f, "{v}"),
            AdValue::Float(v) => write!(f, "{v}"),
            AdValue::Str(v) => write!(f, "\"{v}\""),
            AdValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for AdValue {
    fn from(v: i64) -> Self {
        AdValue::Int(v)
    }
}
impl From<f64> for AdValue {
    fn from(v: f64) -> Self {
        AdValue::Float(v)
    }
}
impl From<&str> for AdValue {
    fn from(v: &str) -> Self {
        AdValue::Str(v.to_string())
    }
}
impl From<bool> for AdValue {
    fn from(v: bool) -> Self {
        AdValue::Bool(v)
    }
}

/// An attribute map (one "ad").
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ClassAd {
    attrs: BTreeMap<String, AdValue>,
}

impl ClassAd {
    /// Empty ad.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert an attribute (builder style).
    pub fn set(mut self, key: impl Into<String>, value: impl Into<AdValue>) -> Self {
        self.attrs.insert(key.into(), value.into());
        self
    }

    /// Insert in place.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<AdValue>) {
        self.attrs.insert(key.into(), value.into());
    }

    /// Look up an attribute.
    pub fn get(&self, key: &str) -> Option<&AdValue> {
        self.attrs.get(key)
    }

    /// Integer attribute or None.
    pub fn get_int(&self, key: &str) -> Option<i64> {
        match self.attrs.get(key) {
            Some(AdValue::Int(v)) => Some(*v),
            Some(AdValue::Float(v)) => Some(*v as i64),
            _ => None,
        }
    }

    /// Numeric attribute as f64.
    pub fn get_num(&self, key: &str) -> Option<f64> {
        match self.attrs.get(key) {
            Some(AdValue::Int(v)) => Some(*v as f64),
            Some(AdValue::Float(v)) => Some(*v),
            _ => None,
        }
    }
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Greater-or-equal.
    Ge,
    /// Less-or-equal.
    Le,
    /// Strictly greater.
    Gt,
    /// Strictly less.
    Lt,
}

/// A requirements expression evaluated against `(my, target)` — the job ad
/// and the machine ad, as in HTCondor's `MY.` / `TARGET.` scopes.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Literal truth.
    True,
    /// Attribute of the target (machine) ad.
    Target(String),
    /// Attribute of my (job) ad.
    My(String),
    /// A literal value.
    Lit(AdValue),
    /// Comparison.
    Cmp(Box<Expr>, CmpOp, Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
}

impl Expr {
    /// `TARGET.<attr> >= <value>` — the most common machine constraint.
    pub fn target_ge(attr: impl Into<String>, value: impl Into<AdValue>) -> Expr {
        Expr::Cmp(
            Box::new(Expr::Target(attr.into())),
            CmpOp::Ge,
            Box::new(Expr::Lit(value.into())),
        )
    }

    /// `TARGET.<attr> == <value>`.
    pub fn target_eq(attr: impl Into<String>, value: impl Into<AdValue>) -> Expr {
        Expr::Cmp(
            Box::new(Expr::Target(attr.into())),
            CmpOp::Eq,
            Box::new(Expr::Lit(value.into())),
        )
    }

    /// Conjunction helper.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    fn value(&self, my: &ClassAd, target: &ClassAd) -> Option<AdValue> {
        match self {
            Expr::True => Some(AdValue::Bool(true)),
            Expr::Target(a) => target.get(a).cloned(),
            Expr::My(a) => my.get(a).cloned(),
            Expr::Lit(v) => Some(v.clone()),
            _ => Some(AdValue::Bool(self.eval(my, target))),
        }
    }

    /// Evaluate to a boolean; missing attributes make comparisons false
    /// (HTCondor's `undefined` propagates to not-matching).
    pub fn eval(&self, my: &ClassAd, target: &ClassAd) -> bool {
        match self {
            Expr::True => true,
            Expr::Target(a) => matches!(target.get(a), Some(AdValue::Bool(true))),
            Expr::My(a) => matches!(my.get(a), Some(AdValue::Bool(true))),
            Expr::Lit(v) => matches!(v, AdValue::Bool(true)),
            Expr::Not(e) => !e.eval(my, target),
            Expr::And(a, b) => a.eval(my, target) && b.eval(my, target),
            Expr::Or(a, b) => a.eval(my, target) || b.eval(my, target),
            Expr::Cmp(l, op, r) => {
                let (Some(lv), Some(rv)) = (l.value(my, target), r.value(my, target)) else {
                    return false;
                };
                match (&lv, &rv) {
                    (AdValue::Str(a), AdValue::Str(b)) => match op {
                        CmpOp::Eq => a == b,
                        CmpOp::Ne => a != b,
                        CmpOp::Ge => a >= b,
                        CmpOp::Le => a <= b,
                        CmpOp::Gt => a > b,
                        CmpOp::Lt => a < b,
                    },
                    (AdValue::Bool(a), AdValue::Bool(b)) => match op {
                        CmpOp::Eq => a == b,
                        CmpOp::Ne => a != b,
                        _ => false,
                    },
                    _ => {
                        let (Some(a), Some(b)) = (num(&lv), num(&rv)) else {
                            return false;
                        };
                        match op {
                            CmpOp::Eq => a == b,
                            CmpOp::Ne => a != b,
                            CmpOp::Ge => a >= b,
                            CmpOp::Le => a <= b,
                            CmpOp::Gt => a > b,
                            CmpOp::Lt => a < b,
                        }
                    }
                }
            }
        }
    }
}

fn num(v: &AdValue) -> Option<f64> {
    match v {
        AdValue::Int(i) => Some(*i as f64),
        AdValue::Float(f) => Some(*f),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(cpus: i64, mem: i64) -> ClassAd {
        ClassAd::new()
            .set("Cpus", cpus)
            .set("Memory", mem)
            .set("Arch", "X86_64")
            .set("HasDocker", true)
    }

    #[test]
    fn resource_comparison_matches() {
        let job = ClassAd::new().set("RequestCpus", 2i64);
        let req = Expr::target_ge("Cpus", 2i64).and(Expr::target_ge("Memory", 1024i64));
        assert!(req.eval(&job, &machine(8, 32768)));
        assert!(!req.eval(&job, &machine(1, 32768)));
        assert!(!req.eval(&job, &machine(8, 512)));
    }

    #[test]
    fn string_and_bool_comparisons() {
        let job = ClassAd::new();
        assert!(Expr::target_eq("Arch", "X86_64").eval(&job, &machine(1, 1)));
        assert!(!Expr::target_eq("Arch", "aarch64").eval(&job, &machine(1, 1)));
        assert!(Expr::Target("HasDocker".into()).eval(&job, &machine(1, 1)));
    }

    #[test]
    fn missing_attribute_never_matches() {
        let job = ClassAd::new();
        let req = Expr::target_ge("Gpus", 1i64);
        assert!(!req.eval(&job, &machine(8, 1024)));
        // ...but its negation does (NOT undefined == true here; HTCondor's
        // three-valued logic collapses to boolean in this subset).
        assert!(Expr::Not(Box::new(req)).eval(&job, &machine(8, 1024)));
    }

    #[test]
    fn my_scope_reads_job_ad() {
        let job = ClassAd::new().set("RequestCpus", 4i64);
        let req = Expr::Cmp(
            Box::new(Expr::Target("Cpus".into())),
            CmpOp::Ge,
            Box::new(Expr::My("RequestCpus".into())),
        );
        assert!(req.eval(&job, &machine(8, 1)));
        assert!(!req.eval(&job, &machine(2, 1)));
    }

    #[test]
    fn or_and_not_combinators() {
        let job = ClassAd::new();
        let e = Expr::target_eq("Arch", "aarch64").or(Expr::target_ge("Cpus", 4i64));
        assert!(e.eval(&job, &machine(8, 1)));
        assert!(!e.eval(&job, &machine(2, 1)));
    }

    #[test]
    fn mixed_numeric_types_compare() {
        let job = ClassAd::new();
        let e = Expr::Cmp(
            Box::new(Expr::Target("Memory".into())),
            CmpOp::Gt,
            Box::new(Expr::Lit(AdValue::Float(1000.5))),
        );
        assert!(e.eval(&job, &machine(1, 1001)));
        assert!(!e.eval(&job, &machine(1, 1000)));
    }

    #[test]
    fn classad_accessors() {
        let ad = machine(8, 32768);
        assert_eq!(ad.get_int("Cpus"), Some(8));
        assert_eq!(ad.get_num("Memory"), Some(32768.0));
        assert_eq!(ad.get_int("Arch"), None);
        assert_eq!(format!("{}", ad.get("Arch").unwrap()), "\"X86_64\"");
    }
}
