//! The startd: per-node execution agent with slot management and sandbox
//! file transfer.
//!
//! One slot per core. A matched job claims its requested slots, pays the
//! starter overhead, stages inputs from the submit node into a node-local
//! sandbox, runs its program, stages outputs back, and reports completion
//! to the schedd. The synchronous stage-in/stage-out is what makes the
//! paper's traditional containerized path expensive (container images and
//! matrices both ride this channel).

use swf_cluster::{Cluster, Node};
use swf_simcore::sync::Semaphore;
use swf_simcore::{now, sleep, SimDuration};

use crate::classad::ClassAd;
use crate::error::CondorError;
use crate::job::{JobContext, JobId, JobResult, JobSpec, JobStatus};
use crate::schedd::Schedd;

/// Startd parameters.
#[derive(Clone, Copy, Debug)]
pub struct StartdConfig {
    /// Starter process fork + environment setup per job.
    pub job_start_overhead: SimDuration,
}

impl Default for StartdConfig {
    fn default() -> Self {
        StartdConfig {
            job_start_overhead: SimDuration::from_millis(800),
        }
    }
}

/// Per-node execution agent.
#[derive(Clone)]
pub struct Startd {
    node: Node,
    cluster: Cluster,
    slots: Semaphore,
    config: StartdConfig,
    draining: std::rc::Rc<std::cell::Cell<bool>>,
    failed: std::rc::Rc<std::cell::Cell<bool>>,
}

impl Startd {
    /// Startd with one slot per core of `node`.
    pub fn new(node: Node, cluster: Cluster, config: StartdConfig) -> Self {
        let slots = Semaphore::new(node.cores().capacity());
        Startd {
            node,
            cluster,
            slots,
            config,
            draining: std::rc::Rc::new(std::cell::Cell::new(false)),
            failed: std::rc::Rc::new(std::cell::Cell::new(false)),
        }
    }

    /// Start draining: running jobs finish, but the negotiator stops
    /// matching new jobs here (`condor_drain` semantics).
    pub fn drain(&self) {
        self.draining.set(true);
    }

    /// Resume accepting matches.
    pub fn undrain(&self) {
        self.draining.set(false);
    }

    /// Is the startd draining?
    pub fn is_draining(&self) -> bool {
        self.draining.get()
    }

    /// Crash the node (fault injection): the negotiator stops matching
    /// here and the schedd reclaims its running jobs. Unlike draining,
    /// in-flight work is lost — its eventual status reports carry a stale
    /// claim epoch and are discarded.
    pub fn fail(&self) {
        self.failed.set(true);
    }

    /// Bring a crashed startd back into the pool.
    pub fn recover(&self) {
        self.failed.set(false);
    }

    /// Is the startd crashed?
    pub fn is_failed(&self) -> bool {
        self.failed.get()
    }

    /// The node this startd manages.
    pub fn node(&self) -> &Node {
        &self.node
    }

    /// Slots not currently claimed.
    pub fn free_slots(&self) -> usize {
        self.slots.available()
    }

    /// Total slots.
    pub fn total_slots(&self) -> usize {
        self.slots.capacity()
    }

    /// The machine ClassAd advertised to the negotiator.
    pub fn machine_ad(&self) -> ClassAd {
        ClassAd::new()
            .set("Machine", self.node.name())
            .set("Cpus", self.total_slots() as i64)
            .set("FreeSlots", self.free_slots() as i64)
            .set(
                "Memory",
                (self.node.memory().capacity() / (1024 * 1024)) as i64,
            )
            .set("Arch", "X86_64")
            .set("HasDocker", true)
    }

    /// Execute a matched job to completion, reporting status to `schedd`
    /// under the claim epoch current at entry. Kept for direct callers
    /// (tests, ad-hoc rigs); the negotiator captures the epoch at match
    /// time and calls [`Startd::execute_claim`].
    pub async fn execute(&self, id: JobId, spec: JobSpec, schedd: Schedd) {
        let epoch = schedd.epoch(id).unwrap_or(0);
        self.execute_claim(id, epoch, spec, schedd).await;
    }

    /// Execute a matched job to completion, reporting status to `schedd`.
    /// Called (spawned) by the negotiator after a successful match. All
    /// status writes carry `epoch`: if the schedd reclaims the job (node
    /// loss) while this claim is in flight, the writes are discarded and
    /// the re-matched claim owns the job record.
    pub async fn execute_claim(&self, id: JobId, epoch: u64, spec: JobSpec, schedd: Schedd) {
        let _slots = self
            .slots
            .acquire_many(spec.request_cpus.max(1) as usize)
            .await;
        schedd.set_status_epoch(id, epoch, JobStatus::Running(self.node.id()));
        let started = now();
        let obs = swf_obs::current();
        let component = format!("{}/startd", self.node.name());
        let boot = obs.span(
            spec.span,
            &component,
            format!("job-start:{id}"),
            swf_obs::Category::Activation,
        );
        sleep(self.config.job_start_overhead).await;
        drop(boot);

        let sandbox = format!("sandbox/{id}/");
        let outcome = self.run_in_sandbox(id, &spec, &sandbox).await;

        let (success, output) = match outcome {
            Ok(bytes) => (true, bytes),
            Err(e) => (false, bytes::Bytes::from(e.to_string())),
        };
        let accepted = schedd.set_status_epoch(
            id,
            epoch,
            JobStatus::Completed(JobResult {
                success,
                output,
                node: self.node.id(),
                started,
                finished: now(),
            }),
        );
        if !accepted {
            // The schedd reclaimed the job while this node was lost; the
            // work is wasted but must not shadow the re-matched attempt.
            swf_obs::current().counter_add("condor.stale_completions", 1);
        }
    }

    async fn run_in_sandbox(
        &self,
        id: JobId,
        spec: &JobSpec,
        sandbox: &str,
    ) -> Result<bytes::Bytes, CondorError> {
        let obs = swf_obs::current();
        let component = format!("{}/startd", self.node.name());
        // Stage in: submit node shared fs → node-local sandbox.
        if !spec.input_files.is_empty() {
            let stage = obs.span(
                spec.span,
                &component,
                format!("stage-in:{id}"),
                swf_obs::Category::Transfer,
            );
            for f in &spec.input_files {
                let data = self
                    .cluster
                    .shared_read_from(self.node.id(), f)
                    .await
                    .map_err(|_| CondorError::MissingInput(f.clone()))?;
                self.node.fs().write(format!("{sandbox}{f}"), data).await;
            }
            drop(stage);
        }
        let exec = obs.span(
            spec.span,
            &component,
            format!("execute:{id}"),
            swf_obs::Category::Compute,
        );
        let ctx = JobContext {
            job: id,
            node: self.node.clone(),
            cluster: self.cluster.clone(),
            sandbox: sandbox.to_string(),
            span: exec.ctx(),
        };
        let result = (spec.program)(ctx).await;
        drop(exec);
        let bytes = match result {
            Ok(b) => b,
            Err(e) => {
                self.cleanup_sandbox(sandbox);
                return Err(CondorError::DagNodeFailed {
                    node: id.to_string(),
                    attempts: 1,
                    last_error: e,
                    progress: Box::default(),
                });
            }
        };
        // Stage out: sandbox → submit node shared fs.
        if !spec.output_files.is_empty() {
            let stage = obs.span(
                spec.span,
                &component,
                format!("stage-out:{id}"),
                swf_obs::Category::Transfer,
            );
            for f in &spec.output_files {
                let path = format!("{sandbox}{f}");
                let data = self
                    .node
                    .fs()
                    .read(&path)
                    .await
                    .map_err(|_| CondorError::MissingOutput(f.clone()))?;
                self.cluster
                    .shared_write_from(self.node.id(), f.clone(), data)
                    .await
                    .map_err(|e| CondorError::MissingOutput(format!("{f}: {e}")))?;
            }
            drop(stage);
        }
        self.cleanup_sandbox(sandbox);
        Ok(bytes)
    }

    fn cleanup_sandbox(&self, sandbox: &str) {
        for f in self.node.fs().list() {
            if f.starts_with(sandbox) {
                self.node.fs().remove(&f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use swf_cluster::ClusterConfig;
    use swf_simcore::{secs, Sim};

    fn rig() -> (Cluster, Startd, Schedd) {
        let cluster = Cluster::new(&ClusterConfig::default());
        let node = cluster.worker_nodes()[0].clone();
        let startd = Startd::new(node, cluster.clone(), StartdConfig::default());
        (cluster, startd, Schedd::new())
    }

    #[test]
    fn machine_ad_shape() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_c, startd, _s) = rig();
            let ad = startd.machine_ad();
            assert_eq!(ad.get_int("Cpus"), Some(8));
            assert_eq!(ad.get_int("FreeSlots"), Some(8));
            assert!(ad.get_int("Memory").unwrap() >= 32_000);
        });
    }

    #[test]
    fn execute_stages_inputs_runs_and_stages_outputs() {
        let sim = Sim::new();
        sim.block_on(async {
            let (cluster, startd, schedd) = rig();
            cluster
                .shared_fs()
                .stage("in.mat", Bytes::from(vec![7u8; 1024]));
            let spec = JobSpec::new(|ctx: JobContext| {
                Box::pin(async move {
                    let data = ctx
                        .node
                        .fs()
                        .read(&ctx.sandbox_path("in.mat"))
                        .await
                        .map_err(|e| e.to_string())?;
                    let doubled: Vec<u8> = data.iter().map(|b| b * 2).collect();
                    ctx.node
                        .fs()
                        .write(ctx.sandbox_path("out.mat"), Bytes::from(doubled))
                        .await;
                    ctx.compute(secs(0.5)).await;
                    Ok(Bytes::from_static(b"ok"))
                })
            })
            .with_inputs(vec!["in.mat".into()])
            .with_outputs(vec!["out.mat".into()]);
            let id = schedd.submit(spec.clone());
            startd.execute(id, spec, schedd.clone()).await;
            let r = schedd.wait(id).await.unwrap();
            assert!(r.success);
            // Output landed on the submit node's shared fs.
            let out = cluster.shared_fs().read("out.mat").await.unwrap();
            assert_eq!(out[0], 14);
            // Sandbox cleaned.
            assert_eq!(startd.node().fs().file_count(), 0);
        });
    }

    #[test]
    fn missing_input_fails_job() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_cluster, startd, schedd) = rig();
            let spec = JobSpec::new(|_ctx| Box::pin(async { Ok(Bytes::new()) }))
                .with_inputs(vec!["ghost.mat".into()]);
            let id = schedd.submit(spec.clone());
            startd.execute(id, spec, schedd.clone()).await;
            let r = schedd.wait(id).await.unwrap();
            assert!(!r.success);
            assert!(String::from_utf8_lossy(&r.output).contains("missing input"));
        });
    }

    #[test]
    fn missing_output_fails_job() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_cluster, startd, schedd) = rig();
            let spec = JobSpec::new(|_ctx| Box::pin(async { Ok(Bytes::new()) }))
                .with_outputs(vec!["never-written.mat".into()]);
            let id = schedd.submit(spec.clone());
            startd.execute(id, spec, schedd.clone()).await;
            let r = schedd.wait(id).await.unwrap();
            assert!(!r.success);
            assert!(String::from_utf8_lossy(&r.output).contains("missing output"));
        });
    }

    #[test]
    fn slots_serialize_excess_jobs() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_cluster, startd, schedd) = rig(); // 8 slots
            let mk = || {
                JobSpec::new(|ctx: JobContext| {
                    Box::pin(async move {
                        ctx.compute(secs(1.0)).await;
                        Ok(Bytes::new())
                    })
                })
            };
            let t0 = now();
            let mut ids = Vec::new();
            for _ in 0..9 {
                let spec = mk();
                let id = schedd.submit(spec.clone());
                let startd = startd.clone();
                let schedd = schedd.clone();
                swf_simcore::spawn(async move { startd.execute(id, spec, schedd).await });
                ids.push(id);
            }
            for id in ids {
                schedd.wait(id).await.unwrap();
            }
            let elapsed = (now() - t0).as_secs_f64();
            // 9 jobs on 8 slots: two waves ≈ 2 × (0.8 start + 1.0 compute).
            assert!((3.0..4.2).contains(&elapsed), "elapsed {elapsed}");
        });
    }

    #[test]
    fn job_program_failure_reports_error_output() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_cluster, startd, schedd) = rig();
            let spec = JobSpec::new(|_ctx| Box::pin(async { Err("segfault in task".to_string()) }));
            let id = schedd.submit(spec.clone());
            startd.execute(id, spec, schedd.clone()).await;
            let r = schedd.wait(id).await.unwrap();
            assert!(!r.success);
            assert!(String::from_utf8_lossy(&r.output).contains("segfault"));
        });
    }
}
