//! DAGMan: dependency-driven workflow execution over the schedd.
//!
//! Pegasus plans abstract workflows into DAGMan DAGs; DAGMan submits a node
//! once all its parents completed, polls the queue on a fixed interval
//! (real DAGMan tails the job log every few seconds), retries failed nodes,
//! and throttles concurrently submitted jobs.

use std::collections::BTreeMap;

use swf_simcore::{now, sleep, RetryPolicy, SimDuration, SimTime};

use crate::error::{CondorError, DagProgress};
use crate::job::{JobId, JobResult, JobSpec, JobStatus};
use crate::pool::Condor;
use crate::rescue::{NodeOutcome, RescueDag, RescueNode};

/// One DAG node.
pub struct DagNode {
    /// Node name (unique in the DAG).
    pub name: String,
    /// The job to run.
    pub job: JobSpec,
    /// Retries allowed after the first failure.
    pub retries: u32,
}

/// A workflow DAG.
#[derive(Default)]
pub struct DagSpec {
    nodes: Vec<DagNode>,
    /// children[i] = indices of nodes depending on i.
    children: Vec<Vec<usize>>,
    /// Number of parents per node.
    parents: Vec<usize>,
    /// Workflow name, used as the trace root span label.
    name: String,
}

impl DagSpec {
    /// Empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty DAG carrying a workflow name (trace root label).
    pub fn named(name: impl Into<String>) -> Self {
        DagSpec {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Set the workflow name (builder style).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The workflow name ("dag" when unset).
    pub fn name(&self) -> &str {
        if self.name.is_empty() {
            "dag"
        } else {
            &self.name
        }
    }

    /// Add a node; returns its index.
    pub fn add_node(&mut self, name: impl Into<String>, job: JobSpec) -> usize {
        self.nodes.push(DagNode {
            name: name.into(),
            job,
            retries: 0,
        });
        self.children.push(Vec::new());
        self.parents.push(0);
        self.nodes.len() - 1
    }

    /// Add a node with retries; returns its index.
    pub fn add_node_with_retries(
        &mut self,
        name: impl Into<String>,
        job: JobSpec,
        retries: u32,
    ) -> usize {
        let idx = self.add_node(name, job);
        self.nodes[idx].retries = retries;
        idx
    }

    /// Declare `child` depends on `parent`.
    pub fn add_edge(&mut self, parent: usize, child: usize) -> Result<(), CondorError> {
        if parent >= self.nodes.len() || child >= self.nodes.len() {
            return Err(CondorError::InvalidDag("edge index out of range".into()));
        }
        if parent == child {
            return Err(CondorError::InvalidDag("self-dependency".into()));
        }
        self.children[parent].push(child);
        self.parents[child] += 1;
        Ok(())
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Kahn's algorithm: error when a cycle exists.
    pub fn validate(&self) -> Result<(), CondorError> {
        let mut indeg = self.parents.clone();
        let mut queue: Vec<usize> = (0..self.nodes.len()).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(n) = queue.pop() {
            seen += 1;
            for &c in &self.children[n] {
                indeg[c] -= 1;
                if indeg[c] == 0 {
                    queue.push(c);
                }
            }
        }
        if seen == self.nodes.len() {
            Ok(())
        } else {
            Err(CondorError::InvalidDag(format!(
                "cycle among {} nodes",
                self.nodes.len() - seen
            )))
        }
    }
}

/// What DAGMan does when a node exhausts its retries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// Abort the whole DAG immediately with a typed error — the historical
    /// behaviour, kept as the default so existing runs do not drift.
    #[default]
    Abort,
    /// Real DAGMan's continue-others policy: let every node not depending
    /// on the failure run to completion, then halt and emit a
    /// [`RescueDag`] recording done/failed/pending nodes for a resume run.
    ContinueOthers,
}

/// DAGMan parameters.
#[derive(Clone, Copy, Debug)]
pub struct DagmanConfig {
    /// Queue polling interval (job-log tail cadence in real DAGMan).
    pub poll_interval: SimDuration,
    /// Maximum concurrently submitted jobs (0 = unlimited).
    pub max_jobs: usize,
    /// Lognormal jitter on each poll sleep (real DAGMan reacts to job-log
    /// events with variable latency; 0 = strictly periodic). The jitter
    /// stream is seeded from the run's start instant, so concurrent DAG
    /// runs are naturally desynchronized yet the whole simulation stays
    /// deterministic.
    pub poll_jitter_cv: f64,
    /// Backoff schedule between a node's failure and its resubmission.
    /// The default immediate policy resubmits within the same poll tick —
    /// the historical DAGMan behaviour — and draws nothing from the RNG,
    /// so calm runs do not drift. Non-zero delays round up to the poll
    /// tick on which DAGMan next observes the node (real DAGMan re-reads
    /// its job log on the same cadence). The per-node retry *count* stays
    /// on [`DagNode::retries`]; only the spacing comes from the policy.
    pub retry: RetryPolicy,
    /// Failure handling: abort (historical default) or continue-others
    /// with a rescue DAG, like real DAGMan.
    pub on_failure: FailurePolicy,
}

impl Default for DagmanConfig {
    fn default() -> Self {
        DagmanConfig {
            poll_interval: SimDuration::from_secs(5),
            max_jobs: 0,
            poll_jitter_cv: 0.0,
            retry: RetryPolicy::immediate(1),
            on_failure: FailurePolicy::Abort,
        }
    }
}

/// Outcome of a DAG run.
#[derive(Clone, Debug)]
pub struct DagReport {
    /// Per-node results by node name.
    pub node_results: BTreeMap<String, JobResult>,
    /// Submission instant.
    pub started: SimTime,
    /// Completion instant of the last node.
    pub finished: SimTime,
    /// Total condor jobs submitted (includes retries).
    pub jobs_submitted: u32,
    /// Execution time spent on attempts that ended in failure — the
    /// "wasted task-seconds" side of goodput accounting.
    pub wasted_compute: SimDuration,
    /// Root span of the workflow trace (`NONE` when tracing is disabled).
    pub root_span: swf_obs::SpanContext,
}

impl DagReport {
    /// End-to-end workflow makespan.
    pub fn makespan(&self) -> SimDuration {
        self.finished - self.started
    }
}

enum NodeState {
    Waiting {
        missing_parents: usize,
    },
    Ready,
    Submitted {
        id: JobId,
        attempt: u32,
    },
    Backoff {
        until: SimTime,
        attempt: u32,
    },
    Done,
    /// Exhausted its retries under the continue-others policy.
    Failed,
    /// Unreachable: a (transitive) parent failed, so it can never run.
    Futile,
}

/// Outcome of a resumable DAG run.
#[derive(Clone, Debug)]
pub enum DagRun {
    /// Every node ran (or was salvaged) to success.
    Completed(DagReport),
    /// Under [`FailurePolicy::ContinueOthers`], at least one node exhausted
    /// its retries; every independent sibling ran to completion first.
    Halted {
        /// The persistent rescue artifact a resume run loads.
        rescue: RescueDag,
        /// Partial report: results of the nodes that did complete.
        report: DagReport,
    },
}

impl DagRun {
    /// The report of this run, completed or partial.
    pub fn report(&self) -> &DagReport {
        match self {
            DagRun::Completed(r) => r,
            DagRun::Halted { report, .. } => report,
        }
    }
}

/// Execute a DAG on a condor pool to completion.
///
/// This is the historical abort-on-failure entry point: under
/// [`FailurePolicy::Abort`] (the default) a node that exhausts its retries
/// fails the whole DAG with a typed [`CondorError::DagNodeFailed`]. When the
/// config opts into continue-others, a halt is mapped onto the same error
/// (first failed node); use [`run_dag_resumable`] to get the rescue DAG.
pub async fn run_dag(
    condor: &Condor,
    dag: &DagSpec,
    config: DagmanConfig,
) -> Result<DagReport, CondorError> {
    match run_dag_resumable(condor, dag, config, None).await? {
        DagRun::Completed(report) => Ok(report),
        DagRun::Halted { rescue, .. } => Err(rescue_to_error(&rescue)),
    }
}

/// Collapse a halt into the abort-style error, for callers that do not
/// resume: the first failed node is reported, with the full node sets.
fn rescue_to_error(rescue: &RescueDag) -> CondorError {
    let (node, attempts, last_error) = rescue
        .nodes
        .iter()
        .find_map(|n| match &n.outcome {
            NodeOutcome::Failed {
                attempts,
                last_error,
            } => Some((n.name.clone(), *attempts, last_error.clone())),
            _ => None,
        })
        .unwrap_or(("<none>".to_string(), 0, "no failed node".to_string()));
    CondorError::DagNodeFailed {
        node,
        attempts,
        last_error,
        progress: Box::new(DagProgress {
            done: rescue.done_nodes().iter().map(|s| s.to_string()).collect(),
            pending: rescue
                .pending_nodes()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            running: Vec::new(),
        }),
    }
}

/// Execute a DAG with rescue semantics: under
/// [`FailurePolicy::ContinueOthers`] a failed node halts only its
/// descendants, and the run returns a [`RescueDag`]. Passing the rescue of
/// a previous run as `resume` pre-marks its done nodes — they are provably
/// never resubmitted, and their recorded results (output bytes, exact
/// timestamps) are injected verbatim into the new report.
#[allow(clippy::needless_range_loop)] // indices address parallel state vectors
pub async fn run_dag_resumable(
    condor: &Condor,
    dag: &DagSpec,
    config: DagmanConfig,
    resume: Option<&RescueDag>,
) -> Result<DagRun, CondorError> {
    dag.validate()?;
    if let Some(rescue) = resume {
        check_rescue_matches(dag, rescue)?;
    }
    let started = now();
    let obs = swf_obs::current();
    let root = obs.start_span(
        swf_obs::SpanContext::NONE,
        "condor/dagman",
        format!("workflow:{}", dag.name()),
        swf_obs::Category::Other,
    );
    // Node spans open at submission and close when DAGMan's poll observes
    // completion, so DAGMan reaction latency is attributed to the node.
    let mut node_spans: Vec<swf_obs::SpanContext> =
        vec![swf_obs::SpanContext::NONE; dag.nodes.len()];
    let mut poll_rng = swf_simcore::DetRng::new(started.as_nanos(), "dagman-poll");
    let mut retry_rng = swf_simcore::DetRng::new(started.as_nanos(), "dagman-retry");
    let mut states: Vec<NodeState> = dag
        .parents
        .iter()
        .map(|&p| {
            if p == 0 {
                NodeState::Ready
            } else {
                NodeState::Waiting { missing_parents: p }
            }
        })
        .collect();
    let mut results: BTreeMap<String, JobResult> = BTreeMap::new();
    let mut done = 0usize;
    let mut in_flight = 0usize;
    let mut jobs_submitted = 0u32;
    let mut wasted = SimDuration::ZERO;
    // Per-node (attempts, last_error) of continue-others failures.
    let mut failures: BTreeMap<usize, (u32, String)> = BTreeMap::new();

    // Inject the salvage: every node the rescue DAG marks DONE starts in
    // the Done state with its recorded result, is counted settled, and
    // unlocks its children — without ever being submitted.
    if let Some(rescue) = resume {
        let mut salvaged = SimDuration::ZERO;
        for (i, rnode) in rescue.nodes.iter().enumerate() {
            let NodeOutcome::Done { result } = &rnode.outcome else {
                continue;
            };
            results.insert(dag.nodes[i].name.clone(), result.clone());
            states[i] = NodeState::Done;
            done += 1;
            salvaged += result.execution_time();
        }
        for i in 0..dag.nodes.len() {
            if !matches!(states[i], NodeState::Done) {
                continue;
            }
            for &c in &dag.children[i] {
                if let NodeState::Waiting { missing_parents } = &mut states[c] {
                    *missing_parents -= 1;
                    if *missing_parents == 0 {
                        states[c] = NodeState::Ready;
                    }
                }
            }
        }
        obs.counter_add("dagman.nodes_salvaged", done as u64);
        obs.observe("dagman.salvaged_task_s", salvaged.as_secs_f64());
    }

    while done < dag.nodes.len() {
        // Submit every ready node — and every node whose backoff expired —
        // within the throttle.
        for i in 0..dag.nodes.len() {
            let attempt = match states[i] {
                NodeState::Ready => 0,
                NodeState::Backoff { until, attempt } if now() >= until => attempt,
                _ => continue,
            };
            if config.max_jobs != 0 && in_flight >= config.max_jobs {
                continue;
            }
            if attempt == 0 {
                // First submission opens the node span; resubmissions reuse
                // it so retries stay attributed to the node.
                node_spans[i] = obs.start_span(
                    root,
                    "condor/dagman",
                    format!("node:{}", dag.nodes[i].name),
                    swf_obs::Category::Queue,
                );
            }
            let id = condor.submit(dag.nodes[i].job.clone().with_span(node_spans[i]));
            jobs_submitted += 1;
            in_flight += 1;
            states[i] = NodeState::Submitted { id, attempt };
        }
        let poll = if config.poll_jitter_cv > 0.0 {
            SimDuration::from_secs_f64(
                poll_rng.lognormal(config.poll_interval.as_secs_f64(), config.poll_jitter_cv),
            )
        } else {
            config.poll_interval
        };
        sleep(poll).await;
        // Poll submitted nodes.
        for i in 0..dag.nodes.len() {
            let NodeState::Submitted { id, attempt } = states[i] else {
                continue;
            };
            match condor.status(id)? {
                JobStatus::Completed(result) if result.success => {
                    obs.end(node_spans[i]);
                    results.insert(dag.nodes[i].name.clone(), result);
                    states[i] = NodeState::Done;
                    done += 1;
                    in_flight -= 1;
                    for &c in &dag.children[i] {
                        if let NodeState::Waiting { missing_parents } = &mut states[c] {
                            *missing_parents -= 1;
                            if *missing_parents == 0 {
                                states[c] = NodeState::Ready;
                            }
                        }
                    }
                }
                JobStatus::Completed(result) => {
                    // The attempt ran and failed: its execution time is
                    // wasted compute, the other side of goodput accounting.
                    wasted += result.execution_time();
                    if attempt < dag.nodes[i].retries {
                        obs.counter_add("dagman.node_retries", 1);
                        let delay = config.retry.delay_for(attempt + 1, &mut retry_rng);
                        if delay.is_zero() {
                            // Immediate policy: resubmit within the same
                            // poll tick, exactly as historical DAGMan did.
                            let id =
                                condor.submit(dag.nodes[i].job.clone().with_span(node_spans[i]));
                            jobs_submitted += 1;
                            states[i] = NodeState::Submitted {
                                id,
                                attempt: attempt + 1,
                            };
                        } else {
                            in_flight -= 1;
                            states[i] = NodeState::Backoff {
                                until: now() + delay,
                                attempt: attempt + 1,
                            };
                        }
                    } else {
                        let attempts = attempt + 1;
                        let last_error = String::from_utf8_lossy(&result.output).to_string();
                        obs.end(node_spans[i]);
                        match config.on_failure {
                            FailurePolicy::Abort => {
                                obs.end(root);
                                let mut done_set = Vec::new();
                                let mut pending = Vec::new();
                                let mut running = Vec::new();
                                for (j, st) in states.iter().enumerate() {
                                    if j == i {
                                        continue;
                                    }
                                    let name = dag.nodes[j].name.clone();
                                    match st {
                                        NodeState::Done => done_set.push(name),
                                        NodeState::Submitted { .. } | NodeState::Backoff { .. } => {
                                            running.push(name)
                                        }
                                        NodeState::Waiting { .. }
                                        | NodeState::Ready
                                        | NodeState::Failed
                                        | NodeState::Futile => pending.push(name),
                                    }
                                }
                                return Err(CondorError::DagNodeFailed {
                                    node: dag.nodes[i].name.clone(),
                                    attempts,
                                    last_error,
                                    progress: Box::new(DagProgress {
                                        done: done_set,
                                        pending,
                                        running,
                                    }),
                                });
                            }
                            FailurePolicy::ContinueOthers => {
                                obs.counter_add("dagman.node_failures", 1);
                                failures.insert(i, (attempts, last_error));
                                states[i] = NodeState::Failed;
                                done += 1;
                                in_flight -= 1;
                                // Everything downstream of the failure can
                                // never run; settle it as futile so the run
                                // halts once the independent siblings finish.
                                // Strict descendants are necessarily still
                                // Waiting (this node never completed).
                                let mut stack = dag.children[i].clone();
                                while let Some(c) = stack.pop() {
                                    if matches!(states[c], NodeState::Waiting { .. }) {
                                        states[c] = NodeState::Futile;
                                        done += 1;
                                        stack.extend(dag.children[c].iter().copied());
                                    }
                                }
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }

    obs.end(root);
    let report = DagReport {
        node_results: results,
        started,
        finished: now(),
        jobs_submitted,
        wasted_compute: wasted,
        root_span: root,
    };
    if failures.is_empty() {
        return Ok(DagRun::Completed(report));
    }
    // At least one node failed under continue-others: write the rescue DAG.
    obs.counter_add("dagman.rescues_written", 1);
    obs.observe("dagman.wasted_task_s", wasted.as_secs_f64());
    let nodes = dag
        .nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let outcome = if let Some(result) = report.node_results.get(&n.name) {
                NodeOutcome::Done {
                    result: result.clone(),
                }
            } else if let Some((attempts, last_error)) = failures.get(&i) {
                NodeOutcome::Failed {
                    attempts: *attempts,
                    last_error: last_error.clone(),
                }
            } else {
                NodeOutcome::Pending
            };
            RescueNode {
                name: n.name.clone(),
                outcome,
            }
        })
        .collect();
    Ok(DagRun::Halted {
        rescue: RescueDag {
            workflow: dag.name().to_string(),
            written_at: now(),
            nodes,
        },
        report,
    })
}

/// A resume must target the same DAG that wrote the rescue: same workflow
/// name, same node count, same node names in the same order.
fn check_rescue_matches(dag: &DagSpec, rescue: &RescueDag) -> Result<(), CondorError> {
    if rescue.workflow != dag.name() {
        return Err(CondorError::InvalidDag(format!(
            "rescue dag is for workflow {:?}, not {:?}",
            rescue.workflow,
            dag.name()
        )));
    }
    if rescue.nodes.len() != dag.nodes.len() {
        return Err(CondorError::InvalidDag(format!(
            "rescue dag has {} nodes, DAG has {}",
            rescue.nodes.len(),
            dag.nodes.len()
        )));
    }
    for (i, (r, n)) in rescue.nodes.iter().zip(dag.nodes.iter()).enumerate() {
        if r.name != n.name {
            return Err(CondorError::InvalidDag(format!(
                "rescue dag node {i} is {:?}, DAG has {:?}",
                r.name, n.name
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobContext;
    use crate::pool::CondorConfig;
    use bytes::Bytes;
    use std::cell::RefCell;
    use std::rc::Rc;
    use swf_cluster::{Cluster, ClusterConfig};
    use swf_simcore::{secs, Sim};

    fn fast_pool() -> Condor {
        let cluster = Cluster::new(&ClusterConfig::default());
        Condor::start(
            &cluster,
            CondorConfig {
                negotiator: crate::negotiator::NegotiatorConfig {
                    cycle_interval: secs(1.0),
                    match_latency: SimDuration::ZERO,
                    ..crate::negotiator::NegotiatorConfig::default()
                },
                startd: crate::startd::StartdConfig {
                    job_start_overhead: SimDuration::from_millis(50),
                },
            },
        )
    }

    fn compute_job(d: f64) -> JobSpec {
        JobSpec::new(move |ctx: JobContext| {
            Box::pin(async move {
                ctx.compute(secs(d)).await;
                Ok(Bytes::new())
            })
        })
    }

    #[test]
    fn chain_runs_in_order() {
        let sim = Sim::new();
        sim.block_on(async {
            let condor = fast_pool();
            let order: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
            let mut dag = DagSpec::new();
            let mut prev = None;
            for i in 0..4u32 {
                let order = Rc::clone(&order);
                let job = JobSpec::new(move |_ctx| {
                    let order = Rc::clone(&order);
                    Box::pin(async move {
                        order.borrow_mut().push(i);
                        Ok(Bytes::new())
                    })
                });
                let idx = dag.add_node(format!("t{i}"), job);
                if let Some(p) = prev {
                    dag.add_edge(p, idx).unwrap();
                }
                prev = Some(idx);
            }
            let report = run_dag(&condor, &dag, DagmanConfig::default())
                .await
                .unwrap();
            assert_eq!(*order.borrow(), vec![0, 1, 2, 3]);
            assert_eq!(report.node_results.len(), 4);
            assert_eq!(report.jobs_submitted, 4);
            assert!(report.makespan() > SimDuration::ZERO);
        });
    }

    #[test]
    fn diamond_joins_wait_for_both_parents() {
        let sim = Sim::new();
        sim.block_on(async {
            let condor = fast_pool();
            let mut dag = DagSpec::new();
            let a = dag.add_node("a", compute_job(0.1));
            let b = dag.add_node("b", compute_job(2.0));
            let c = dag.add_node("c", compute_job(0.1));
            let d = dag.add_node("d", compute_job(0.1));
            dag.add_edge(a, b).unwrap();
            dag.add_edge(a, c).unwrap();
            dag.add_edge(b, d).unwrap();
            dag.add_edge(c, d).unwrap();
            let report = run_dag(&condor, &dag, DagmanConfig::default())
                .await
                .unwrap();
            let rb = &report.node_results["b"];
            let rc = &report.node_results["c"];
            let rd = &report.node_results["d"];
            assert!(rd.started >= rb.finished);
            assert!(rd.started >= rc.finished);
        });
    }

    #[test]
    fn cycle_is_rejected() {
        let sim = Sim::new();
        sim.block_on(async {
            let condor = fast_pool();
            let mut dag = DagSpec::new();
            let a = dag.add_node("a", compute_job(0.1));
            let b = dag.add_node("b", compute_job(0.1));
            dag.add_edge(a, b).unwrap();
            dag.add_edge(b, a).unwrap();
            let err = run_dag(&condor, &dag, DagmanConfig::default())
                .await
                .unwrap_err();
            assert!(matches!(err, CondorError::InvalidDag(_)));
            assert!(dag.add_edge(0, 9).is_err());
            assert!(dag.add_edge(0, 0).is_err());
        });
    }

    #[test]
    fn retries_recover_flaky_nodes() {
        let sim = Sim::new();
        sim.block_on(async {
            let condor = fast_pool();
            let attempts = Rc::new(RefCell::new(0u32));
            let attempts2 = Rc::clone(&attempts);
            let flaky = JobSpec::new(move |_ctx| {
                let attempts = Rc::clone(&attempts2);
                Box::pin(async move {
                    let mut a = attempts.borrow_mut();
                    *a += 1;
                    if *a < 3 {
                        Err("flaky".to_string())
                    } else {
                        Ok(Bytes::new())
                    }
                })
            });
            let mut dag = DagSpec::new();
            dag.add_node_with_retries("flaky", flaky, 3);
            let report = run_dag(&condor, &dag, DagmanConfig::default())
                .await
                .unwrap();
            assert_eq!(*attempts.borrow(), 3);
            assert_eq!(report.jobs_submitted, 3);
        });
    }

    #[test]
    fn exhausted_retries_fail_the_dag() {
        let sim = Sim::new();
        sim.block_on(async {
            let condor = fast_pool();
            let mut dag = DagSpec::new();
            dag.add_node_with_retries(
                "doomed",
                JobSpec::new(|_ctx| Box::pin(async { Err("always fails".to_string()) })),
                1,
            );
            let err = run_dag(&condor, &dag, DagmanConfig::default())
                .await
                .unwrap_err();
            match err {
                CondorError::DagNodeFailed { node, attempts, .. } => {
                    assert_eq!(node, "doomed");
                    assert_eq!(attempts, 2);
                }
                other => panic!("unexpected {other}"),
            }
        });
    }

    #[test]
    fn backoff_spaces_retries_deterministically() {
        let run = |retry: RetryPolicy| {
            let sim = Sim::new();
            sim.block_on(async move {
                let condor = fast_pool();
                let attempts = Rc::new(RefCell::new(0u32));
                let attempts2 = Rc::clone(&attempts);
                let flaky = JobSpec::new(move |_ctx| {
                    let attempts = Rc::clone(&attempts2);
                    Box::pin(async move {
                        let mut a = attempts.borrow_mut();
                        *a += 1;
                        if *a < 3 {
                            Err("flaky".to_string())
                        } else {
                            Ok(Bytes::new())
                        }
                    })
                });
                let mut dag = DagSpec::new();
                dag.add_node_with_retries("flaky", flaky, 3);
                let report = run_dag(
                    &condor,
                    &dag,
                    DagmanConfig {
                        poll_interval: secs(1.0),
                        retry,
                        ..DagmanConfig::default()
                    },
                )
                .await
                .unwrap();
                assert_eq!(*attempts.borrow(), 3);
                report.makespan()
            })
        };
        let immediate = run(RetryPolicy::immediate(4));
        let spaced = run(RetryPolicy::exponential(4, secs(3.0), secs(30.0)));
        let replay = run(RetryPolicy::exponential(4, secs(3.0), secs(30.0)));
        // Two backed-off resubmissions (3 s then 6 s, rounded up to poll
        // ticks) must stretch the makespan past the immediate schedule.
        assert!(spaced >= immediate + secs(9.0) - secs(2.0));
        // And the schedule replays bitwise.
        assert_eq!(
            spaced.as_secs_f64().to_bits(),
            replay.as_secs_f64().to_bits()
        );
    }

    #[test]
    fn jittered_backoff_replays_bitwise_and_differs_from_nominal() {
        let run = |retry: RetryPolicy| {
            let sim = Sim::new();
            sim.block_on(async move {
                let condor = fast_pool();
                let flaky = JobSpec::new(move |ctx: JobContext| {
                    Box::pin(async move {
                        ctx.compute(secs(0.1)).await;
                        Err("always".to_string())
                    })
                });
                let mut dag = DagSpec::new();
                dag.add_node_with_retries("doomed", flaky, 2);
                let err = run_dag(
                    &condor,
                    &dag,
                    DagmanConfig {
                        poll_interval: secs(1.0),
                        retry,
                        ..DagmanConfig::default()
                    },
                )
                .await
                .unwrap_err();
                assert!(matches!(err, CondorError::DagNodeFailed { .. }));
                now()
            })
        };
        let plain = RetryPolicy::exponential(3, secs(2.0), secs(20.0));
        let a = run(plain.with_jitter(0.4));
        let b = run(plain.with_jitter(0.4));
        let nominal = run(plain);
        assert_eq!(
            a.as_secs_f64().to_bits(),
            b.as_secs_f64().to_bits(),
            "jittered backoff must replay bitwise"
        );
        assert_ne!(
            a.as_nanos(),
            nominal.as_nanos(),
            "jitter must actually perturb the schedule"
        );
    }

    #[test]
    fn throttle_limits_in_flight_jobs() {
        let sim = Sim::new();
        sim.block_on(async {
            let condor = fast_pool();
            let mut dag = DagSpec::new();
            for i in 0..6 {
                dag.add_node(format!("p{i}"), compute_job(3.0));
            }
            let t0 = now();
            let report = run_dag(
                &condor,
                &dag,
                DagmanConfig {
                    poll_interval: secs(1.0),
                    max_jobs: 2,
                    ..DagmanConfig::default()
                },
            )
            .await
            .unwrap();
            // 6 jobs, 2 at a time, 3s each → at least 9s of pure compute.
            assert!((now() - t0).as_secs_f64() >= 9.0);
            assert_eq!(report.node_results.len(), 6);
        });
    }

    #[test]
    fn abort_error_carries_the_node_sets() {
        let sim = Sim::new();
        sim.block_on(async {
            let condor = fast_pool();
            let mut dag = DagSpec::new();
            // fast -> doomed -> child, with an independent slow sibling that
            // is still running when doomed exhausts its retries.
            let fast = dag.add_node("fast", compute_job(0.1));
            let doomed = dag.add_node(
                "doomed",
                JobSpec::new(|_ctx| Box::pin(async { Err("always fails".to_string()) })),
            );
            let child = dag.add_node("child", compute_job(0.1));
            dag.add_node("slow-sibling", compute_job(500.0));
            dag.add_edge(fast, doomed).unwrap();
            dag.add_edge(doomed, child).unwrap();
            let err = run_dag(&condor, &dag, DagmanConfig::default())
                .await
                .unwrap_err();
            match err {
                CondorError::DagNodeFailed { node, progress, .. } => {
                    assert_eq!(node, "doomed");
                    assert_eq!(progress.done, vec!["fast"]);
                    assert_eq!(progress.pending, vec!["child"]);
                    assert_eq!(progress.running, vec!["slow-sibling"]);
                }
                other => panic!("unexpected {other}"),
            }
        });
    }

    #[test]
    fn continue_others_runs_independent_siblings_and_writes_a_rescue() {
        let sim = Sim::new();
        sim.block_on(async {
            let condor = fast_pool();
            let mut dag = DagSpec::named("wf-rescue");
            // doomed -> child (futile); three independent siblings must all
            // still complete after the failure.
            let doomed = dag.add_node(
                "doomed",
                JobSpec::new(|_ctx| Box::pin(async { Err("always fails".to_string()) })),
            );
            let child = dag.add_node("child", compute_job(0.1));
            dag.add_edge(doomed, child).unwrap();
            for i in 0..3 {
                dag.add_node(format!("sib{i}"), compute_job(5.0 + i as f64));
            }
            let config = DagmanConfig {
                on_failure: FailurePolicy::ContinueOthers,
                ..DagmanConfig::default()
            };
            let run = run_dag_resumable(&condor, &dag, config, None)
                .await
                .unwrap();
            let DagRun::Halted { rescue, report } = run else {
                panic!("expected a halted run");
            };
            assert_eq!(rescue.workflow, "wf-rescue");
            assert_eq!(rescue.done_nodes(), vec!["sib0", "sib1", "sib2"]);
            assert_eq!(rescue.failed_nodes(), vec!["doomed"]);
            assert_eq!(rescue.pending_nodes(), vec!["child"]);
            assert_eq!(report.node_results.len(), 3);
            // Only the doomed node's single short attempt is wasted.
            assert!(report.wasted_compute.as_secs_f64() < 1.0);
            // Round-trips through its JSON text form.
            let back = RescueDag::parse(&rescue.to_string()).unwrap();
            assert_eq!(rescue, back);
        });
    }

    #[test]
    fn resume_reexecutes_zero_done_nodes_bit_identically() {
        let sim = Sim::new();
        sim.block_on(async {
            let condor = fast_pool();
            // Per-node execution counters prove what actually ran.
            let execs: Rc<RefCell<BTreeMap<String, u32>>> = Rc::new(RefCell::new(BTreeMap::new()));
            // The doomed node fails on its first life and succeeds after
            // resume (the "operator fixed it" scenario).
            let fixed = Rc::new(RefCell::new(false));
            let counted = |name: &str, out: &[u8]| {
                let execs = Rc::clone(&execs);
                let name = name.to_string();
                let out = Bytes::copy_from_slice(out);
                JobSpec::new(move |ctx: JobContext| {
                    let execs = Rc::clone(&execs);
                    let name = name.clone();
                    let out = out.clone();
                    Box::pin(async move {
                        ctx.compute(secs(1.0)).await;
                        *execs.borrow_mut().entry(name).or_insert(0) += 1;
                        Ok(out)
                    })
                })
            };
            let mut dag = DagSpec::named("wf");
            let a = dag.add_node("a", counted("a", b"\x00\xffout-a"));
            let fixed2 = Rc::clone(&fixed);
            let execs2 = Rc::clone(&execs);
            let b = dag.add_node(
                "b",
                JobSpec::new(move |_ctx| {
                    let fixed = Rc::clone(&fixed2);
                    let execs = Rc::clone(&execs2);
                    Box::pin(async move {
                        *execs.borrow_mut().entry("b".into()).or_insert(0) += 1;
                        if *fixed.borrow() {
                            Ok(Bytes::from_static(b"out-b"))
                        } else {
                            Err("broken dependency".to_string())
                        }
                    })
                }),
            );
            let c = dag.add_node("c", counted("c", b"out-c"));
            dag.add_edge(a, b).unwrap();
            dag.add_edge(b, c).unwrap();
            dag.add_node("side", counted("side", b"out-side"));
            let config = DagmanConfig {
                on_failure: FailurePolicy::ContinueOthers,
                ..DagmanConfig::default()
            };
            let DagRun::Halted { rescue, .. } = run_dag_resumable(&condor, &dag, config, None)
                .await
                .unwrap()
            else {
                panic!("expected a halted first run");
            };
            assert_eq!(rescue.done_nodes(), vec!["a", "side"]);
            let first_execs = execs.borrow().clone();
            let first_a = rescue.nodes[0].clone();

            // Resume from the persisted JSON text, not the in-memory value:
            // the round trip is part of what is being proven.
            *fixed.borrow_mut() = true;
            let reloaded = RescueDag::parse(&rescue.to_string()).unwrap();
            let run = run_dag_resumable(&condor, &dag, config, Some(&reloaded))
                .await
                .unwrap();
            let DagRun::Completed(report) = run else {
                panic!("expected the resumed run to complete");
            };
            // Done nodes ran exactly once across both lives...
            assert_eq!(execs.borrow()["a"], 1);
            assert_eq!(execs.borrow()["side"], 1);
            assert_eq!(execs.borrow()["c"], 1);
            assert_eq!(first_execs["a"], 1);
            // ...and the salvaged result is bit-identical to the recording,
            // exact timestamps included.
            let NodeOutcome::Done { result } = &first_a.outcome else {
                panic!("node a must be recorded done");
            };
            assert_eq!(&report.node_results["a"], result);
            assert_eq!(&report.node_results["a"].output[..], b"\x00\xffout-a");
            assert_eq!(report.node_results.len(), 4);
        });
    }

    #[test]
    fn resume_rejects_a_mismatched_rescue() {
        let sim = Sim::new();
        sim.block_on(async {
            let condor = fast_pool();
            let mut dag = DagSpec::named("wf");
            dag.add_node("a", compute_job(0.1));
            let rescue = RescueDag {
                workflow: "other".into(),
                written_at: SimTime::from_nanos(0),
                nodes: vec![RescueNode {
                    name: "a".into(),
                    outcome: NodeOutcome::Pending,
                }],
            };
            let err = run_dag_resumable(&condor, &dag, DagmanConfig::default(), Some(&rescue))
                .await
                .unwrap_err();
            assert!(matches!(err, CondorError::InvalidDag(_)));
            let rescue = RescueDag {
                workflow: "wf".into(),
                written_at: SimTime::from_nanos(0),
                nodes: Vec::new(),
            };
            let err = run_dag_resumable(&condor, &dag, DagmanConfig::default(), Some(&rescue))
                .await
                .unwrap_err();
            assert!(matches!(err, CondorError::InvalidDag(_)));
        });
    }

    #[test]
    fn empty_dag_completes_immediately() {
        let sim = Sim::new();
        sim.block_on(async {
            let condor = fast_pool();
            let dag = DagSpec::new();
            assert!(dag.is_empty());
            let report = run_dag(&condor, &dag, DagmanConfig::default())
                .await
                .unwrap();
            assert_eq!(report.node_results.len(), 0);
            assert_eq!(report.makespan(), SimDuration::ZERO);
        });
    }
}
