//! DAGMan: dependency-driven workflow execution over the schedd.
//!
//! Pegasus plans abstract workflows into DAGMan DAGs; DAGMan submits a node
//! once all its parents completed, polls the queue on a fixed interval
//! (real DAGMan tails the job log every few seconds), retries failed nodes,
//! and throttles concurrently submitted jobs.

use std::collections::BTreeMap;

use swf_simcore::{now, sleep, RetryPolicy, SimDuration, SimTime};

use crate::error::CondorError;
use crate::job::{JobId, JobResult, JobSpec, JobStatus};
use crate::pool::Condor;

/// One DAG node.
pub struct DagNode {
    /// Node name (unique in the DAG).
    pub name: String,
    /// The job to run.
    pub job: JobSpec,
    /// Retries allowed after the first failure.
    pub retries: u32,
}

/// A workflow DAG.
#[derive(Default)]
pub struct DagSpec {
    nodes: Vec<DagNode>,
    /// children[i] = indices of nodes depending on i.
    children: Vec<Vec<usize>>,
    /// Number of parents per node.
    parents: Vec<usize>,
    /// Workflow name, used as the trace root span label.
    name: String,
}

impl DagSpec {
    /// Empty DAG.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty DAG carrying a workflow name (trace root label).
    pub fn named(name: impl Into<String>) -> Self {
        DagSpec {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Set the workflow name (builder style).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The workflow name ("dag" when unset).
    pub fn name(&self) -> &str {
        if self.name.is_empty() {
            "dag"
        } else {
            &self.name
        }
    }

    /// Add a node; returns its index.
    pub fn add_node(&mut self, name: impl Into<String>, job: JobSpec) -> usize {
        self.nodes.push(DagNode {
            name: name.into(),
            job,
            retries: 0,
        });
        self.children.push(Vec::new());
        self.parents.push(0);
        self.nodes.len() - 1
    }

    /// Add a node with retries; returns its index.
    pub fn add_node_with_retries(
        &mut self,
        name: impl Into<String>,
        job: JobSpec,
        retries: u32,
    ) -> usize {
        let idx = self.add_node(name, job);
        self.nodes[idx].retries = retries;
        idx
    }

    /// Declare `child` depends on `parent`.
    pub fn add_edge(&mut self, parent: usize, child: usize) -> Result<(), CondorError> {
        if parent >= self.nodes.len() || child >= self.nodes.len() {
            return Err(CondorError::InvalidDag("edge index out of range".into()));
        }
        if parent == child {
            return Err(CondorError::InvalidDag("self-dependency".into()));
        }
        self.children[parent].push(child);
        self.parents[child] += 1;
        Ok(())
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Kahn's algorithm: error when a cycle exists.
    pub fn validate(&self) -> Result<(), CondorError> {
        let mut indeg = self.parents.clone();
        let mut queue: Vec<usize> = (0..self.nodes.len()).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(n) = queue.pop() {
            seen += 1;
            for &c in &self.children[n] {
                indeg[c] -= 1;
                if indeg[c] == 0 {
                    queue.push(c);
                }
            }
        }
        if seen == self.nodes.len() {
            Ok(())
        } else {
            Err(CondorError::InvalidDag(format!(
                "cycle among {} nodes",
                self.nodes.len() - seen
            )))
        }
    }
}

/// DAGMan parameters.
#[derive(Clone, Copy, Debug)]
pub struct DagmanConfig {
    /// Queue polling interval (job-log tail cadence in real DAGMan).
    pub poll_interval: SimDuration,
    /// Maximum concurrently submitted jobs (0 = unlimited).
    pub max_jobs: usize,
    /// Lognormal jitter on each poll sleep (real DAGMan reacts to job-log
    /// events with variable latency; 0 = strictly periodic). The jitter
    /// stream is seeded from the run's start instant, so concurrent DAG
    /// runs are naturally desynchronized yet the whole simulation stays
    /// deterministic.
    pub poll_jitter_cv: f64,
    /// Backoff schedule between a node's failure and its resubmission.
    /// The default immediate policy resubmits within the same poll tick —
    /// the historical DAGMan behaviour — and draws nothing from the RNG,
    /// so calm runs do not drift. Non-zero delays round up to the poll
    /// tick on which DAGMan next observes the node (real DAGMan re-reads
    /// its job log on the same cadence). The per-node retry *count* stays
    /// on [`DagNode::retries`]; only the spacing comes from the policy.
    pub retry: RetryPolicy,
}

impl Default for DagmanConfig {
    fn default() -> Self {
        DagmanConfig {
            poll_interval: SimDuration::from_secs(5),
            max_jobs: 0,
            poll_jitter_cv: 0.0,
            retry: RetryPolicy::immediate(1),
        }
    }
}

/// Outcome of a DAG run.
#[derive(Clone, Debug)]
pub struct DagReport {
    /// Per-node results by node name.
    pub node_results: BTreeMap<String, JobResult>,
    /// Submission instant.
    pub started: SimTime,
    /// Completion instant of the last node.
    pub finished: SimTime,
    /// Total condor jobs submitted (includes retries).
    pub jobs_submitted: u32,
    /// Root span of the workflow trace (`NONE` when tracing is disabled).
    pub root_span: swf_obs::SpanContext,
}

impl DagReport {
    /// End-to-end workflow makespan.
    pub fn makespan(&self) -> SimDuration {
        self.finished - self.started
    }
}

enum NodeState {
    Waiting { missing_parents: usize },
    Ready,
    Submitted { id: JobId, attempt: u32 },
    Backoff { until: SimTime, attempt: u32 },
    Done,
}

/// Execute a DAG on a condor pool to completion.
#[allow(clippy::needless_range_loop)] // indices address parallel state vectors
pub async fn run_dag(
    condor: &Condor,
    dag: &DagSpec,
    config: DagmanConfig,
) -> Result<DagReport, CondorError> {
    dag.validate()?;
    let started = now();
    let obs = swf_obs::current();
    let root = obs.start_span(
        swf_obs::SpanContext::NONE,
        "condor/dagman",
        format!("workflow:{}", dag.name()),
        swf_obs::Category::Other,
    );
    // Node spans open at submission and close when DAGMan's poll observes
    // completion, so DAGMan reaction latency is attributed to the node.
    let mut node_spans: Vec<swf_obs::SpanContext> =
        vec![swf_obs::SpanContext::NONE; dag.nodes.len()];
    let mut poll_rng = swf_simcore::DetRng::new(started.as_nanos(), "dagman-poll");
    let mut retry_rng = swf_simcore::DetRng::new(started.as_nanos(), "dagman-retry");
    let mut states: Vec<NodeState> = dag
        .parents
        .iter()
        .map(|&p| {
            if p == 0 {
                NodeState::Ready
            } else {
                NodeState::Waiting { missing_parents: p }
            }
        })
        .collect();
    let mut results: BTreeMap<String, JobResult> = BTreeMap::new();
    let mut done = 0usize;
    let mut in_flight = 0usize;
    let mut jobs_submitted = 0u32;

    while done < dag.nodes.len() {
        // Submit every ready node — and every node whose backoff expired —
        // within the throttle.
        for i in 0..dag.nodes.len() {
            let attempt = match states[i] {
                NodeState::Ready => 0,
                NodeState::Backoff { until, attempt } if now() >= until => attempt,
                _ => continue,
            };
            if config.max_jobs != 0 && in_flight >= config.max_jobs {
                continue;
            }
            if attempt == 0 {
                // First submission opens the node span; resubmissions reuse
                // it so retries stay attributed to the node.
                node_spans[i] = obs.start_span(
                    root,
                    "condor/dagman",
                    format!("node:{}", dag.nodes[i].name),
                    swf_obs::Category::Queue,
                );
            }
            let id = condor.submit(dag.nodes[i].job.clone().with_span(node_spans[i]));
            jobs_submitted += 1;
            in_flight += 1;
            states[i] = NodeState::Submitted { id, attempt };
        }
        let poll = if config.poll_jitter_cv > 0.0 {
            SimDuration::from_secs_f64(
                poll_rng.lognormal(config.poll_interval.as_secs_f64(), config.poll_jitter_cv),
            )
        } else {
            config.poll_interval
        };
        sleep(poll).await;
        // Poll submitted nodes.
        for i in 0..dag.nodes.len() {
            let NodeState::Submitted { id, attempt } = states[i] else {
                continue;
            };
            match condor.status(id)? {
                JobStatus::Completed(result) if result.success => {
                    obs.end(node_spans[i]);
                    results.insert(dag.nodes[i].name.clone(), result);
                    states[i] = NodeState::Done;
                    done += 1;
                    in_flight -= 1;
                    for &c in &dag.children[i] {
                        if let NodeState::Waiting { missing_parents } = &mut states[c] {
                            *missing_parents -= 1;
                            if *missing_parents == 0 {
                                states[c] = NodeState::Ready;
                            }
                        }
                    }
                }
                JobStatus::Completed(result) => {
                    if attempt < dag.nodes[i].retries {
                        obs.counter_add("dagman.node_retries", 1);
                        let delay = config.retry.delay_for(attempt + 1, &mut retry_rng);
                        if delay.is_zero() {
                            // Immediate policy: resubmit within the same
                            // poll tick, exactly as historical DAGMan did.
                            let id =
                                condor.submit(dag.nodes[i].job.clone().with_span(node_spans[i]));
                            jobs_submitted += 1;
                            states[i] = NodeState::Submitted {
                                id,
                                attempt: attempt + 1,
                            };
                        } else {
                            in_flight -= 1;
                            states[i] = NodeState::Backoff {
                                until: now() + delay,
                                attempt: attempt + 1,
                            };
                        }
                    } else {
                        obs.end(node_spans[i]);
                        obs.end(root);
                        return Err(CondorError::DagNodeFailed {
                            node: dag.nodes[i].name.clone(),
                            attempts: attempt + 1,
                            last_error: String::from_utf8_lossy(&result.output).to_string(),
                        });
                    }
                }
                _ => {}
            }
        }
    }

    obs.end(root);
    Ok(DagReport {
        node_results: results,
        started,
        finished: now(),
        jobs_submitted,
        root_span: root,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobContext;
    use crate::pool::CondorConfig;
    use bytes::Bytes;
    use std::cell::RefCell;
    use std::rc::Rc;
    use swf_cluster::{Cluster, ClusterConfig};
    use swf_simcore::{secs, Sim};

    fn fast_pool() -> Condor {
        let cluster = Cluster::new(&ClusterConfig::default());
        Condor::start(
            &cluster,
            CondorConfig {
                negotiator: crate::negotiator::NegotiatorConfig {
                    cycle_interval: secs(1.0),
                    match_latency: SimDuration::ZERO,
                    ..crate::negotiator::NegotiatorConfig::default()
                },
                startd: crate::startd::StartdConfig {
                    job_start_overhead: SimDuration::from_millis(50),
                },
            },
        )
    }

    fn compute_job(d: f64) -> JobSpec {
        JobSpec::new(move |ctx: JobContext| {
            Box::pin(async move {
                ctx.compute(secs(d)).await;
                Ok(Bytes::new())
            })
        })
    }

    #[test]
    fn chain_runs_in_order() {
        let sim = Sim::new();
        sim.block_on(async {
            let condor = fast_pool();
            let order: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
            let mut dag = DagSpec::new();
            let mut prev = None;
            for i in 0..4u32 {
                let order = Rc::clone(&order);
                let job = JobSpec::new(move |_ctx| {
                    let order = Rc::clone(&order);
                    Box::pin(async move {
                        order.borrow_mut().push(i);
                        Ok(Bytes::new())
                    })
                });
                let idx = dag.add_node(format!("t{i}"), job);
                if let Some(p) = prev {
                    dag.add_edge(p, idx).unwrap();
                }
                prev = Some(idx);
            }
            let report = run_dag(&condor, &dag, DagmanConfig::default())
                .await
                .unwrap();
            assert_eq!(*order.borrow(), vec![0, 1, 2, 3]);
            assert_eq!(report.node_results.len(), 4);
            assert_eq!(report.jobs_submitted, 4);
            assert!(report.makespan() > SimDuration::ZERO);
        });
    }

    #[test]
    fn diamond_joins_wait_for_both_parents() {
        let sim = Sim::new();
        sim.block_on(async {
            let condor = fast_pool();
            let mut dag = DagSpec::new();
            let a = dag.add_node("a", compute_job(0.1));
            let b = dag.add_node("b", compute_job(2.0));
            let c = dag.add_node("c", compute_job(0.1));
            let d = dag.add_node("d", compute_job(0.1));
            dag.add_edge(a, b).unwrap();
            dag.add_edge(a, c).unwrap();
            dag.add_edge(b, d).unwrap();
            dag.add_edge(c, d).unwrap();
            let report = run_dag(&condor, &dag, DagmanConfig::default())
                .await
                .unwrap();
            let rb = &report.node_results["b"];
            let rc = &report.node_results["c"];
            let rd = &report.node_results["d"];
            assert!(rd.started >= rb.finished);
            assert!(rd.started >= rc.finished);
        });
    }

    #[test]
    fn cycle_is_rejected() {
        let sim = Sim::new();
        sim.block_on(async {
            let condor = fast_pool();
            let mut dag = DagSpec::new();
            let a = dag.add_node("a", compute_job(0.1));
            let b = dag.add_node("b", compute_job(0.1));
            dag.add_edge(a, b).unwrap();
            dag.add_edge(b, a).unwrap();
            let err = run_dag(&condor, &dag, DagmanConfig::default())
                .await
                .unwrap_err();
            assert!(matches!(err, CondorError::InvalidDag(_)));
            assert!(dag.add_edge(0, 9).is_err());
            assert!(dag.add_edge(0, 0).is_err());
        });
    }

    #[test]
    fn retries_recover_flaky_nodes() {
        let sim = Sim::new();
        sim.block_on(async {
            let condor = fast_pool();
            let attempts = Rc::new(RefCell::new(0u32));
            let attempts2 = Rc::clone(&attempts);
            let flaky = JobSpec::new(move |_ctx| {
                let attempts = Rc::clone(&attempts2);
                Box::pin(async move {
                    let mut a = attempts.borrow_mut();
                    *a += 1;
                    if *a < 3 {
                        Err("flaky".to_string())
                    } else {
                        Ok(Bytes::new())
                    }
                })
            });
            let mut dag = DagSpec::new();
            dag.add_node_with_retries("flaky", flaky, 3);
            let report = run_dag(&condor, &dag, DagmanConfig::default())
                .await
                .unwrap();
            assert_eq!(*attempts.borrow(), 3);
            assert_eq!(report.jobs_submitted, 3);
        });
    }

    #[test]
    fn exhausted_retries_fail_the_dag() {
        let sim = Sim::new();
        sim.block_on(async {
            let condor = fast_pool();
            let mut dag = DagSpec::new();
            dag.add_node_with_retries(
                "doomed",
                JobSpec::new(|_ctx| Box::pin(async { Err("always fails".to_string()) })),
                1,
            );
            let err = run_dag(&condor, &dag, DagmanConfig::default())
                .await
                .unwrap_err();
            match err {
                CondorError::DagNodeFailed { node, attempts, .. } => {
                    assert_eq!(node, "doomed");
                    assert_eq!(attempts, 2);
                }
                other => panic!("unexpected {other}"),
            }
        });
    }

    #[test]
    fn backoff_spaces_retries_deterministically() {
        let run = |retry: RetryPolicy| {
            let sim = Sim::new();
            sim.block_on(async move {
                let condor = fast_pool();
                let attempts = Rc::new(RefCell::new(0u32));
                let attempts2 = Rc::clone(&attempts);
                let flaky = JobSpec::new(move |_ctx| {
                    let attempts = Rc::clone(&attempts2);
                    Box::pin(async move {
                        let mut a = attempts.borrow_mut();
                        *a += 1;
                        if *a < 3 {
                            Err("flaky".to_string())
                        } else {
                            Ok(Bytes::new())
                        }
                    })
                });
                let mut dag = DagSpec::new();
                dag.add_node_with_retries("flaky", flaky, 3);
                let report = run_dag(
                    &condor,
                    &dag,
                    DagmanConfig {
                        poll_interval: secs(1.0),
                        retry,
                        ..DagmanConfig::default()
                    },
                )
                .await
                .unwrap();
                assert_eq!(*attempts.borrow(), 3);
                report.makespan()
            })
        };
        let immediate = run(RetryPolicy::immediate(4));
        let spaced = run(RetryPolicy::exponential(4, secs(3.0), secs(30.0)));
        let replay = run(RetryPolicy::exponential(4, secs(3.0), secs(30.0)));
        // Two backed-off resubmissions (3 s then 6 s, rounded up to poll
        // ticks) must stretch the makespan past the immediate schedule.
        assert!(spaced >= immediate + secs(9.0) - secs(2.0));
        // And the schedule replays bitwise.
        assert_eq!(
            spaced.as_secs_f64().to_bits(),
            replay.as_secs_f64().to_bits()
        );
    }

    #[test]
    fn jittered_backoff_replays_bitwise_and_differs_from_nominal() {
        let run = |retry: RetryPolicy| {
            let sim = Sim::new();
            sim.block_on(async move {
                let condor = fast_pool();
                let flaky = JobSpec::new(move |ctx: JobContext| {
                    Box::pin(async move {
                        ctx.compute(secs(0.1)).await;
                        Err("always".to_string())
                    })
                });
                let mut dag = DagSpec::new();
                dag.add_node_with_retries("doomed", flaky, 2);
                let err = run_dag(
                    &condor,
                    &dag,
                    DagmanConfig {
                        poll_interval: secs(1.0),
                        retry,
                        ..DagmanConfig::default()
                    },
                )
                .await
                .unwrap_err();
                assert!(matches!(err, CondorError::DagNodeFailed { .. }));
                now()
            })
        };
        let plain = RetryPolicy::exponential(3, secs(2.0), secs(20.0));
        let a = run(plain.with_jitter(0.4));
        let b = run(plain.with_jitter(0.4));
        let nominal = run(plain);
        assert_eq!(
            a.as_secs_f64().to_bits(),
            b.as_secs_f64().to_bits(),
            "jittered backoff must replay bitwise"
        );
        assert_ne!(
            a.as_nanos(),
            nominal.as_nanos(),
            "jitter must actually perturb the schedule"
        );
    }

    #[test]
    fn throttle_limits_in_flight_jobs() {
        let sim = Sim::new();
        sim.block_on(async {
            let condor = fast_pool();
            let mut dag = DagSpec::new();
            for i in 0..6 {
                dag.add_node(format!("p{i}"), compute_job(3.0));
            }
            let t0 = now();
            let report = run_dag(
                &condor,
                &dag,
                DagmanConfig {
                    poll_interval: secs(1.0),
                    max_jobs: 2,
                    ..DagmanConfig::default()
                },
            )
            .await
            .unwrap();
            // 6 jobs, 2 at a time, 3s each → at least 9s of pure compute.
            assert!((now() - t0).as_secs_f64() >= 9.0);
            assert_eq!(report.node_results.len(), 6);
        });
    }

    #[test]
    fn empty_dag_completes_immediately() {
        let sim = Sim::new();
        sim.block_on(async {
            let condor = fast_pool();
            let dag = DagSpec::new();
            assert!(dag.is_empty());
            let report = run_dag(&condor, &dag, DagmanConfig::default())
                .await
                .unwrap();
            assert_eq!(report.node_results.len(), 0);
            assert_eq!(report.makespan(), SimDuration::ZERO);
        });
    }
}
