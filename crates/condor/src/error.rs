//! Batch-system errors.

use std::fmt;

use crate::job::JobId;

/// Errors from the HTCondor-style substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CondorError {
    /// Unknown job id.
    NoSuchJob(JobId),
    /// Operation requires an Idle job.
    NotIdle(JobId),
    /// Job was removed before completing.
    JobRemoved(JobId),
    /// Input file missing on the submit node.
    MissingInput(String),
    /// Output file missing in the sandbox after execution.
    MissingOutput(String),
    /// DAG validation failed (cycle, bad edge).
    InvalidDag(String),
    /// A DAG node exhausted its retries.
    DagNodeFailed {
        /// Node name.
        node: String,
        /// Attempts made.
        attempts: u32,
        /// Last error text.
        last_error: String,
    },
}

impl fmt::Display for CondorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CondorError::NoSuchJob(id) => write!(f, "no such job: {id}"),
            CondorError::NotIdle(id) => write!(f, "{id} is not idle"),
            CondorError::JobRemoved(id) => write!(f, "{id} was removed"),
            CondorError::MissingInput(p) => write!(f, "missing input file: {p}"),
            CondorError::MissingOutput(p) => write!(f, "missing output file: {p}"),
            CondorError::InvalidDag(m) => write!(f, "invalid DAG: {m}"),
            CondorError::DagNodeFailed {
                node,
                attempts,
                last_error,
            } => write!(
                f,
                "DAG node {node} failed after {attempts} attempts: {last_error}"
            ),
        }
    }
}

impl std::error::Error for CondorError {}
