//! Batch-system errors.

use std::fmt;

use crate::job::JobId;

/// Snapshot of DAG progress at the instant a node failure surfaced —
/// what a rescue DAG would record, attached to the abort-style error so
/// non-resuming callers still see what was lost. Boxed inside
/// [`CondorError::DagNodeFailed`] to keep the error small on the `Ok`
/// path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DagProgress {
    /// Names of nodes that had completed when the failure surfaced
    /// (what a rescue DAG would mark DONE).
    pub done: Vec<String>,
    /// Names of nodes that had not yet started (waiting on parents, or
    /// unreachable behind the failure).
    pub pending: Vec<String>,
    /// Names of nodes with an attempt in flight (submitted or backing
    /// off between retries) at failure time.
    pub running: Vec<String>,
}

/// Errors from the HTCondor-style substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CondorError {
    /// Unknown job id.
    NoSuchJob(JobId),
    /// Operation requires an Idle job.
    NotIdle(JobId),
    /// Job was removed before completing.
    JobRemoved(JobId),
    /// Input file missing on the submit node.
    MissingInput(String),
    /// Output file missing in the sandbox after execution.
    MissingOutput(String),
    /// DAG validation failed (cycle, bad edge).
    InvalidDag(String),
    /// A DAG node exhausted its retries.
    DagNodeFailed {
        /// Node name.
        node: String,
        /// Attempts made.
        attempts: u32,
        /// Last error text.
        last_error: String,
        /// Done/pending/running node sets at failure time.
        progress: Box<DagProgress>,
    },
}

impl fmt::Display for CondorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CondorError::NoSuchJob(id) => write!(f, "no such job: {id}"),
            CondorError::NotIdle(id) => write!(f, "{id} is not idle"),
            CondorError::JobRemoved(id) => write!(f, "{id} was removed"),
            CondorError::MissingInput(p) => write!(f, "missing input file: {p}"),
            CondorError::MissingOutput(p) => write!(f, "missing output file: {p}"),
            CondorError::InvalidDag(m) => write!(f, "invalid DAG: {m}"),
            CondorError::DagNodeFailed {
                node,
                attempts,
                last_error,
                progress,
            } => write!(
                f,
                "DAG node {node} failed after {attempts} attempts \
                 ({} done, {} pending, {} running): {last_error}",
                progress.done.len(),
                progress.pending.len(),
                progress.running.len()
            ),
        }
    }
}

impl std::error::Error for CondorError {}
