//! Rescue DAGs: the persistent record of a partially completed workflow.
//!
//! Real DAGMan writes a *rescue DAG* (`<dag>.rescue001`) whenever a node
//! exhausts its retries under the continue-others policy: every node that
//! already completed is marked DONE, and resubmitting the same DAG against
//! the rescue file re-executes only the failed and never-started nodes.
//! This module reproduces that artifact as a JSON document that round-trips
//! bit-exactly (like `swf_chaos::FaultPlan`): completed node results carry
//! their output bytes and exact start/finish nanosecond timestamps, so a
//! resumed run can inject them verbatim and provably re-execute nothing.

use bytes::Bytes;
use serde_json::{Map, Value};
use swf_cluster::NodeId;
use swf_simcore::{SimDuration, SimTime};

use crate::job::JobResult;

/// What a rescue DAG records about one node.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeOutcome {
    /// The node completed successfully; its result is carried verbatim so a
    /// resume run injects it instead of re-executing.
    Done {
        /// The recorded result (output bytes and exact timestamps).
        result: JobResult,
    },
    /// The node exhausted its retries.
    Failed {
        /// Attempts made (first try included).
        attempts: u32,
        /// Last error text.
        last_error: String,
    },
    /// The node never ran to completion — either it was still waiting on
    /// parents, or a failed ancestor made it unreachable.
    Pending,
}

impl NodeOutcome {
    fn tag(&self) -> &'static str {
        match self {
            NodeOutcome::Done { .. } => "done",
            NodeOutcome::Failed { .. } => "failed",
            NodeOutcome::Pending => "pending",
        }
    }
}

/// One node's entry in a rescue DAG, in DAG insertion order.
#[derive(Clone, Debug, PartialEq)]
pub struct RescueNode {
    /// Node name (unique in the DAG).
    pub name: String,
    /// What happened to it.
    pub outcome: NodeOutcome,
}

/// The rescue DAG: a bit-exact, resumable snapshot of a halted workflow.
#[derive(Clone, Debug, PartialEq)]
pub struct RescueDag {
    /// The workflow name ([`crate::DagSpec::name`]) the rescue belongs to.
    pub workflow: String,
    /// Virtual instant the rescue was written (the halt time).
    pub written_at: SimTime,
    /// Per-node outcomes, in the DAG's node insertion order.
    pub nodes: Vec<RescueNode>,
}

impl RescueDag {
    /// Names of nodes recorded as done.
    pub fn done_nodes(&self) -> Vec<&str> {
        self.select(|o| matches!(o, NodeOutcome::Done { .. }))
    }

    /// Names of nodes recorded as failed.
    pub fn failed_nodes(&self) -> Vec<&str> {
        self.select(|o| matches!(o, NodeOutcome::Failed { .. }))
    }

    /// Names of nodes recorded as pending.
    pub fn pending_nodes(&self) -> Vec<&str> {
        self.select(|o| matches!(o, NodeOutcome::Pending))
    }

    fn select(&self, f: impl Fn(&NodeOutcome) -> bool) -> Vec<&str> {
        self.nodes
            .iter()
            .filter(|n| f(&n.outcome))
            .map(|n| n.name.as_str())
            .collect()
    }

    /// Total execution time recorded on done nodes — the task-seconds a
    /// resume run salvages instead of re-spending.
    pub fn salvaged_compute(&self) -> SimDuration {
        self.nodes
            .iter()
            .filter_map(|n| match &n.outcome {
                NodeOutcome::Done { result } => Some(result.execution_time()),
                _ => None,
            })
            .fold(SimDuration::ZERO, |acc, d| acc + d)
    }

    /// Serialize to a JSON tree. Output bytes are hex-encoded and
    /// timestamps are exact nanosecond integers, so
    /// `from_json(to_json(r)) == r` bit-for-bit.
    pub fn to_json(&self) -> Value {
        let mut root = Map::new();
        root.insert("workflow", Value::from(self.workflow.clone()));
        root.insert("written_at_ns", Value::from(self.written_at.as_nanos()));
        let nodes: Vec<Value> = self
            .nodes
            .iter()
            .map(|n| {
                let mut m = Map::new();
                m.insert("name", Value::from(n.name.clone()));
                m.insert("state", Value::from(n.outcome.tag()));
                match &n.outcome {
                    NodeOutcome::Done { result } => {
                        m.insert("success", Value::from(result.success));
                        m.insert("output_hex", Value::from(to_hex(&result.output)));
                        m.insert("exec_node", Value::from(result.node.0 as u64));
                        m.insert("started_ns", Value::from(result.started.as_nanos()));
                        m.insert("finished_ns", Value::from(result.finished.as_nanos()));
                    }
                    NodeOutcome::Failed {
                        attempts,
                        last_error,
                    } => {
                        m.insert("attempts", Value::from(*attempts));
                        m.insert("last_error", Value::from(last_error.clone()));
                    }
                    NodeOutcome::Pending => {}
                }
                Value::Object(m)
            })
            .collect();
        root.insert("nodes", Value::Array(nodes));
        Value::Object(root)
    }

    /// Parse a rescue DAG back from [`RescueDag::to_json`] output.
    pub fn from_json(v: &Value) -> Result<RescueDag, String> {
        let workflow = get_str(v, "workflow")?.to_string();
        let written_at = SimTime::from_nanos(get_u64(v, "written_at_ns")?);
        let nodes = v
            .get("nodes")
            .and_then(|n| n.as_array())
            .ok_or_else(|| "rescue dag: missing nodes array".to_string())?;
        let mut out = Vec::with_capacity(nodes.len());
        for n in nodes {
            let name = get_str(n, "name")?.to_string();
            let outcome = match get_str(n, "state")? {
                "done" => NodeOutcome::Done {
                    result: JobResult {
                        success: match n.get("success") {
                            Some(Value::Bool(b)) => *b,
                            _ => true,
                        },
                        output: from_hex(get_str(n, "output_hex")?)?,
                        node: NodeId(get_u64(n, "exec_node")? as usize),
                        started: SimTime::from_nanos(get_u64(n, "started_ns")?),
                        finished: SimTime::from_nanos(get_u64(n, "finished_ns")?),
                    },
                },
                "failed" => NodeOutcome::Failed {
                    attempts: get_u64(n, "attempts")? as u32,
                    last_error: get_str(n, "last_error")?.to_string(),
                },
                "pending" => NodeOutcome::Pending,
                other => return Err(format!("rescue dag: unknown node state {other:?}")),
            };
            out.push(RescueNode { name, outcome });
        }
        Ok(RescueDag {
            workflow,
            written_at,
            nodes: out,
        })
    }

    /// Parse a rescue DAG from its JSON text (the printed form).
    pub fn parse(text: &str) -> Result<RescueDag, String> {
        let v = serde_json::from_str(text).map_err(|e| format!("rescue dag: {e}"))?;
        RescueDag::from_json(&v)
    }
}

impl std::fmt::Display for RescueDag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_json())
    }
}

fn to_hex(b: &Bytes) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(b.len() * 2);
    for byte in b.iter() {
        let _ = write!(s, "{byte:02x}");
    }
    s
}

fn from_hex(s: &str) -> Result<Bytes, String> {
    if !s.len().is_multiple_of(2) {
        return Err("rescue dag: odd-length hex output".to_string());
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let chars: Vec<char> = s.chars().collect();
    for pair in chars.chunks(2) {
        let hi = pair[0]
            .to_digit(16)
            .ok_or_else(|| format!("rescue dag: bad hex digit {:?}", pair[0]))?;
        let lo = pair[1]
            .to_digit(16)
            .ok_or_else(|| format!("rescue dag: bad hex digit {:?}", pair[1]))?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(Bytes::from(out))
}

fn get_u64(v: &Value, name: &str) -> Result<u64, String> {
    v.get(name)
        .and_then(|x| x.as_u64())
        .ok_or_else(|| format!("rescue dag: missing integer field {name:?}"))
}

fn get_str<'a>(v: &'a Value, name: &str) -> Result<&'a str, String> {
    v.get(name)
        .and_then(|x| x.as_str())
        .ok_or_else(|| format!("rescue dag: missing string field {name:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RescueDag {
        RescueDag {
            workflow: "wf".into(),
            written_at: SimTime::from_nanos(123_456_789_012),
            nodes: vec![
                RescueNode {
                    name: "a".into(),
                    outcome: NodeOutcome::Done {
                        result: JobResult {
                            success: true,
                            output: Bytes::from(vec![0x00, 0xff, 0x7f, 0x80, 0x0a]),
                            node: NodeId(3),
                            started: SimTime::from_nanos(1),
                            finished: SimTime::from_nanos(17_000_000_001),
                        },
                    },
                },
                RescueNode {
                    name: "b".into(),
                    outcome: NodeOutcome::Failed {
                        attempts: 5,
                        last_error: "boom: \"quoted\" and 🦀".into(),
                    },
                },
                RescueNode {
                    name: "c".into(),
                    outcome: NodeOutcome::Pending,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_bit_exact() {
        let r = sample();
        let back = RescueDag::parse(&r.to_string()).unwrap();
        assert_eq!(r, back);
        // The recorded output bytes survive exactly, including non-UTF8.
        match &back.nodes[0].outcome {
            NodeOutcome::Done { result } => {
                assert_eq!(&result.output[..], &[0x00, 0xff, 0x7f, 0x80, 0x0a]);
                assert_eq!(result.started.as_nanos(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn selectors_partition_the_nodes() {
        let r = sample();
        assert_eq!(r.done_nodes(), vec!["a"]);
        assert_eq!(r.failed_nodes(), vec!["b"]);
        assert_eq!(r.pending_nodes(), vec!["c"]);
        assert_eq!(
            r.salvaged_compute(),
            SimDuration::from_nanos(17_000_000_000)
        );
    }

    #[test]
    fn malformed_json_is_a_typed_error() {
        assert!(RescueDag::parse("{").is_err());
        assert!(RescueDag::parse("{\"workflow\": \"w\"}").is_err());
        let bad_hex = sample().to_string().replace("00ff7f800a", "zz");
        assert!(RescueDag::parse(&bad_hex).is_err());
    }
}
