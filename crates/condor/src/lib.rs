//! # swf-condor
//!
//! HTCondor-style batch system for the *Serverless Computing for Dynamic HPC
//! Workflows* reproduction: a schedd job queue, ClassAd-lite matchmaking in
//! periodic negotiation cycles, per-node startds with slot claims and
//! sandbox file transfer, and a DAGMan engine with dependencies, retries and
//! throttles.
//!
//! The paper schedules every workflow task — including the serverless
//! wrapper tasks that synchronously invoke Knative — through HTCondor, so
//! negotiation-cycle and DAGMan-poll latencies dominate workflow makespans
//! (the 25 s/stage scale of Fig. 6).

#![warn(missing_docs)]

pub mod classad;
pub mod classad_parser;
pub mod dagman;
pub mod error;
pub mod job;
pub mod negotiator;
pub mod pool;
pub mod poolscaler;
pub mod rescue;
pub mod schedd;
pub mod startd;

pub use classad::{AdValue, ClassAd, CmpOp, Expr};
pub use classad_parser::{parse_expr, ParseError};
pub use dagman::{
    run_dag, run_dag_resumable, DagNode, DagReport, DagRun, DagSpec, DagmanConfig, FailurePolicy,
};
pub use error::{CondorError, DagProgress};
pub use job::{JobContext, JobFn, JobId, JobResult, JobSpec, JobStatus, LocalBoxFuture};
pub use negotiator::{Negotiator, NegotiatorConfig};
pub use pool::{Condor, CondorConfig};
pub use poolscaler::{PoolScaleDecision, PoolScaleListener, PoolScaler, PoolScalerConfig};
pub use rescue::{NodeOutcome, RescueDag, RescueNode};
pub use schedd::Schedd;
pub use startd::{Startd, StartdConfig};
