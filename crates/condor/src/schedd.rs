//! The schedd: job queue, status tracking, completion waiting.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use swf_simcore::sync::Notify;
use swf_simcore::SimTime;

use crate::error::CondorError;
use crate::job::{JobId, JobResult, JobSpec, JobStatus};

struct JobRecord {
    spec: JobSpec,
    status: JobStatus,
    submitted: SimTime,
    /// Claim epoch: bumped whenever the schedd reclaims the job from a
    /// lost node. Status reports from a superseded claim carry a stale
    /// epoch and are discarded, so a crashed node's late completion can
    /// never shadow the re-matched attempt.
    epoch: u64,
}

struct State {
    jobs: BTreeMap<JobId, JobRecord>,
    next_id: u64,
    submitted_total: u64,
    completed_total: u64,
}

/// The job queue daemon.
#[derive(Clone)]
pub struct Schedd {
    state: Rc<RefCell<State>>,
    changed: Notify,
    version: Rc<Cell<u64>>,
}

impl Default for Schedd {
    fn default() -> Self {
        Self::new()
    }
}

impl Schedd {
    /// Empty queue.
    pub fn new() -> Self {
        Schedd {
            state: Rc::new(RefCell::new(State {
                jobs: BTreeMap::new(),
                next_id: 1,
                submitted_total: 0,
                completed_total: 0,
            })),
            changed: Notify::new(),
            version: Rc::new(Cell::new(0)),
        }
    }

    fn bump(&self) {
        self.version.set(self.version.get() + 1);
        self.changed.notify_waiters();
    }

    /// Queue version (bumps on every status change).
    pub fn version(&self) -> u64 {
        self.version.get()
    }

    /// Wait for any queue change since `seen`; returns the new version.
    pub async fn changed(&self, seen: u64) -> u64 {
        loop {
            let v = self.version.get();
            if v > seen {
                return v;
            }
            self.changed.notified().await;
        }
    }

    /// Submit a job; returns its id.
    pub fn submit(&self, spec: JobSpec) -> JobId {
        // Some unit tests submit outside a simulation; clamp to t=0 there.
        let submitted = if swf_simcore::try_current().is_some() {
            swf_simcore::now()
        } else {
            SimTime::ZERO
        };
        let mut s = self.state.borrow_mut();
        let id = JobId(s.next_id);
        s.next_id += 1;
        s.submitted_total += 1;
        s.jobs.insert(
            id,
            JobRecord {
                spec,
                status: JobStatus::Idle,
                submitted,
                epoch: 0,
            },
        );
        drop(s);
        self.bump();
        id
    }

    /// When a job entered the queue (for queue-time spans).
    pub fn submitted_at(&self, id: JobId) -> Result<SimTime, CondorError> {
        self.state
            .borrow()
            .jobs
            .get(&id)
            .map(|r| r.submitted)
            .ok_or(CondorError::NoSuchJob(id))
    }

    /// Current status of a job.
    pub fn status(&self, id: JobId) -> Result<JobStatus, CondorError> {
        self.state
            .borrow()
            .jobs
            .get(&id)
            .map(|r| r.status.clone())
            .ok_or(CondorError::NoSuchJob(id))
    }

    /// The spec of a job (for the negotiator/startd).
    pub fn spec(&self, id: JobId) -> Result<JobSpec, CondorError> {
        self.state
            .borrow()
            .jobs
            .get(&id)
            .map(|r| r.spec.clone())
            .ok_or(CondorError::NoSuchJob(id))
    }

    /// Idle jobs in negotiation order: priority desc, then submit order.
    pub fn idle_jobs(&self) -> Vec<JobId> {
        let s = self.state.borrow();
        let mut idle: Vec<(i32, JobId)> = s
            .jobs
            .iter()
            .filter(|(_, r)| r.status == JobStatus::Idle)
            .map(|(id, r)| (r.spec.priority, *id))
            .collect();
        idle.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        idle.into_iter().map(|(_, id)| id).collect()
    }

    /// Update a job's status.
    pub fn set_status(&self, id: JobId, status: JobStatus) {
        let mut s = self.state.borrow_mut();
        if let Some(rec) = s.jobs.get_mut(&id) {
            if matches!(status, JobStatus::Completed(_))
                && !matches!(rec.status, JobStatus::Completed(_))
            {
                s.completed_total += 1;
            }
            if let Some(rec) = s.jobs.get_mut(&id) {
                rec.status = status;
            }
        }
        drop(s);
        self.bump();
    }

    /// The job's current claim epoch (see [`Schedd::set_status_epoch`]).
    pub fn epoch(&self, id: JobId) -> Result<u64, CondorError> {
        self.state
            .borrow()
            .jobs
            .get(&id)
            .map(|r| r.epoch)
            .ok_or(CondorError::NoSuchJob(id))
    }

    /// Update a job's status only when `epoch` is still the job's current
    /// claim epoch. Returns whether the write was accepted. Startds report
    /// through this path so a claim superseded by [`Schedd::requeue_running_on`]
    /// cannot resurrect a stale Running/Completed state.
    pub fn set_status_epoch(&self, id: JobId, epoch: u64, status: JobStatus) -> bool {
        {
            let s = self.state.borrow();
            match s.jobs.get(&id) {
                Some(rec) if rec.epoch == epoch => {}
                _ => return false,
            }
        }
        self.set_status(id, status);
        true
    }

    /// Reclaim every job currently Running on `node`: back to Idle with a
    /// bumped claim epoch, so the negotiator re-matches them elsewhere and
    /// any late report from the lost node is discarded. Returns the
    /// requeued job ids (ascending).
    pub fn requeue_running_on(&self, node: swf_cluster::NodeId) -> Vec<JobId> {
        let mut requeued = Vec::new();
        {
            let mut s = self.state.borrow_mut();
            for (id, rec) in s.jobs.iter_mut() {
                if rec.status == JobStatus::Running(node) {
                    rec.status = JobStatus::Idle;
                    rec.epoch += 1;
                    requeued.push(*id);
                }
            }
        }
        if !requeued.is_empty() {
            let obs = swf_obs::current();
            obs.counter_add("condor.jobs_requeued", requeued.len() as u64);
            self.bump();
        }
        requeued
    }

    /// Remove a job from the queue (only Idle jobs can be removed cleanly).
    pub fn remove(&self, id: JobId) -> Result<(), CondorError> {
        let mut s = self.state.borrow_mut();
        let rec = s.jobs.get_mut(&id).ok_or(CondorError::NoSuchJob(id))?;
        match rec.status {
            JobStatus::Idle => {
                rec.status = JobStatus::Removed;
                drop(s);
                self.bump();
                Ok(())
            }
            _ => Err(CondorError::NotIdle(id)),
        }
    }

    /// Await a job's completion.
    pub async fn wait(&self, id: JobId) -> Result<JobResult, CondorError> {
        loop {
            match self.status(id)? {
                JobStatus::Completed(r) => return Ok(r),
                JobStatus::Removed => return Err(CondorError::JobRemoved(id)),
                _ => {}
            }
            self.changed.notified().await;
        }
    }

    /// Jobs in the queue, any state.
    pub fn queue_len(&self) -> usize {
        self.state.borrow().jobs.len()
    }

    /// Jobs submitted over the schedd's lifetime.
    pub fn submitted_total(&self) -> u64 {
        self.state.borrow().submitted_total
    }

    /// Jobs completed over the schedd's lifetime.
    pub fn completed_total(&self) -> u64 {
        self.state.borrow().completed_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use swf_cluster::NodeId;
    use swf_simcore::{secs, sleep, spawn, Sim, SimTime};

    fn noop_spec() -> JobSpec {
        JobSpec::new(|_ctx| Box::pin(async { Ok(Bytes::new()) }))
    }

    #[test]
    fn submit_and_status() {
        let s = Schedd::new();
        let id = s.submit(noop_spec());
        assert_eq!(s.status(id).unwrap(), JobStatus::Idle);
        assert_eq!(s.queue_len(), 1);
        assert!(s.status(JobId(99)).is_err());
    }

    #[test]
    fn idle_order_respects_priority_then_fifo() {
        let s = Schedd::new();
        let a = s.submit(noop_spec());
        let b = s.submit(noop_spec().with_priority(10));
        let c = s.submit(noop_spec());
        assert_eq!(s.idle_jobs(), vec![b, a, c]);
        s.set_status(a, JobStatus::Running(NodeId(1)));
        assert_eq!(s.idle_jobs(), vec![b, c]);
    }

    #[test]
    fn wait_resolves_on_completion() {
        let sim = Sim::new();
        sim.block_on(async {
            let s = Schedd::new();
            let id = s.submit(noop_spec());
            let s2 = s.clone();
            spawn(async move {
                sleep(secs(3.0)).await;
                s2.set_status(
                    id,
                    JobStatus::Completed(JobResult {
                        success: true,
                        output: Bytes::from_static(b"done"),
                        node: NodeId(2),
                        started: SimTime::ZERO,
                        finished: swf_simcore::now(),
                    }),
                );
            });
            let r = s.wait(id).await.unwrap();
            assert!(r.success);
            assert_eq!(&r.output[..], b"done");
            assert_eq!(s.completed_total(), 1);
        });
    }

    #[test]
    fn remove_only_idle() {
        let sim = Sim::new();
        sim.block_on(async {
            let s = Schedd::new();
            let id = s.submit(noop_spec());
            s.set_status(id, JobStatus::Running(NodeId(1)));
            assert!(matches!(s.remove(id), Err(CondorError::NotIdle(_))));
            let id2 = s.submit(noop_spec());
            s.remove(id2).unwrap();
            assert!(matches!(s.wait(id2).await, Err(CondorError::JobRemoved(_))));
        });
    }

    #[test]
    fn requeue_bumps_epoch_and_discards_stale_reports() {
        let sim = Sim::new();
        sim.block_on(async {
            let s = Schedd::new();
            let id = s.submit(noop_spec());
            assert_eq!(s.epoch(id).unwrap(), 0);
            s.set_status(id, JobStatus::Running(NodeId(1)));
            let requeued = s.requeue_running_on(NodeId(1));
            assert_eq!(requeued, vec![id]);
            assert_eq!(s.status(id).unwrap(), JobStatus::Idle);
            assert_eq!(s.epoch(id).unwrap(), 1);
            // The lost node's late completion (epoch 0) is discarded.
            let stale = s.set_status_epoch(
                id,
                0,
                JobStatus::Completed(JobResult {
                    success: true,
                    output: Bytes::from_static(b"ghost"),
                    node: NodeId(1),
                    started: SimTime::ZERO,
                    finished: SimTime::ZERO,
                }),
            );
            assert!(!stale);
            assert_eq!(s.status(id).unwrap(), JobStatus::Idle);
            assert_eq!(s.completed_total(), 0);
            // The re-matched claim (epoch 1) lands.
            let fresh = s.set_status_epoch(
                id,
                1,
                JobStatus::Completed(JobResult {
                    success: true,
                    output: Bytes::from_static(b"real"),
                    node: NodeId(2),
                    started: SimTime::ZERO,
                    finished: SimTime::ZERO,
                }),
            );
            assert!(fresh);
            let r = s.wait(id).await.unwrap();
            assert_eq!(&r.output[..], b"real");
            assert_eq!(s.completed_total(), 1);
        });
    }

    #[test]
    fn requeue_ignores_jobs_on_other_nodes() {
        let s = Schedd::new();
        let a = s.submit(noop_spec());
        let b = s.submit(noop_spec());
        s.set_status(a, JobStatus::Running(NodeId(1)));
        s.set_status(b, JobStatus::Running(NodeId(2)));
        assert_eq!(s.requeue_running_on(NodeId(3)), vec![]);
        assert_eq!(s.requeue_running_on(NodeId(2)), vec![b]);
        assert_eq!(s.status(a).unwrap(), JobStatus::Running(NodeId(1)));
        assert_eq!(s.epoch(a).unwrap(), 0);
        assert_eq!(s.epoch(b).unwrap(), 1);
    }

    #[test]
    fn changed_wakes_watchers() {
        let sim = Sim::new();
        sim.block_on(async {
            let s = Schedd::new();
            let v0 = s.version();
            let s2 = s.clone();
            let h = spawn(async move { s2.changed(v0).await });
            sleep(secs(1.0)).await;
            s.submit(noop_spec());
            let v = h.await;
            assert!(v > v0);
        });
    }
}
