//! Text parser for ClassAd-lite requirement expressions.
//!
//! Supports the grammar HTCondor submit files actually use for the paper's
//! workloads:
//!
//! ```text
//! expr    := or
//! or      := and ( "||" and )*
//! and     := unary ( "&&" unary )*
//! unary   := "!" unary | cmp
//! cmp     := term ( ("==" | "!=" | ">=" | "<=" | ">" | "<") term )?
//! term    := "(" expr ")" | literal | attribute
//! literal := integer | float | string | "true" | "false"
//! attr    := ["TARGET." | "MY."] identifier      (TARGET is the default)
//! ```

use crate::classad::{AdValue, CmpOp, Expr};

/// Parse errors with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input.
    pub at: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    OpenParen,
    CloseParen,
    AndAnd,
    OrOr,
    Not,
    Cmp(CmpOp),
    Dot,
}

fn lex(input: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                toks.push((i, Tok::OpenParen));
                i += 1;
            }
            ')' => {
                toks.push((i, Tok::CloseParen));
                i += 1;
            }
            '.' => {
                toks.push((i, Tok::Dot));
                i += 1;
            }
            '&' => {
                if bytes.get(i + 1) == Some(&b'&') {
                    toks.push((i, Tok::AndAnd));
                    i += 2;
                } else {
                    return Err(ParseError {
                        at: i,
                        message: "expected '&&'".into(),
                    });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    toks.push((i, Tok::OrOr));
                    i += 2;
                } else {
                    return Err(ParseError {
                        at: i,
                        message: "expected '||'".into(),
                    });
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((i, Tok::Cmp(CmpOp::Ne)));
                    i += 2;
                } else {
                    toks.push((i, Tok::Not));
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((i, Tok::Cmp(CmpOp::Eq)));
                    i += 2;
                } else {
                    return Err(ParseError {
                        at: i,
                        message: "expected '=='".into(),
                    });
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((i, Tok::Cmp(CmpOp::Ge)));
                    i += 2;
                } else {
                    toks.push((i, Tok::Cmp(CmpOp::Gt)));
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push((i, Tok::Cmp(CmpOp::Le)));
                    i += 2;
                } else {
                    toks.push((i, Tok::Cmp(CmpOp::Lt)));
                    i += 1;
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ParseError {
                        at: i,
                        message: "unterminated string".into(),
                    });
                }
                toks.push((i, Tok::Str(input[start..j].to_string())));
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '-' => {
                let start = i;
                let mut j = i + 1;
                let mut is_float = false;
                while j < bytes.len()
                    && (bytes[j].is_ascii_digit() || bytes[j] == b'.' || bytes[j] == b'e')
                {
                    if bytes[j] == b'.' || bytes[j] == b'e' {
                        is_float = true;
                    }
                    j += 1;
                }
                let text = &input[start..j];
                if is_float {
                    let v = text.parse::<f64>().map_err(|_| ParseError {
                        at: start,
                        message: format!("bad float literal '{text}'"),
                    })?;
                    toks.push((start, Tok::Float(v)));
                } else {
                    let v = text.parse::<i64>().map_err(|_| ParseError {
                        at: start,
                        message: format!("bad integer literal '{text}'"),
                    })?;
                    toks.push((start, Tok::Int(v)));
                }
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i + 1;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                toks.push((start, Tok::Ident(input[start..j].to_string())));
                i = j;
            }
            other => {
                return Err(ParseError {
                    at: i,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn at(&self) -> usize {
        self.toks.get(self.pos).map(|(a, _)| *a).unwrap_or(self.len)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        match self.bump() {
            Some(ref t) if t == want => Ok(()),
            other => Err(ParseError {
                at: self.at(),
                message: format!("expected {want:?}, found {other:?}"),
            }),
        }
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_and()?;
        while self.peek() == Some(&Tok::OrOr) {
            self.bump();
            let right = self.parse_and()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.parse_unary()?;
        while self.peek() == Some(&Tok::AndAnd) {
            self.bump();
            let right = self.parse_unary()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == Some(&Tok::Not) {
            self.bump();
            let inner = self.parse_unary()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.parse_cmp()
    }

    fn parse_cmp(&mut self) -> Result<Expr, ParseError> {
        let left = self.parse_term()?;
        if let Some(Tok::Cmp(op)) = self.peek().cloned() {
            self.bump();
            let right = self.parse_term()?;
            return Ok(Expr::Cmp(Box::new(left), op, Box::new(right)));
        }
        Ok(left)
    }

    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        let at = self.at();
        match self.bump() {
            Some(Tok::OpenParen) => {
                let inner = self.parse_or()?;
                self.expect(&Tok::CloseParen)?;
                Ok(inner)
            }
            Some(Tok::Int(v)) => Ok(Expr::Lit(AdValue::Int(v))),
            Some(Tok::Float(v)) => Ok(Expr::Lit(AdValue::Float(v))),
            Some(Tok::Str(s)) => Ok(Expr::Lit(AdValue::Str(s))),
            Some(Tok::Ident(name)) => {
                let lower = name.to_ascii_lowercase();
                if lower == "true" {
                    return Ok(Expr::Lit(AdValue::Bool(true)));
                }
                if lower == "false" {
                    return Ok(Expr::Lit(AdValue::Bool(false)));
                }
                // Scope prefix?
                if (lower == "target" || lower == "my") && self.peek() == Some(&Tok::Dot) {
                    self.bump();
                    match self.bump() {
                        Some(Tok::Ident(attr)) => {
                            if lower == "target" {
                                Ok(Expr::Target(attr))
                            } else {
                                Ok(Expr::My(attr))
                            }
                        }
                        other => Err(ParseError {
                            at: self.at(),
                            message: format!("expected attribute after scope, found {other:?}"),
                        }),
                    }
                } else {
                    // Bare identifiers reference the TARGET (machine) ad,
                    // as in HTCondor requirements.
                    Ok(Expr::Target(name))
                }
            }
            other => Err(ParseError {
                at,
                message: format!("unexpected token {other:?}"),
            }),
        }
    }
}

/// Parse a requirements expression from text.
pub fn parse_expr(input: &str) -> Result<Expr, ParseError> {
    let toks = lex(input)?;
    if toks.is_empty() {
        return Err(ParseError {
            at: 0,
            message: "empty expression".into(),
        });
    }
    let mut p = Parser {
        toks,
        pos: 0,
        len: input.len(),
    };
    let expr = p.parse_or()?;
    if p.pos != p.toks.len() {
        return Err(ParseError {
            at: p.at(),
            message: "trailing input after expression".into(),
        });
    }
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classad::ClassAd;

    fn machine() -> ClassAd {
        ClassAd::new()
            .set("Cpus", 8i64)
            .set("Memory", 32768i64)
            .set("Arch", "X86_64")
            .set("HasDocker", true)
    }

    fn eval(src: &str) -> bool {
        parse_expr(src).unwrap().eval(&ClassAd::new(), &machine())
    }

    #[test]
    fn simple_comparisons() {
        assert!(eval("Cpus >= 4"));
        assert!(!eval("Cpus >= 16"));
        assert!(eval("Memory > 1024 && Cpus == 8"));
        assert!(eval("Arch == \"X86_64\""));
        assert!(!eval("Arch != \"X86_64\""));
        assert!(eval("Cpus < 100"));
        assert!(eval("Cpus <= 8"));
    }

    #[test]
    fn boolean_structure_and_precedence() {
        // && binds tighter than ||.
        assert!(eval("Cpus >= 100 || Cpus >= 4 && Memory >= 1024"));
        assert!(!eval("(Cpus >= 100 || Cpus >= 4) && Memory >= 99999999"));
        assert!(eval("!(Cpus < 4)"));
        assert!(eval("HasDocker"));
        assert!(!eval("!HasDocker"));
        assert!(eval("true"));
        assert!(!eval("false"));
    }

    #[test]
    fn scoped_attributes() {
        let job = ClassAd::new().set("RequestCpus", 4i64);
        let e = parse_expr("TARGET.Cpus >= MY.RequestCpus").unwrap();
        assert!(e.eval(&job, &machine()));
        let e2 = parse_expr("MY.RequestCpus > TARGET.Cpus").unwrap();
        assert!(!e2.eval(&job, &machine()));
    }

    #[test]
    fn float_and_negative_literals() {
        assert!(eval("Memory >= 1024.5"));
        assert!(eval("Cpus > -3"));
    }

    #[test]
    fn parse_errors_carry_positions() {
        let e = parse_expr("Cpus >").unwrap_err();
        assert!(e.message.contains("unexpected token"));
        let e = parse_expr("Cpus & 1").unwrap_err();
        assert_eq!(e.at, 5);
        assert!(parse_expr("").is_err());
        assert!(parse_expr("\"open").is_err());
        assert!(parse_expr("Cpus >= 4 extra").is_err());
        assert!(parse_expr("(Cpus >= 4").is_err());
        assert!(parse_expr("Cpus = 4").is_err());
        assert!(parse_expr("Cpus >= 9999999999999999999999").is_err());
        assert!(parse_expr("@").is_err());
    }

    #[test]
    fn whitespace_is_insensitive() {
        assert!(eval("  Cpus\t>=\n4  "));
    }

    #[test]
    fn round_trips_through_jobspec_usage() {
        // The parsed expression plugs straight into a JobSpec.
        let req = parse_expr("HasDocker && Memory >= 2048").unwrap();
        let ad = ClassAd::new();
        assert!(req.eval(&ad, &machine()));
    }
}
