//! Worker-pool autoscaling for the startd fleet, KPA-style.
//!
//! The scaler manages a designated subset of the pool's startds. A
//! scaled-in worker is *drained* — running jobs finish, the negotiator
//! stops matching there — and scale-out simply undrains it, so growing
//! and shrinking the pool reuses the `condor_drain` machinery that chaos
//! and operators already exercise. Demand is measured like the Knative
//! KPA measures concurrency: busy slots plus queued idle jobs against a
//! utilization target of one job per slot, with min/max clamps and a
//! per-tick scale-up rate limit.
//!
//! Nothing spawns this loop by default; pools without a scaler behave
//! exactly as before it existed.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use swf_cluster::NodeId;
use swf_simcore::{now, secs, sleep, SimDuration, SimTime};

use crate::pool::Condor;

/// Called with `(node, active)` on every scale event, so an external
/// ledger (e.g. cost accounting) can bill node-seconds.
pub type PoolScaleListener = Rc<dyn Fn(NodeId, bool)>;

/// Worker-pool scaler parameters.
#[derive(Clone)]
pub struct PoolScalerConfig {
    /// The workers this scaler manages (drains and undrains). The rest
    /// of the pool is fixed capacity it never touches.
    pub nodes: Vec<NodeId>,
    /// Lower clamp on active (undrained, unfailed) managed workers.
    pub min_active: usize,
    /// Upper clamp on active managed workers.
    pub max_active: usize,
    /// Most workers undrained in a single tick (KPA's max-scale-up-rate).
    pub max_scale_up_per_tick: usize,
    /// Drain every managed worker above `min_active` at start, so the
    /// pool grows from its floor on demand.
    pub start_drained: bool,
    /// Reconcile interval.
    pub tick: SimDuration,
    /// How long a managed worker must be fully idle before it is drained
    /// back in.
    pub idle_cooldown: SimDuration,
}

impl Default for PoolScalerConfig {
    fn default() -> Self {
        PoolScalerConfig {
            nodes: Vec::new(),
            min_active: 0,
            max_active: usize::MAX,
            max_scale_up_per_tick: 1,
            start_drained: true,
            tick: secs(1.0),
            idle_cooldown: secs(30.0),
        }
    }
}

/// One scaling decision (exposed for tests/ablations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolScaleDecision {
    /// Queued jobs with no claim.
    pub idle_jobs: usize,
    /// Claimed slots across the whole pool.
    pub busy_slots: usize,
    /// Active managed workers before the decision.
    pub active: usize,
    /// Active managed workers the decision wants.
    pub desired: usize,
}

/// The scaler control loop. Cheap to clone; all state is shared.
#[derive(Clone)]
pub struct PoolScaler {
    condor: Condor,
    config: PoolScalerConfig,
    state: Rc<RefCell<ScalerState>>,
    listener: Option<PoolScaleListener>,
}

struct ScalerState {
    /// Workers this loop drained (and may therefore undrain).
    drained: BTreeSet<NodeId>,
    /// Last instant each managed worker had a claimed slot.
    last_busy: BTreeMap<NodeId, SimTime>,
    scale_ups: u64,
    scale_downs: u64,
}

impl PoolScaler {
    /// New scaler over `condor`. Does nothing until [`run`](Self::run)
    /// (or [`tick`](Self::tick)) is driven.
    pub fn new(condor: Condor, config: PoolScalerConfig) -> Self {
        PoolScaler {
            condor,
            config,
            state: Rc::new(RefCell::new(ScalerState {
                drained: BTreeSet::new(),
                last_busy: BTreeMap::new(),
                scale_ups: 0,
                scale_downs: 0,
            })),
            listener: None,
        }
    }

    /// Attach a scale-event listener (e.g. a cost ledger).
    pub fn with_listener(mut self, listener: PoolScaleListener) -> Self {
        self.listener = Some(listener);
        self
    }

    /// Scale-out events performed so far.
    pub fn scale_ups(&self) -> u64 {
        self.state.borrow().scale_ups
    }

    /// Scale-in events performed so far.
    pub fn scale_downs(&self) -> u64 {
        self.state.borrow().scale_downs
    }

    /// Run forever, reconciling at the configured tick.
    pub async fn run(self) {
        if self.config.start_drained {
            let surplus: Vec<NodeId> = self
                .config
                .nodes
                .iter()
                .copied()
                .skip(self.config.min_active)
                .collect();
            for id in surplus {
                self.scale_in(id);
            }
        }
        loop {
            self.tick();
            sleep(self.config.tick).await;
        }
    }

    /// Compute the current decision without acting on it.
    pub fn decide(&self) -> PoolScaleDecision {
        let idle_jobs = self.condor.schedd().idle_jobs().len();
        let mut busy_slots = 0usize;
        let mut fixed_capacity = 0usize;
        let mut slots_per_node = 1usize;
        let mut active = 0usize;
        for s in self.condor.startds() {
            let id = s.node().id();
            let managed = self.config.nodes.contains(&id);
            if !s.is_failed() {
                busy_slots += s.total_slots() - s.free_slots();
                if managed {
                    slots_per_node = slots_per_node.max(s.total_slots());
                    if !s.is_draining() {
                        active += 1;
                    }
                } else {
                    fixed_capacity += s.total_slots();
                }
            }
        }
        let demand_slots = busy_slots + idle_jobs;
        let needed = demand_slots
            .saturating_sub(fixed_capacity)
            .div_ceil(slots_per_node);
        let desired = needed
            .max(self.config.min_active)
            .min(self.config.max_active)
            .min(self.config.nodes.len());
        PoolScaleDecision {
            idle_jobs,
            busy_slots,
            active,
            desired,
        }
    }

    /// One reconcile pass (public for tests/ablations).
    pub fn tick(&self) {
        // Release bookkeeping for workers someone else undrained.
        {
            let mut s = self.state.borrow_mut();
            let woken: Vec<NodeId> = s
                .drained
                .iter()
                .copied()
                .filter(|id| {
                    self.condor
                        .startds()
                        .iter()
                        .find(|d| d.node().id() == *id)
                        .map(|d| !d.is_draining())
                        .unwrap_or(true)
                })
                .collect();
            for id in woken {
                s.drained.remove(&id);
            }
        }

        let decision = self.decide();
        let t = now();

        if decision.desired > decision.active {
            let deficit = decision.desired - decision.active;
            let batch = deficit.min(self.config.max_scale_up_per_tick.max(1));
            let candidates: Vec<NodeId> = {
                let s = self.state.borrow();
                s.drained
                    .iter()
                    .copied()
                    .filter(|id| !self.condor.node_is_failed(*id))
                    .take(batch)
                    .collect()
            };
            for id in candidates {
                self.scale_out(id);
            }
            return;
        }

        // Scale-in: drain managed workers that have been fully idle past
        // the cooldown, never below the decision's desired count.
        let mut active = decision.active;
        let mut to_drain: Vec<NodeId> = Vec::new();
        {
            let mut s = self.state.borrow_mut();
            for d in self.condor.startds() {
                let id = d.node().id();
                if !self.config.nodes.contains(&id) || d.is_failed() {
                    continue;
                }
                if d.free_slots() < d.total_slots() {
                    s.last_busy.insert(id, t);
                    continue;
                }
                if d.is_draining() || active <= decision.desired.max(self.config.min_active) {
                    continue;
                }
                let last = s.last_busy.get(&id).copied().unwrap_or(SimTime::ZERO);
                if t.since(last) >= self.config.idle_cooldown {
                    to_drain.push(id);
                    active -= 1;
                }
            }
        }
        for id in to_drain {
            self.scale_in(id);
        }
    }

    fn scale_in(&self, id: NodeId) {
        self.condor.drain_node(id);
        {
            let mut s = self.state.borrow_mut();
            s.drained.insert(id);
            s.scale_downs += 1;
        }
        let obs = swf_obs::current();
        obs.counter_add("condor.pool.scale_downs", 1);
        obs.observe("condor.pool.active_nodes", self.active_managed() as f64);
        if let Some(l) = &self.listener {
            l(id, false);
        }
    }

    fn scale_out(&self, id: NodeId) {
        self.condor.undrain_node(id);
        {
            let mut s = self.state.borrow_mut();
            s.drained.remove(&id);
            s.scale_ups += 1;
        }
        let obs = swf_obs::current();
        obs.counter_add("condor.pool.scale_ups", 1);
        obs.observe("condor.pool.active_nodes", self.active_managed() as f64);
        if let Some(l) = &self.listener {
            l(id, true);
        }
    }

    /// Managed workers currently active (undrained and unfailed).
    fn active_managed(&self) -> usize {
        self.condor
            .startds()
            .iter()
            .filter(|s| {
                self.config.nodes.contains(&s.node().id()) && !s.is_draining() && !s.is_failed()
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobContext, JobSpec};
    use crate::negotiator::NegotiatorConfig;
    use crate::pool::CondorConfig;
    use bytes::Bytes;
    use swf_cluster::{Cluster, ClusterConfig};
    use swf_simcore::{spawn, Sim};

    fn rig(config: PoolScalerConfig) -> (Condor, PoolScaler) {
        let cluster = Cluster::new(&ClusterConfig::default());
        let condor = Condor::start(
            &cluster,
            CondorConfig {
                negotiator: NegotiatorConfig {
                    cycle_interval: secs(1.0),
                    match_latency: swf_simcore::SimDuration::ZERO,
                    ..NegotiatorConfig::default()
                },
                ..CondorConfig::default()
            },
        );
        let scaler = PoolScaler::new(condor.clone(), config);
        spawn(scaler.clone().run());
        (condor, scaler)
    }

    fn sleep_job(d: f64) -> JobSpec {
        JobSpec::new(move |ctx: JobContext| {
            Box::pin(async move {
                ctx.compute(secs(d)).await;
                Ok(Bytes::from_static(b"ok"))
            })
        })
    }

    #[test]
    fn queue_pressure_scales_out_and_idle_cooldown_scales_in() {
        let sim = Sim::new();
        sim.block_on(async {
            let (condor, scaler) = rig(PoolScalerConfig {
                nodes: vec![NodeId(2), NodeId(3)],
                min_active: 0,
                max_active: 2,
                max_scale_up_per_tick: 1,
                start_drained: true,
                tick: secs(1.0),
                idle_cooldown: secs(5.0),
            });
            swf_simcore::sleep(secs(0.5)).await;
            let draining = |n: usize| {
                condor
                    .startds()
                    .iter()
                    .find(|s| s.node().id() == NodeId(n))
                    .unwrap()
                    .is_draining()
            };
            assert!(draining(2) && draining(3), "surplus starts drained");

            // More work than node 1 can hold: 10 × 8-core… the default
            // startd is 8 slots, so 20 long jobs oversubscribe one node.
            let ids: Vec<_> = (0..20).map(|_| condor.submit(sleep_job(6.0))).collect();
            swf_simcore::sleep(secs(4.0)).await;
            assert!(scaler.scale_ups() >= 1, "queue pressure must scale out");
            assert!(!draining(2), "lowest managed worker undrained first");
            for id in ids {
                condor.wait(id).await.unwrap();
            }
            // Demand gone: the cooldown drains the surplus back in.
            swf_simcore::sleep(secs(15.0)).await;
            assert!(draining(2) && draining(3));
            assert!(scaler.scale_downs() >= 3);
            assert_eq!(condor.schedd().completed_total(), 20);
            assert_eq!(condor.schedd().idle_jobs().len(), 0);
        });
    }

    #[test]
    fn clamps_and_rate_limit_bound_the_pool() {
        let sim = Sim::new();
        sim.block_on(async {
            let (condor, scaler) = rig(PoolScalerConfig {
                nodes: vec![NodeId(2), NodeId(3)],
                min_active: 1,
                max_active: 1,
                max_scale_up_per_tick: 1,
                start_drained: true,
                tick: secs(1.0),
                idle_cooldown: secs(3.0),
            });
            swf_simcore::sleep(secs(0.5)).await;
            // min_active keeps one managed worker live even with no load.
            let d = scaler.decide();
            assert_eq!(d.desired, 1);
            assert_eq!(d.active, 1);
            // A burst cannot push past max_active = 1.
            let ids: Vec<_> = (0..30).map(|_| condor.submit(sleep_job(2.0))).collect();
            swf_simcore::sleep(secs(5.0)).await;
            assert!(scaler.decide().desired <= 1);
            assert_eq!(scaler.scale_ups(), 0, "max_active clamps scale-out");
            for id in ids {
                condor.wait(id).await.unwrap();
            }
        });
    }

    #[test]
    fn never_undrains_a_failed_worker() {
        let sim = Sim::new();
        sim.block_on(async {
            let (condor, scaler) = rig(PoolScalerConfig {
                nodes: vec![NodeId(3)],
                min_active: 0,
                max_active: 1,
                max_scale_up_per_tick: 1,
                start_drained: true,
                tick: secs(1.0),
                idle_cooldown: secs(3.0),
            });
            swf_simcore::sleep(secs(0.5)).await;
            condor.fail_node(NodeId(3));
            let ids: Vec<_> = (0..30).map(|_| condor.submit(sleep_job(1.0))).collect();
            swf_simcore::sleep(secs(6.0)).await;
            assert_eq!(scaler.scale_ups(), 0, "failed workers stay out");
            assert!(condor.node_is_failed(NodeId(3)));
            for id in ids {
                condor.wait(id).await.unwrap();
            }
        });
    }
}
