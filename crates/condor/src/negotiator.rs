//! The negotiator: periodic matchmaking cycles between idle jobs and free
//! startd slots.
//!
//! HTCondor negotiates in cycles (default every few tens of seconds); jobs
//! submitted between cycles wait for the next one. That per-stage queueing
//! delay dominates the paper's workflow makespans, which is why the Fig. 6
//! native bar sits near 25 s per task despite sub-second compute.

use swf_simcore::{sleep, DetRng, SimDuration};

use crate::job::JobId;
use crate::schedd::Schedd;
use crate::startd::Startd;

/// Negotiator parameters.
#[derive(Clone, Copy, Debug)]
pub struct NegotiatorConfig {
    /// Time between negotiation cycles.
    pub cycle_interval: SimDuration,
    /// Matchmaking latency charged per matched job.
    pub match_latency: SimDuration,
    /// Lognormal jitter (coefficient of variation) applied to each cycle
    /// sleep. Real negotiators drift with pool load; drifting boundaries
    /// also prevent a long interval from quantizing away sub-interval
    /// effects in experiments (0 = strictly periodic).
    pub cycle_jitter_cv: f64,
    /// Mean end-to-end activation latency charged per matched job before
    /// the startd claims its slot: schedd shadow spawn, claim activation
    /// and transfer-queue delays, which dominate per-job latency when
    /// Pegasus reuses claims. Sampled lognormally per job; continuous (not
    /// boundary-quantized), so small per-venue overheads stay visible in
    /// workflow makespans as they are in the paper's Fig. 6.
    pub activation_delay: SimDuration,
    /// Coefficient of variation of the activation delay (0 = fixed).
    pub activation_jitter_cv: f64,
    /// Seed for the jitter streams.
    pub seed: u64,
}

impl Default for NegotiatorConfig {
    fn default() -> Self {
        NegotiatorConfig {
            cycle_interval: SimDuration::from_secs(20),
            match_latency: SimDuration::from_millis(30),
            cycle_jitter_cv: 0.0,
            activation_delay: SimDuration::ZERO,
            activation_jitter_cv: 0.0,
            seed: 0,
        }
    }
}

/// The matchmaking daemon.
pub struct Negotiator {
    schedd: Schedd,
    startds: Vec<Startd>,
    config: NegotiatorConfig,
    activation_rng: std::cell::RefCell<DetRng>,
}

impl Negotiator {
    /// New negotiator over a pool of startds.
    pub fn new(schedd: Schedd, startds: Vec<Startd>, config: NegotiatorConfig) -> Self {
        Negotiator {
            schedd,
            startds,
            config,
            activation_rng: std::cell::RefCell::new(DetRng::new(config.seed, "claim-activation")),
        }
    }

    fn sample_activation(&self) -> SimDuration {
        let mean = self.config.activation_delay;
        if mean.is_zero() {
            return SimDuration::ZERO;
        }
        if self.config.activation_jitter_cv <= 0.0 {
            return mean;
        }
        SimDuration::from_secs_f64(
            self.activation_rng
                .borrow_mut()
                .lognormal(mean.as_secs_f64(), self.config.activation_jitter_cv),
        )
    }

    /// Run forever, one cycle per interval (jittered when configured).
    pub async fn run(self) {
        let mut rng = DetRng::new(self.config.seed, "negotiator-cycle");
        loop {
            self.cycle().await;
            let base = self.config.cycle_interval;
            let interval = if self.config.cycle_jitter_cv > 0.0 {
                SimDuration::from_secs_f64(
                    rng.lognormal(base.as_secs_f64(), self.config.cycle_jitter_cv),
                )
            } else {
                base
            };
            sleep(interval).await;
        }
    }

    /// One negotiation cycle. Returns the jobs matched.
    pub async fn cycle(&self) -> Vec<JobId> {
        let mut matched = Vec::new();
        swf_obs::current().gauge_set("condor.idle_jobs", self.schedd.idle_jobs().len() as f64);
        // Track slots reserved within this cycle so one cycle cannot
        // overcommit a startd before the claims land.
        let mut reserved: Vec<usize> = self.startds.iter().map(|_| 0).collect();
        for job_id in self.schedd.idle_jobs() {
            let Ok(spec) = self.schedd.spec(job_id) else {
                continue;
            };
            let job_ad = spec.job_ad();
            let want = spec.request_cpus.max(1) as usize;
            // Candidates: requirement match + enough unreserved free slots.
            // Prefer the startd with the most free slots (spread), then
            // stable order.
            let mut best: Option<(usize, usize)> = None; // (free, idx)
            for (idx, startd) in self.startds.iter().enumerate() {
                if startd.is_draining() || startd.is_failed() {
                    continue;
                }
                let free = startd.free_slots().saturating_sub(reserved[idx]);
                if free < want {
                    continue;
                }
                if !spec.requirements.eval(&job_ad, &startd.machine_ad()) {
                    continue;
                }
                if best.map(|(f, _)| free > f).unwrap_or(true) {
                    best = Some((free, idx));
                }
            }
            if let Some((_, idx)) = best {
                reserved[idx] += want;
                let obs = swf_obs::current();
                let t_match = swf_simcore::now();
                sleep(self.config.match_latency).await;
                // The time the job sat idle in the queue, known only now
                // that it matched, plus the matchmaking work itself.
                if let Ok(submitted) = self.schedd.submitted_at(job_id) {
                    obs.record_span(
                        spec.span,
                        "condor/schedd",
                        format!("queue:{job_id}"),
                        swf_obs::Category::Queue,
                        submitted,
                        t_match,
                    );
                    obs.observe("condor.queue_wait_s", (t_match - submitted).as_secs_f64());
                }
                obs.counter_add("condor.matches", 1);
                obs.record_span(
                    spec.span,
                    "condor/negotiator",
                    format!("negotiate:{job_id}"),
                    swf_obs::Category::Negotiate,
                    t_match,
                    swf_simcore::now(),
                );
                // Hand the job to the startd; it claims slots and reports
                // Running/Completed itself.
                let startd = self.startds[idx].clone();
                let schedd = self.schedd.clone();
                // Capture the claim epoch while the job is still Idle:
                // every status write from this claim is tagged with it, so
                // a later node loss (which requeues the job and bumps the
                // epoch) invalidates this claim's reports wholesale.
                let epoch = schedd.epoch(job_id).unwrap_or(0);
                // Mark as running pre-claim so the next cycle cannot
                // re-match it (the startd will overwrite with the real
                // node status immediately).
                schedd.set_status(job_id, crate::job::JobStatus::Running(startd.node().id()));
                let activation = self.sample_activation();
                swf_simcore::spawn(async move {
                    if !activation.is_zero() {
                        // Feed the activation-latency distribution (the
                        // dominant overhead in the ablation makespans) to
                        // the SLO engine alongside the span.
                        obs.observe("condor.activation_s", activation.as_secs_f64());
                        let act = obs.span(
                            spec.span,
                            "condor/negotiator",
                            format!("claim-activation:{job_id}"),
                            swf_obs::Category::Activation,
                        );
                        sleep(activation).await;
                        drop(act);
                    }
                    startd.execute_claim(job_id, epoch, spec, schedd).await;
                });
                matched.push(job_id);
            }
        }
        matched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classad::Expr;
    use crate::job::{JobContext, JobSpec};
    use bytes::Bytes;
    use swf_cluster::{Cluster, ClusterConfig};
    use swf_simcore::{now, secs, Sim, SimTime};

    fn rig() -> (Cluster, Schedd, Vec<Startd>) {
        let cluster = Cluster::new(&ClusterConfig::default());
        let startds: Vec<Startd> = cluster
            .worker_nodes()
            .iter()
            .map(|n| {
                Startd::new(
                    n.clone(),
                    cluster.clone(),
                    crate::startd::StartdConfig {
                        job_start_overhead: SimDuration::from_millis(100),
                    },
                )
            })
            .collect();
        (cluster, Schedd::new(), startds)
    }

    fn quick_job(d: f64) -> JobSpec {
        JobSpec::new(move |ctx: JobContext| {
            Box::pin(async move {
                ctx.compute(secs(d)).await;
                Ok(Bytes::new())
            })
        })
    }

    #[test]
    fn jobs_wait_for_the_next_cycle() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_c, schedd, startds) = rig();
            let config = NegotiatorConfig {
                cycle_interval: secs(10.0),
                match_latency: SimDuration::ZERO,
                ..NegotiatorConfig::default()
            };
            swf_simcore::spawn(Negotiator::new(schedd.clone(), startds, config).run());
            // First cycle fires at t=0 with an empty queue.
            swf_simcore::sleep(secs(1.0)).await;
            let id = schedd.submit(quick_job(0.5));
            let r = schedd.wait(id).await.unwrap();
            // Matched at the t=10 cycle: starts ≥ 10s.
            assert!(r.started >= SimTime::ZERO + secs(10.0), "{:?}", r.started);
            assert!(r.success);
        });
    }

    #[test]
    fn one_cycle_matches_many_jobs_across_nodes() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_c, schedd, startds) = rig(); // 3 workers × 8 slots
            let negotiator = Negotiator::new(
                schedd.clone(),
                startds.clone(),
                NegotiatorConfig {
                    cycle_interval: secs(60.0),
                    match_latency: SimDuration::ZERO,
                    ..NegotiatorConfig::default()
                },
            );
            let ids: Vec<_> = (0..12).map(|_| schedd.submit(quick_job(1.0))).collect();
            let matched = negotiator.cycle().await;
            assert_eq!(matched.len(), 12);
            for id in ids {
                assert!(schedd.wait(id).await.unwrap().success);
            }
            // Spread: every startd got some work.
            // (Jobs have completed, slots free again; check via ad history
            // indirectly: completion is enough here.)
        });
    }

    #[test]
    fn requirements_filter_machines() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_c, schedd, startds) = rig();
            let negotiator = Negotiator::new(
                schedd.clone(),
                startds,
                NegotiatorConfig {
                    cycle_interval: secs(60.0),
                    match_latency: SimDuration::ZERO,
                    ..NegotiatorConfig::default()
                },
            );
            // Impossible requirement: never matched.
            let id =
                schedd.submit(quick_job(0.1).with_requirements(Expr::target_ge("Cpus", 1000i64)));
            let matched = negotiator.cycle().await;
            assert!(matched.is_empty());
            assert_eq!(schedd.status(id).unwrap(), crate::job::JobStatus::Idle);
        });
    }

    #[test]
    fn cycle_does_not_overcommit_slots() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_c, schedd, startds) = rig(); // 24 slots total
            let negotiator = Negotiator::new(
                schedd.clone(),
                startds,
                NegotiatorConfig {
                    cycle_interval: secs(60.0),
                    match_latency: SimDuration::ZERO,
                    ..NegotiatorConfig::default()
                },
            );
            let _ids: Vec<_> = (0..30).map(|_| schedd.submit(quick_job(5.0))).collect();
            let matched = negotiator.cycle().await;
            assert_eq!(matched.len(), 24);
            // The remaining 6 stay idle until the next cycle.
            assert_eq!(schedd.idle_jobs().len(), 6);
        });
    }

    #[test]
    fn draining_startds_receive_no_matches() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_c, schedd, startds) = rig();
            // Drain all but the last worker.
            for s in &startds[..startds.len() - 1] {
                s.drain();
                assert!(s.is_draining());
            }
            let last = startds.last().unwrap().clone();
            let negotiator = Negotiator::new(
                schedd.clone(),
                startds,
                NegotiatorConfig {
                    cycle_interval: secs(60.0),
                    match_latency: SimDuration::ZERO,
                    ..NegotiatorConfig::default()
                },
            );
            let ids: Vec<_> = (0..4).map(|_| schedd.submit(quick_job(0.2))).collect();
            let matched = negotiator.cycle().await;
            assert_eq!(matched.len(), 4);
            for id in ids {
                let r = schedd.wait(id).await.unwrap();
                // Every job landed on the one undrained node.
                assert_eq!(r.node, last.node().id());
            }
            // Undrain restores matching elsewhere.
            last.undrain();
        });
    }

    #[test]
    fn multi_core_requests_claim_multiple_slots() {
        let sim = Sim::new();
        sim.block_on(async {
            let (_c, schedd, startds) = rig();
            let negotiator = Negotiator::new(
                schedd.clone(),
                startds,
                NegotiatorConfig {
                    cycle_interval: secs(60.0),
                    match_latency: SimDuration::ZERO,
                    ..NegotiatorConfig::default()
                },
            );
            let mut spec = quick_job(1.0);
            spec.request_cpus = 8;
            // 3 nodes × 8 slots: four 8-core jobs → only 3 match.
            let _ids: Vec<_> = (0..4).map(|_| schedd.submit(spec.clone())).collect();
            let matched = negotiator.cycle().await;
            assert_eq!(matched.len(), 3);
            let t = now();
            let _ = t;
        });
    }
}
