//! Matrix multiplication kernels.
//!
//! Three implementations of the paper's task: a naive triple loop (the
//! honest Python-equivalent), a cache-blocked transposed kernel, and a
//! rayon row-parallel kernel. All produce identical results; property tests
//! pin the algebra, and the calibration harness measures the real runtime
//! to parameterize the simulator's compute model.

use rayon::prelude::*;

use crate::matrix::Matrix;

/// Which kernel to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Kernel {
    /// Triple nested loop, row-major (closest to the paper's NumPy-free
    /// baseline semantics).
    Naive,
    /// Transpose-B then dot rows (cache friendly).
    #[default]
    Blocked,
    /// Row-parallel with rayon.
    Parallel,
}

/// Multiply `a × b` with the chosen kernel.
///
/// # Panics
/// Panics when the inner dimensions disagree.
pub fn matmul(a: &Matrix, b: &Matrix, kernel: Kernel) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "inner dimension mismatch: {}x{} × {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    match kernel {
        Kernel::Naive => naive(a, b),
        Kernel::Blocked => blocked(a, b),
        Kernel::Parallel => parallel(a, b),
    }
}

fn naive(a: &Matrix, b: &Matrix) -> Matrix {
    let (n, k, m) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(n, m);
    for i in 0..n {
        for j in 0..m {
            let mut acc = 0i64;
            for l in 0..k {
                acc = acc.wrapping_add(a.get(i, l).wrapping_mul(b.get(l, j)));
            }
            out.set(i, j, acc);
        }
    }
    out
}

fn dot(x: &[i64], y: &[i64]) -> i64 {
    x.iter()
        .zip(y)
        .fold(0i64, |acc, (&a, &b)| acc.wrapping_add(a.wrapping_mul(b)))
}

fn blocked(a: &Matrix, b: &Matrix) -> Matrix {
    let bt = b.transpose();
    let (n, m) = (a.rows(), b.cols());
    let mut out = Matrix::zeros(n, m);
    for i in 0..n {
        for j in 0..m {
            out.set(i, j, dot(a.row(i), bt.row(j)));
        }
    }
    out
}

fn parallel(a: &Matrix, b: &Matrix) -> Matrix {
    let bt = b.transpose();
    let (n, m) = (a.rows(), b.cols());
    let mut out = Matrix::zeros(n, m);
    {
        let cols = m;
        out.data_mut()
            .par_chunks_mut(cols)
            .enumerate()
            .for_each(|(i, row_out)| {
                let arow = a.row(i);
                for (j, cell) in row_out.iter_mut().enumerate() {
                    *cell = dot(arow, bt.row(j));
                }
            });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use swf_simcore::DetRng;

    fn random_matrix(r: usize, c: usize, seed: u64) -> Matrix {
        let mut rng = DetRng::new(seed, "mm");
        Matrix::random(r, c, &mut rng, -100, 100)
    }

    #[test]
    fn kernels_agree() {
        let a = random_matrix(17, 23, 1);
        let b = random_matrix(23, 11, 2);
        let naive = matmul(&a, &b, Kernel::Naive);
        assert_eq!(naive, matmul(&a, &b, Kernel::Blocked));
        assert_eq!(naive, matmul(&a, &b, Kernel::Parallel));
    }

    #[test]
    fn identity_is_neutral() {
        let a = random_matrix(9, 9, 3);
        let i = Matrix::identity(9);
        assert_eq!(matmul(&a, &i, Kernel::Blocked), a);
        assert_eq!(matmul(&i, &a, Kernel::Blocked), a);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = matmul(&a, &b, Kernel::Naive);
    }

    #[test]
    fn known_product() {
        let a = Matrix::from_vec(2, 2, vec![1, 2, 3, 4]);
        let b = Matrix::from_vec(2, 2, vec![5, 6, 7, 8]);
        let c = matmul(&a, &b, Kernel::Naive);
        assert_eq!(c.as_slice(), &[19, 22, 43, 50]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// (AB)ᵀ = BᵀAᵀ for all kernels.
        #[test]
        fn transpose_antihomomorphism(seed in 0u64..1000, n in 1usize..12, k in 1usize..12, m in 1usize..12) {
            let a = {
                let mut rng = DetRng::new(seed, "a");
                Matrix::random(n, k, &mut rng, -50, 50)
            };
            let b = {
                let mut rng = DetRng::new(seed, "b");
                Matrix::random(k, m, &mut rng, -50, 50)
            };
            let ab_t = matmul(&a, &b, Kernel::Blocked).transpose();
            let bt_at = matmul(&b.transpose(), &a.transpose(), Kernel::Blocked);
            prop_assert_eq!(ab_t, bt_at);
        }

        /// A(B+C) = AB + AC (distributivity) via checksums of full matrices.
        #[test]
        fn distributive_over_addition(seed in 0u64..1000, n in 1usize..10) {
            let mk = |s: &str| {
                let mut rng = DetRng::new(seed, s);
                Matrix::random(n, n, &mut rng, -30, 30)
            };
            let a = mk("a");
            let b = mk("b");
            let c = mk("c");
            let mut b_plus_c = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    b_plus_c.set(i, j, b.get(i, j) + c.get(i, j));
                }
            }
            let left = matmul(&a, &b_plus_c, Kernel::Naive);
            let ab = matmul(&a, &b, Kernel::Naive);
            let ac = matmul(&a, &c, Kernel::Naive);
            let mut right = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    right.set(i, j, ab.get(i, j) + ac.get(i, j));
                }
            }
            prop_assert_eq!(left, right);
        }

        /// All three kernels agree on random shapes.
        #[test]
        fn kernels_agree_prop(seed in 0u64..1000, n in 1usize..16, k in 1usize..16, m in 1usize..16) {
            let a = {
                let mut rng = DetRng::new(seed, "ka");
                Matrix::random(n, k, &mut rng, -100, 100)
            };
            let b = {
                let mut rng = DetRng::new(seed, "kb");
                Matrix::random(k, m, &mut rng, -100, 100)
            };
            let x = matmul(&a, &b, Kernel::Naive);
            prop_assert_eq!(&x, &matmul(&a, &b, Kernel::Blocked));
            prop_assert_eq!(&x, &matmul(&a, &b, Kernel::Parallel));
        }
    }
}
