//! # swf-workloads
//!
//! The paper's workload, for real: dense integer matrices (350×350, entries
//! in [-100, 100]), three agreeing matmul kernels (naive / blocked /
//! rayon-parallel), a binary codec for files and pass-by-value request
//! payloads, workflow-shape generators (Fig. 3 chains, Fig. 4 concurrent
//! sets with random environment assignment), and a compute-time calibration
//! harness connecting real kernel runtime to the simulator's charged time.

#![warn(missing_docs)]

pub mod codec;
pub mod generator;
pub mod matmul;
pub mod matrix;
pub mod task;

pub use codec::{decode, decode_pair, encode, encode_pair, encoded_size, CodecError};
pub use generator::{
    chain_workflow, concurrent_workflows, ChainTask, ChainWorkflow, EnvMix, ExecEnv,
};
pub use matmul::{matmul, Kernel};
pub use matrix::Matrix;
pub use task::{multiply_encoded, multiply_pair_payload, ComputeModel};
