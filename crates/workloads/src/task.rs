//! The paper's task in pure form: decode two matrices, multiply, encode the
//! product — plus the compute-time model that charges virtual time for it.

use bytes::Bytes;

use swf_simcore::{secs, SimDuration};

use crate::codec::{decode, decode_pair, encode, CodecError};
use crate::matmul::{matmul, Kernel};

/// Multiply two encoded matrices; returns the encoded product.
pub fn multiply_encoded(a: Bytes, b: Bytes, kernel: Kernel) -> Result<Bytes, String> {
    let ma = decode(a).map_err(|e| format!("input A: {e}"))?;
    let mb = decode(b).map_err(|e| format!("input B: {e}"))?;
    if ma.cols() != mb.rows() {
        return Err(format!(
            "dimension mismatch: {}x{} × {}x{}",
            ma.rows(),
            ma.cols(),
            mb.rows(),
            mb.cols()
        ));
    }
    Ok(encode(&matmul(&ma, &mb, kernel)))
}

/// Multiply a request payload holding an encoded pair (the pass-by-value
/// serverless invocation body); returns the encoded product.
pub fn multiply_pair_payload(payload: Bytes, kernel: Kernel) -> Result<Bytes, String> {
    let (a, b) = decode_pair(payload).map_err(|e: CodecError| e.to_string())?;
    if a.cols() != b.rows() {
        return Err("dimension mismatch".to_string());
    }
    Ok(encode(&matmul(&a, &b, kernel)))
}

/// Virtual compute time charged for one task.
///
/// The paper's tasks run NumPy under Python on Xeon Gold 6342 cores; our
/// kernels are orders of magnitude faster, so experiments charge the
/// *paper-calibrated* duration while still executing the real kernel for
/// its output (shape correctness is verified, wall time is modelled).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ComputeModel {
    /// Single-core time for one 350×350 task, including its local disk I/O
    /// as measured in Fig. 1 (total per task ≈ 0.458 s).
    pub per_task: SimDuration,
    /// Scale `per_task` cubically with the matrix dimension relative to the
    /// 350³ baseline. Disable for quick test configs that shrink matrices
    /// for wall-clock speed but want paper-scale virtual timings.
    pub scale_with_dim: bool,
}

impl ComputeModel {
    /// The Fig. 1-calibrated model.
    pub fn paper() -> Self {
        ComputeModel {
            per_task: secs(0.458),
            scale_with_dim: true,
        }
    }

    /// A fixed per-task time regardless of matrix dimension.
    pub fn fixed(per_task: SimDuration) -> Self {
        ComputeModel {
            per_task,
            scale_with_dim: false,
        }
    }

    /// Charged time for a `dim × dim` task: matmul is O(n³), so the scaled
    /// model grows cubically from the 350³ baseline.
    pub fn for_dim(&self, dim: usize) -> SimDuration {
        if !self.scale_with_dim {
            return self.per_task;
        }
        let base = 350.0f64;
        let scale = (dim as f64 / base).powi(3);
        self.per_task.mul_f64(scale)
    }

    /// Calibrate from a real kernel run: measures wall time of one `dim`
    /// multiply and returns a model scaled by `slowdown` (the Python/NumPy
    /// vs Rust factor; the paper's environment is documented in
    /// EXPERIMENTS.md).
    pub fn calibrate(dim: usize, kernel: Kernel, slowdown: f64) -> Self {
        let mut rng = swf_simcore::DetRng::new(0xCA11B, "calibrate");
        let a = crate::matrix::Matrix::random(dim, dim, &mut rng, -100, 100);
        let b = crate::matrix::Matrix::random(dim, dim, &mut rng, -100, 100);
        // Calibration deliberately measures the real kernel's wall time
        // once, outside any simulation; the result feeds a fixed constant.
        // tidy: allow(wall-clock) — real measurement, not simulated time
        let t0 = std::time::Instant::now();
        let c = matmul(&a, &b, kernel);
        let wall = t0.elapsed().as_secs_f64();
        // Keep the product alive so the measurement isn't optimized away.
        std::hint::black_box(c.checksum());
        ComputeModel {
            per_task: secs(wall * slowdown),
            scale_with_dim: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_pair;
    use crate::matrix::Matrix;
    use swf_simcore::DetRng;

    #[test]
    fn multiply_encoded_roundtrip() {
        let mut rng = DetRng::new(1, "t");
        let a = Matrix::random(8, 8, &mut rng, -10, 10);
        let b = Matrix::random(8, 8, &mut rng, -10, 10);
        let out = multiply_encoded(encode(&a), encode(&b), Kernel::Blocked).unwrap();
        assert_eq!(decode(out).unwrap(), matmul(&a, &b, Kernel::Blocked));
    }

    #[test]
    fn dimension_mismatch_is_an_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let err = multiply_encoded(encode(&a), encode(&b), Kernel::Naive).unwrap_err();
        assert!(err.contains("dimension mismatch"));
    }

    #[test]
    fn garbage_input_is_an_error() {
        let err = multiply_encoded(
            Bytes::from_static(b"junk"),
            Bytes::from_static(b"junk"),
            Kernel::Naive,
        )
        .unwrap_err();
        assert!(err.contains("input A"));
    }

    #[test]
    fn pair_payload_path() {
        let mut rng = DetRng::new(2, "p");
        let a = Matrix::random(5, 6, &mut rng, -10, 10);
        let b = Matrix::random(6, 4, &mut rng, -10, 10);
        let out = multiply_pair_payload(encode_pair(&a, &b), Kernel::Blocked).unwrap();
        assert_eq!(decode(out).unwrap().rows(), 5);
        assert!(multiply_pair_payload(Bytes::from_static(b"x"), Kernel::Naive).is_err());
    }

    #[test]
    fn paper_model_value() {
        let m = ComputeModel::paper();
        assert!((m.per_task.as_secs_f64() - 0.458).abs() < 1e-9);
        // Cubic scaling: doubling the dimension is 8× the time.
        let d700 = m.for_dim(700).as_secs_f64();
        assert!((d700 - 0.458 * 8.0).abs() < 1e-6);
    }

    #[test]
    fn calibration_produces_positive_time() {
        let m = ComputeModel::calibrate(64, Kernel::Blocked, 10.0);
        assert!(m.per_task > SimDuration::ZERO);
    }
}
