//! Binary matrix file format.
//!
//! The paper's tasks read/write matrices as files; this codec is the wire
//! and disk representation used across the simulated filesystems and HTTP
//! payloads: magic `SWFM`, u32 rows, u32 cols, little-endian i64 entries.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::matrix::Matrix;

/// Magic prefix of encoded matrices.
pub const MAGIC: &[u8; 4] = b"SWFM";

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Payload too short or missing magic.
    BadHeader,
    /// Payload length disagrees with the header shape.
    Truncated {
        /// Bytes expected from the header.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadHeader => write!(f, "bad matrix header"),
            CodecError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated matrix payload: expected {expected}B, got {actual}B"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Encode a matrix.
pub fn encode(m: &Matrix) -> Bytes {
    let mut buf = BytesMut::with_capacity(m.as_slice().len().saturating_mul(8).saturating_add(12));
    buf.put_slice(MAGIC);
    buf.put_u32_le(m.rows() as u32);
    buf.put_u32_le(m.cols() as u32);
    for &v in m.as_slice() {
        buf.put_i64_le(v);
    }
    buf.freeze()
}

/// Decode a matrix.
pub fn decode(mut data: Bytes) -> Result<Matrix, CodecError> {
    if data.len() < 12 || &data[..4] != MAGIC {
        return Err(CodecError::BadHeader);
    }
    data.advance(4);
    let rows = data.get_u32_le() as usize;
    let cols = data.get_u32_le() as usize;
    // A crafted header can claim up to (2³²−1)² cells; the byte count must
    // be computed checked or a hostile payload panics the decoder.
    let expected = rows
        .checked_mul(cols)
        .and_then(|cells| cells.checked_mul(8))
        .ok_or(CodecError::BadHeader)?;
    if data.len() != expected {
        return Err(CodecError::Truncated {
            expected,
            actual: data.len(),
        });
    }
    let mut v = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        v.push(data.get_i64_le());
    }
    Ok(Matrix::from_vec(rows, cols, v))
}

/// Size in bytes of an encoded `r × c` matrix (for data-movement models).
pub const fn encoded_size(r: usize, c: usize) -> usize {
    12 + r * c * 8
}

/// Encode a pair of matrices into one request payload (the paper passes
/// both input matrices by value in the invocation request).
pub fn encode_pair(a: &Matrix, b: &Matrix) -> Bytes {
    let ea = encode(a);
    let eb = encode(b);
    let mut buf = BytesMut::with_capacity(ea.len().saturating_add(eb.len()).saturating_add(8));
    buf.put_u64_le(ea.len() as u64);
    buf.put_slice(&ea);
    buf.put_slice(&eb);
    buf.freeze()
}

/// Decode a pair encoded by [`encode_pair`].
pub fn decode_pair(mut data: Bytes) -> Result<(Matrix, Matrix), CodecError> {
    if data.len() < 8 {
        return Err(CodecError::BadHeader);
    }
    let alen = data.get_u64_le() as usize;
    if data.len() < alen {
        return Err(CodecError::Truncated {
            expected: alen,
            actual: data.len(),
        });
    }
    let a = decode(data.split_to(alen))?;
    let b = decode(data)?;
    Ok((a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use swf_simcore::DetRng;

    #[test]
    fn roundtrip() {
        let mut rng = DetRng::new(5, "codec");
        let m = Matrix::random(13, 7, &mut rng, -100, 100);
        let enc = encode(&m);
        assert_eq!(enc.len(), encoded_size(13, 7));
        assert_eq!(decode(enc).unwrap(), m);
    }

    #[test]
    fn paper_matrix_size_is_under_a_megabyte() {
        // 350×350 × 8B ≈ 980 KB — the pass-by-value payload of one input.
        let sz = encoded_size(350, 350);
        assert_eq!(sz, 12 + 350 * 350 * 8);
        assert!(sz < 1_000_000);
    }

    #[test]
    fn bad_inputs_are_rejected() {
        assert_eq!(
            decode(Bytes::from_static(b"XX")),
            Err(CodecError::BadHeader)
        );
        assert_eq!(
            decode(Bytes::from_static(b"NOPE12345678")),
            Err(CodecError::BadHeader)
        );
        let m = Matrix::identity(3);
        let enc = encode(&m);
        let cut = enc.slice(0..enc.len() - 4);
        assert!(matches!(decode(cut), Err(CodecError::Truncated { .. })));
    }

    #[test]
    fn pair_roundtrip() {
        let mut rng = DetRng::new(6, "pair");
        let a = Matrix::random(4, 5, &mut rng, -10, 10);
        let b = Matrix::random(5, 6, &mut rng, -10, 10);
        let enc = encode_pair(&a, &b);
        let (da, db) = decode_pair(enc).unwrap();
        assert_eq!(da, a);
        assert_eq!(db, b);
    }

    #[test]
    fn pair_bad_inputs() {
        assert!(decode_pair(Bytes::from_static(b"xy")).is_err());
        let mut buf = bytes::BytesMut::new();
        use bytes::BufMut;
        buf.put_u64_le(1_000_000);
        buf.put_slice(b"short");
        assert!(matches!(
            decode_pair(buf.freeze()),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn degenerate_shapes_roundtrip() {
        for (r, c) in [(0, 0), (0, 5), (5, 0), (1, 1)] {
            let m = Matrix::from_vec(r, c, vec![7; r * c]);
            let dec = decode(encode(&m)).unwrap();
            assert_eq!(dec.rows(), r);
            assert_eq!(dec.cols(), c);
            assert_eq!(dec, m);
        }
    }

    #[test]
    fn huge_claimed_shape_is_an_error_not_a_panic() {
        // Header claims u32::MAX × u32::MAX cells: expected-byte arithmetic
        // would overflow usize without checked math.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(u32::MAX);
        buf.put_u32_le(u32::MAX);
        buf.put_i64_le(1);
        assert_eq!(decode(buf.freeze()), Err(CodecError::BadHeader));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn roundtrip_prop(seed in 0u64..500, r in 1usize..20, c in 1usize..20) {
            let mut rng = DetRng::new(seed, "rt");
            let m = Matrix::random(r, c, &mut rng, i64::MIN / 4, i64::MAX / 4);
            prop_assert_eq!(decode(encode(&m)).unwrap(), m);
        }

        #[test]
        fn nonsquare_roundtrip_prop(seed in 0u64..500, r in 0usize..24, c in 0usize..24) {
            // Includes empty and 1×1 shapes; rows ≠ cols most of the time.
            let mut rng = DetRng::new(seed, "rt-nsq");
            let m = Matrix::random(r, c, &mut rng, -1000, 1000);
            let enc = encode(&m);
            prop_assert_eq!(enc.len(), encoded_size(r, c));
            prop_assert_eq!(decode(enc).unwrap(), m);
        }

        #[test]
        fn truncation_never_panics(seed in 0u64..500, r in 0usize..12, c in 0usize..12, cut in 1usize..64) {
            // Every proper prefix of a valid encoding decodes to an error,
            // never a panic or a bogus matrix.
            let mut rng = DetRng::new(seed, "rt-cut");
            let m = Matrix::random(r, c, &mut rng, -10, 10);
            let enc = encode(&m);
            let keep = enc.len().saturating_sub(cut);
            prop_assert!(decode(enc.slice(0..keep)).is_err());
        }

        #[test]
        fn random_bytes_never_panic(seed in 0u64..500, len in 0usize..96) {
            let mut rng = DetRng::new(seed, "rt-junk");
            let junk: Vec<u8> = (0..len).map(|_| rng.uniform_u64(0, 255) as u8).collect();
            // Any result is fine — the decoder just must not panic.
            let _ = decode(Bytes::from(junk));
        }

        #[test]
        fn pair_truncation_never_panics(seed in 0u64..200, cut in 1usize..48) {
            let mut rng = DetRng::new(seed, "pair-cut");
            let a = Matrix::random(3, 4, &mut rng, -10, 10);
            let b = Matrix::random(4, 2, &mut rng, -10, 10);
            let enc = encode_pair(&a, &b);
            let keep = enc.len().saturating_sub(cut);
            prop_assert!(decode_pair(enc.slice(0..keep)).is_err());
        }
    }
}
