//! Dense integer matrices with the paper's parameters: square matrices of
//! integers in [-100, 100], 350×350 in the evaluation.

use swf_simcore::DetRng;

/// A dense row-major `i64` matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl Matrix {
    /// The paper's matrix dimension.
    pub const PAPER_DIM: usize = 350;
    /// The paper's element range (inclusive).
    pub const PAPER_RANGE: (i64, i64) = (-100, 100);

    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1;
        }
        m
    }

    /// Build from a row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<i64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Random matrix with entries in `[lo, hi]` (the paper: [-100, 100]).
    pub fn random(rows: usize, cols: usize, rng: &mut DetRng, lo: i64, hi: i64) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.uniform_i64(lo, hi + 1))
            .collect();
        Matrix { rows, cols, data }
    }

    /// The paper's task input: 350×350, entries in [-100, 100].
    pub fn paper_random(rng: &mut DetRng) -> Self {
        Matrix::random(
            Self::PAPER_DIM,
            Self::PAPER_DIM,
            rng,
            Self::PAPER_RANGE.0,
            Self::PAPER_RANGE.1,
        )
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> i64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    pub fn set(&mut self, r: usize, c: usize, v: i64) {
        self.data[r * self.cols + c] = v;
    }

    /// Row-major backing slice.
    pub fn as_slice(&self) -> &[i64] {
        &self.data
    }

    /// One full row.
    pub fn row(&self, r: usize) -> &[i64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Sum of all entries (cheap integrity probe used by tests/benches).
    pub fn checksum(&self) -> i64 {
        self.data.iter().copied().fold(0i64, i64::wrapping_add)
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        t
    }

    /// Mutable access to the backing vector (kernels only).
    pub(crate) fn data_mut(&mut self) -> &mut [i64] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let m = Matrix::from_vec(2, 3, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(0, 2), 3);
        assert_eq!(m.get(1, 0), 4);
        assert_eq!(m.row(1), &[4, 5, 6]);
        assert_eq!(m.checksum(), 21);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bad_shape_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1, 2, 3]);
    }

    #[test]
    fn identity_has_trace_n() {
        let m = Matrix::identity(5);
        assert_eq!(m.checksum(), 5);
        assert_eq!(m.get(3, 3), 1);
        assert_eq!(m.get(3, 4), 0);
    }

    #[test]
    fn random_respects_range_and_is_deterministic() {
        let mut r1 = DetRng::new(42, "m");
        let mut r2 = DetRng::new(42, "m");
        let a = Matrix::random(10, 10, &mut r1, -100, 100);
        let b = Matrix::random(10, 10, &mut r2, -100, 100);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|&v| (-100..=100).contains(&v)));
    }

    #[test]
    fn transpose_roundtrips() {
        let mut rng = DetRng::new(7, "t");
        let m = Matrix::random(4, 7, &mut rng, -5, 5);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 3), m.get(3, 2));
    }

    #[test]
    fn paper_parameters() {
        assert_eq!(Matrix::PAPER_DIM, 350);
        assert_eq!(Matrix::PAPER_RANGE, (-100, 100));
    }
}
