//! Workflow shape generators: the paper's Figures 3 and 4.
//!
//! A workflow is a chain of `length` matmul tasks (Fig. 3); an experiment
//! runs `count` such chains concurrently with each task assigned one of
//! three execution environments, drawn randomly before the run (Fig. 4).

use swf_simcore::DetRng;

/// Where one task executes (the paper's Setups 1–3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ExecEnv {
    /// Setup 1: plain process on the matched worker.
    Native,
    /// Setup 2: `docker run` per task on the matched worker.
    Container,
    /// Setup 3: wrapper job invoking the pre-registered Knative function.
    Serverless,
}

impl std::fmt::Display for ExecEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecEnv::Native => write!(f, "native"),
            ExecEnv::Container => write!(f, "container"),
            ExecEnv::Serverless => write!(f, "serverless"),
        }
    }
}

/// Fractions of tasks assigned to each environment. Must sum to ≤ 1; the
/// remainder goes to Native.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnvMix {
    /// Fraction of serverless (Knative) tasks.
    pub serverless: f64,
    /// Fraction of traditional-container tasks.
    pub container: f64,
}

impl EnvMix {
    /// All tasks native (Fig. 6 blue bar).
    pub const ALL_NATIVE: EnvMix = EnvMix {
        serverless: 0.0,
        container: 0.0,
    };
    /// All tasks serverless (Fig. 6 green bar).
    pub const ALL_SERVERLESS: EnvMix = EnvMix {
        serverless: 1.0,
        container: 0.0,
    };
    /// All tasks in traditional containers (Fig. 6 purple bar).
    pub const ALL_CONTAINER: EnvMix = EnvMix {
        serverless: 0.0,
        container: 1.0,
    };
    /// Half serverless, half native (Fig. 6 orange bar).
    pub const HALF_SERVERLESS: EnvMix = EnvMix {
        serverless: 0.5,
        container: 0.0,
    };
    /// Half container, half native (Fig. 6 red bar).
    pub const HALF_CONTAINER: EnvMix = EnvMix {
        serverless: 0.0,
        container: 0.5,
    };

    /// The native fraction (remainder).
    pub fn native(&self) -> f64 {
        (1.0 - self.serverless - self.container).max(0.0)
    }

    /// Deterministically assign environments to `n` tasks: exact counts
    /// from the fractions (largest remainder to native), then a seeded
    /// shuffle — matching the paper's "distribution of tasks among these
    /// platforms is determined randomly before initiating the workflows".
    pub fn assign(&self, n: usize, rng: &mut DetRng) -> Vec<ExecEnv> {
        let n_serverless = (self.serverless * n as f64).round() as usize;
        let n_container = (self.container * n as f64).round() as usize;
        let n_serverless = n_serverless.min(n);
        let n_container = n_container.min(n - n_serverless);
        let mut envs = Vec::with_capacity(n);
        envs.extend(std::iter::repeat_n(ExecEnv::Serverless, n_serverless));
        envs.extend(std::iter::repeat_n(ExecEnv::Container, n_container));
        envs.extend(std::iter::repeat_n(
            ExecEnv::Native,
            n - n_serverless - n_container,
        ));
        rng.shuffle(&mut envs);
        envs
    }
}

/// One task in a generated workflow chain.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainTask {
    /// Task name, unique across the experiment.
    pub name: String,
    /// First input file (the previous task's output, or a seed matrix).
    pub input_a: String,
    /// Second input file (a per-step seed matrix).
    pub input_b: String,
    /// Output file.
    pub output: String,
    /// Execution environment.
    pub env: ExecEnv,
}

/// A generated sequential workflow (Fig. 3).
#[derive(Clone, Debug)]
pub struct ChainWorkflow {
    /// Workflow index within the experiment.
    pub index: usize,
    /// Ordered tasks; task `t` consumes task `t-1`'s output.
    pub tasks: Vec<ChainTask>,
    /// Seed matrix files this workflow needs staged before running.
    pub seed_files: Vec<String>,
}

/// Generate one chain workflow of `length` tasks with environments drawn
/// from `mix`.
pub fn chain_workflow(index: usize, length: usize, mix: EnvMix, rng: &mut DetRng) -> ChainWorkflow {
    let envs = mix.assign(length, rng);
    let mut tasks = Vec::with_capacity(length);
    let mut seed_files = vec![format!("w{index}_seed_a.mat")];
    for (t, env) in envs.into_iter().enumerate() {
        let input_a = if t == 0 {
            format!("w{index}_seed_a.mat")
        } else {
            format!("w{index}_t{}_out.mat", t - 1)
        };
        let input_b = format!("w{index}_seed_b{t}.mat");
        seed_files.push(input_b.clone());
        tasks.push(ChainTask {
            name: format!("w{index}_t{t}"),
            input_a,
            input_b,
            output: format!("w{index}_t{t}_out.mat"),
            env,
        });
    }
    ChainWorkflow {
        index,
        tasks,
        seed_files,
    }
}

/// Generate the paper's concurrent experiment (Fig. 4): `count` chains of
/// `length` tasks each, all sharing one environment mix. Each workflow gets
/// an independent RNG stream so adding workflows never perturbs others.
pub fn concurrent_workflows(
    count: usize,
    length: usize,
    mix: EnvMix,
    seed: u64,
) -> Vec<ChainWorkflow> {
    (0..count)
        .map(|i| {
            let mut rng = DetRng::new(seed, &format!("workflow-{i}"));
            chain_workflow(i, length, mix, &mut rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_constants_cover_fig6_bars() {
        assert_eq!(EnvMix::ALL_NATIVE.native(), 1.0);
        assert_eq!(EnvMix::ALL_SERVERLESS.native(), 0.0);
        assert_eq!(EnvMix::HALF_SERVERLESS.native(), 0.5);
        assert_eq!(EnvMix::HALF_CONTAINER.native(), 0.5);
    }

    #[test]
    fn assign_exact_counts() {
        let mut rng = DetRng::new(3, "assign");
        let envs = EnvMix {
            serverless: 0.5,
            container: 0.3,
        }
        .assign(10, &mut rng);
        assert_eq!(
            envs.iter().filter(|e| **e == ExecEnv::Serverless).count(),
            5
        );
        assert_eq!(envs.iter().filter(|e| **e == ExecEnv::Container).count(), 3);
        assert_eq!(envs.iter().filter(|e| **e == ExecEnv::Native).count(), 2);
    }

    #[test]
    fn assign_is_deterministic_per_seed() {
        let mut r1 = DetRng::new(9, "a");
        let mut r2 = DetRng::new(9, "a");
        let m = EnvMix {
            serverless: 0.4,
            container: 0.4,
        };
        assert_eq!(m.assign(20, &mut r1), m.assign(20, &mut r2));
    }

    #[test]
    fn chain_links_outputs_to_inputs() {
        let mut rng = DetRng::new(1, "c");
        let wf = chain_workflow(2, 10, EnvMix::ALL_NATIVE, &mut rng);
        assert_eq!(wf.tasks.len(), 10);
        for t in 1..10 {
            assert_eq!(wf.tasks[t].input_a, wf.tasks[t - 1].output);
        }
        assert_eq!(wf.tasks[0].input_a, "w2_seed_a.mat");
        // 1 seed_a + 10 seed_b files.
        assert_eq!(wf.seed_files.len(), 11);
    }

    #[test]
    fn concurrent_workflows_are_independent_streams() {
        let a = concurrent_workflows(3, 10, EnvMix::HALF_SERVERLESS, 42);
        let b = concurrent_workflows(5, 10, EnvMix::HALF_SERVERLESS, 42);
        // Adding workflows does not change earlier ones.
        for i in 0..3 {
            let ea: Vec<_> = a[i].tasks.iter().map(|t| t.env).collect();
            let eb: Vec<_> = b[i].tasks.iter().map(|t| t.env).collect();
            assert_eq!(ea, eb);
        }
        // The paper's experiment: 10 workflows × 10 tasks = 100 tasks.
        let paper = concurrent_workflows(10, 10, EnvMix::ALL_SERVERLESS, 7);
        let total: usize = paper.iter().map(|w| w.tasks.len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn env_display() {
        assert_eq!(ExecEnv::Native.to_string(), "native");
        assert_eq!(ExecEnv::Container.to_string(), "container");
        assert_eq!(ExecEnv::Serverless.to_string(), "serverless");
    }
}
