//! Typed node pools: which workers exist at which price class.

/// What a node-second costs: reserved capacity or preemptible capacity
/// the provider may revoke with a grace notice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PriceClass {
    /// Reserved capacity: never revoked, full price.
    OnDemand,
    /// Preemptible capacity: discounted, revocable with a grace window.
    Spot,
}

impl PriceClass {
    /// Stable lowercase label (`on_demand` / `spot`), used in metric
    /// names and BENCH JSON keys.
    pub fn label(&self) -> &'static str {
        match self {
            PriceClass::OnDemand => "on_demand",
            PriceClass::Spot => "spot",
        }
    }
}

/// A named group of worker nodes sharing a price class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodePool {
    /// Pool name (e.g. `"base"`, `"burst"`).
    pub name: String,
    /// Price class of every node in the pool.
    pub class: PriceClass,
    /// Worker node ids.
    pub nodes: Vec<usize>,
}

/// The cluster's pools. A node belongs to at most one pool; nodes in no
/// pool are free (the submit node, for instance, is never billed).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolSet {
    pools: Vec<NodePool>,
}

impl PoolSet {
    /// A pool set from explicit pools. Panics if a node appears twice —
    /// a node cannot be billed at two price classes.
    pub fn new(pools: Vec<NodePool>) -> PoolSet {
        let mut seen = std::collections::BTreeSet::new();
        for p in &pools {
            for n in &p.nodes {
                assert!(seen.insert(*n), "node {n} appears in two pools");
            }
        }
        PoolSet { pools }
    }

    /// The classic static cluster: every worker on-demand.
    pub fn all_on_demand(workers: &[usize]) -> PoolSet {
        PoolSet::new(vec![NodePool {
            name: "base".to_string(),
            class: PriceClass::OnDemand,
            nodes: workers.to_vec(),
        }])
    }

    /// A base on-demand pool plus a preemptible burst pool.
    pub fn split(on_demand: Vec<usize>, spot: Vec<usize>) -> PoolSet {
        PoolSet::new(vec![
            NodePool {
                name: "base".to_string(),
                class: PriceClass::OnDemand,
                nodes: on_demand,
            },
            NodePool {
                name: "burst".to_string(),
                class: PriceClass::Spot,
                nodes: spot,
            },
        ])
    }

    /// The pools.
    pub fn pools(&self) -> &[NodePool] {
        &self.pools
    }

    /// The price class of a node, if it belongs to a pool.
    pub fn class_of(&self, node: usize) -> Option<PriceClass> {
        self.pools
            .iter()
            .find(|p| p.nodes.contains(&node))
            .map(|p| p.class)
    }

    /// Every pooled node, ascending.
    pub fn nodes(&self) -> Vec<usize> {
        let mut all: Vec<usize> = self.pools.iter().flat_map(|p| p.nodes.clone()).collect();
        all.sort_unstable();
        all
    }

    /// The preemptible nodes, ascending.
    pub fn spot_nodes(&self) -> Vec<usize> {
        let mut spot: Vec<usize> = self
            .pools
            .iter()
            .filter(|p| p.class == PriceClass::Spot)
            .flat_map(|p| p.nodes.clone())
            .collect();
        spot.sort_unstable();
        spot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_classifies_nodes_and_lists_are_sorted() {
        let set = PoolSet::split(vec![1], vec![3, 2]);
        assert_eq!(set.class_of(1), Some(PriceClass::OnDemand));
        assert_eq!(set.class_of(2), Some(PriceClass::Spot));
        assert_eq!(set.class_of(0), None, "submit node is unpooled");
        assert_eq!(set.nodes(), vec![1, 2, 3]);
        assert_eq!(set.spot_nodes(), vec![2, 3]);
        assert_eq!(PriceClass::Spot.label(), "spot");
        assert_eq!(PriceClass::OnDemand.label(), "on_demand");
    }

    #[test]
    #[should_panic(expected = "appears in two pools")]
    fn overlapping_pools_are_rejected() {
        PoolSet::split(vec![1, 2], vec![2, 3]);
    }
}
