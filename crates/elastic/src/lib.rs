//! # swf-elastic
//!
//! Elastic infrastructure for the *Serverless Computing for Dynamic HPC
//! Workflows* reproduction: the cloud the platform runs on stops being a
//! static pool and starts appearing and disappearing under running
//! workflows.
//!
//! The pieces:
//!
//! - [`PoolSet`] / [`PriceClass`] ([`pool`]): typed node pools — workers
//!   are `on_demand` (reserved, never revoked) or `spot` (discounted,
//!   revocable with a grace notice).
//! - [`CostLedger`] / [`CostReport`] ([`cost`]): per-price-class
//!   node-second billing on the virtual clock, fed by autoscaler scale
//!   events and by the fault plan's revocation schedule, surfaced as
//!   `cost.node_s.*` metrics and a perf-per-dollar report.
//! - [`run_elastic`] ([`experiment`]): the chaos harness with a
//!   [`swf_condor::PoolScaler`] and [`swf_k8s::NodePoolAutoscaler`]
//!   attached over the spot pool and the ledger billing every pooled
//!   node. Spot revocations arrive through the ordinary
//!   [`swf_chaos::FaultPlan`] machinery as `SpotRevoke` events: the
//!   injector drains the startd and evicts the node's pods at the
//!   notice, and hard-fails the node only when the grace window expires
//!   — with rescue-resume as the safety net for whatever the drain
//!   could not finish.
//!
//! Everything is opt-in: no default stack spawns a scaler or a ledger,
//! and a static all-on-demand run fingerprints identically to the plain
//! chaos run it wraps.

#![warn(missing_docs)]

pub mod cost;
pub mod experiment;
pub mod pool;

pub use cost::{CostLedger, CostModel, CostReport};
pub use experiment::{elastic_plan, run_elastic, ElasticOutcome, ElasticRunConfig};
pub use pool::{NodePool, PoolSet, PriceClass};
