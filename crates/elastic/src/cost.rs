//! The cost ledger: per-price-class node-second accounting on the
//! virtual clock.
//!
//! A pooled node bills whenever it is *active* — from [`CostLedger::open_all`]
//! at boot until something deactivates it: an autoscaler scale-in (wired
//! through the scaler's listener) or a spot revocation's hard-kill instant
//! (derived from the fault plan by [`CostLedger::track_plan`]). Closed
//! intervals are observed as `cost.node_s.on_demand` / `cost.node_s.spot`
//! the moment they close, so the metrics snapshot carries the billed
//! history; the final [`CostReport`] additionally clips still-open
//! intervals to the run's settle instant.

use std::cell::RefCell;
use std::rc::Rc;

use swf_chaos::{FaultKind, FaultPlan};
use swf_simcore::{now, sleep, SimDuration, SimTime};

use crate::pool::{PoolSet, PriceClass};

/// Per-price-class prices, in dollars per node-hour (the unit cloud
/// price sheets quote).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Reserved capacity price.
    pub on_demand_per_node_h: f64,
    /// Preemptible capacity price.
    pub spot_per_node_h: f64,
}

impl Default for CostModel {
    /// A 70% spot discount, the ballpark across providers.
    fn default() -> Self {
        CostModel {
            on_demand_per_node_h: 0.40,
            spot_per_node_h: 0.12,
        }
    }
}

impl CostModel {
    /// Dollars per node-second at a class.
    pub fn rate_per_s(&self, class: PriceClass) -> f64 {
        match class {
            PriceClass::OnDemand => self.on_demand_per_node_h / 3600.0,
            PriceClass::Spot => self.spot_per_node_h / 3600.0,
        }
    }
}

struct LedgerState {
    /// Node id → instant its current active interval opened.
    open: std::collections::BTreeMap<usize, SimTime>,
    /// Closed-interval node-seconds billed so far, per class.
    on_demand_s: f64,
    spot_s: f64,
}

/// The ledger. Cheap to clone; all state is shared.
#[derive(Clone)]
pub struct CostLedger {
    pools: PoolSet,
    model: CostModel,
    state: Rc<RefCell<LedgerState>>,
}

impl CostLedger {
    /// A ledger over `pools` at `model` prices. Nothing is billed until
    /// [`open_all`](Self::open_all) (or a `set_active(_, true)`) runs
    /// inside the simulation.
    pub fn new(pools: PoolSet, model: CostModel) -> CostLedger {
        CostLedger {
            pools,
            model,
            state: Rc::new(RefCell::new(LedgerState {
                open: std::collections::BTreeMap::new(),
                on_demand_s: 0.0,
                spot_s: 0.0,
            })),
        }
    }

    /// Open an active interval for every pooled node at the current
    /// virtual instant (call at boot).
    pub fn open_all(&self) {
        let t = now();
        let mut s = self.state.borrow_mut();
        for n in self.pools.nodes() {
            s.open.entry(n).or_insert(t);
        }
    }

    /// Transition a node's billing state. Opening an open node or closing
    /// a closed one is a no-op, so autoscaler listeners and the plan
    /// tracker can overlap without double-billing. Closing observes the
    /// interval under the class's `cost.node_s.*` metric.
    pub fn set_active(&self, node: usize, active: bool) {
        let Some(class) = self.pools.class_of(node) else {
            return;
        };
        let mut s = self.state.borrow_mut();
        if active {
            s.open.entry(node).or_insert_with(now);
            return;
        }
        let Some(opened) = s.open.remove(&node) else {
            return;
        };
        let billed = (now() - opened).as_secs_f64();
        let obs = swf_obs::current();
        match class {
            PriceClass::OnDemand => {
                s.on_demand_s += billed;
                obs.observe("cost.node_s.on_demand", billed);
            }
            PriceClass::Spot => {
                s.spot_s += billed;
                obs.observe("cost.node_s.spot", billed);
            }
        }
    }

    /// Drive the ledger from a fault plan: a spot node stops billing at
    /// its revocation's hard-kill instant (`at + grace`) and resumes at
    /// its recovery. A revocation rescinded by a recovery inside its
    /// grace window bills straight through. Spawn the returned future
    /// inside the simulation alongside the injector.
    pub async fn track_plan(self, plan: FaultPlan) {
        let spot: std::collections::BTreeSet<usize> = self.pools.spot_nodes().into_iter().collect();
        // (action instant, node, active): off at hard-kill, on at recovery.
        let mut actions: Vec<(SimDuration, usize, bool)> = Vec::new();
        for (i, ev) in plan.events.iter().enumerate() {
            match ev.kind {
                FaultKind::SpotRevoke { node, grace } if spot.contains(&node) => {
                    let kill_at = ev.at + grace;
                    let rescinded = plan.events[i + 1..].iter().any(|later| {
                        later.at < kill_at
                            && matches!(later.kind, FaultKind::NodeRecover { node: n } if n == node)
                    });
                    if rescinded {
                        swf_obs::current().counter_add("elastic.spot_rescinds", 1);
                    } else {
                        actions.push((kill_at, node, false));
                    }
                }
                FaultKind::NodeRecover { node } if spot.contains(&node) => {
                    actions.push((ev.at, node, true));
                }
                _ => {}
            }
        }
        actions.sort();
        let start = now();
        for (at, node, active) in actions {
            let due = start + at;
            let t = now();
            if due > t {
                sleep(due - t).await;
            }
            if !active {
                swf_obs::current().counter_add("elastic.spot_revocations", 1);
            }
            self.set_active(node, active);
        }
    }

    /// The report as of `end`: closed intervals plus still-open intervals
    /// clipped to `end`. Pure arithmetic — callable after the simulation
    /// finishes.
    pub fn report_at(&self, end: SimTime) -> CostReport {
        let s = self.state.borrow();
        let mut on_demand_s = s.on_demand_s;
        let mut spot_s = s.spot_s;
        for (node, opened) in &s.open {
            let tail = if end > *opened {
                (end - *opened).as_secs_f64()
            } else {
                0.0
            };
            match self.pools.class_of(*node) {
                Some(PriceClass::OnDemand) => on_demand_s += tail,
                Some(PriceClass::Spot) => spot_s += tail,
                None => {}
            }
        }
        let on_demand_dollars = on_demand_s * self.model.rate_per_s(PriceClass::OnDemand);
        let spot_dollars = spot_s * self.model.rate_per_s(PriceClass::Spot);
        CostReport {
            on_demand_node_s: on_demand_s,
            spot_node_s: spot_s,
            on_demand_dollars,
            spot_dollars,
        }
    }
}

/// What a run cost, per price class.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostReport {
    /// Node-seconds billed at the on-demand class.
    pub on_demand_node_s: f64,
    /// Node-seconds billed at the spot class.
    pub spot_node_s: f64,
    /// Dollars at the on-demand class.
    pub on_demand_dollars: f64,
    /// Dollars at the spot class.
    pub spot_dollars: f64,
}

impl CostReport {
    /// Total dollars.
    pub fn dollars(&self) -> f64 {
        self.on_demand_dollars + self.spot_dollars
    }

    /// Useful task-seconds bought per dollar (the paper-style
    /// perf-per-dollar figure of merit). Zero when nothing was billed.
    pub fn perf_per_dollar(&self, useful_task_s: f64) -> f64 {
        let d = self.dollars();
        if d > 0.0 {
            useful_task_s / d
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_simcore::{secs, spawn, Sim};

    fn pools() -> PoolSet {
        PoolSet::split(vec![1], vec![2, 3])
    }

    #[test]
    fn intervals_bill_per_class_and_transitions_are_idempotent() {
        let sim = Sim::new();
        sim.block_on(async {
            let ledger = CostLedger::new(pools(), CostModel::default());
            ledger.open_all();
            ledger.set_active(2, true); // already open: no-op
            sleep(secs(100.0)).await;
            ledger.set_active(2, false);
            ledger.set_active(2, false); // already closed: no-op
            sleep(secs(50.0)).await;
            let r = ledger.report_at(now());
            // Node 1 (on-demand) open the whole 150 s; node 3 (spot) too;
            // node 2 (spot) billed its first 100 s only.
            assert_eq!(r.on_demand_node_s.to_bits(), 150.0f64.to_bits());
            assert_eq!(r.spot_node_s.to_bits(), 250.0f64.to_bits());
            let expected: f64 = 150.0 * (0.40 / 3600.0) + 250.0 * (0.12 / 3600.0);
            assert_eq!(r.dollars().to_bits(), expected.to_bits());
            assert!(r.perf_per_dollar(100.0) > 0.0);
            // Unpooled nodes never bill.
            ledger.set_active(0, true);
            assert_eq!(
                ledger.report_at(now()).dollars().to_bits(),
                expected.to_bits()
            );
        });
    }

    #[test]
    fn track_plan_stops_billing_at_hard_kill_and_resumes_at_recovery() {
        let sim = Sim::new();
        sim.block_on(async {
            let mut plan = FaultPlan::calm();
            plan.push(
                secs(10.0),
                FaultKind::SpotRevoke {
                    node: 2,
                    grace: secs(5.0),
                },
            );
            plan.push(secs(40.0), FaultKind::NodeRecover { node: 2 });
            // A rescinded revocation on node 3: recovery inside grace.
            plan.push(
                secs(20.0),
                FaultKind::SpotRevoke {
                    node: 3,
                    grace: secs(10.0),
                },
            );
            plan.push(secs(25.0), FaultKind::NodeRecover { node: 3 });
            let ledger = CostLedger::new(pools(), CostModel::default());
            ledger.open_all();
            let h = spawn(ledger.clone().track_plan(plan));
            sleep(secs(100.0)).await;
            h.await;
            let r = ledger.report_at(now());
            // Node 2 off during [15, 40): bills 75 s; node 3 bills all 100.
            assert_eq!(r.spot_node_s.to_bits(), 175.0f64.to_bits());
            assert_eq!(r.on_demand_node_s.to_bits(), 100.0f64.to_bits());
        });
    }
}
