//! The elastic experiment: the chaos harness with autoscalers, spot
//! pools, and the cost ledger attached.
//!
//! [`run_elastic`] wraps [`swf_chaos::run_chaos_with`]: same testbed,
//! same workflow chains, same injector — plus, through the setup hook, a
//! [`swf_condor::PoolScaler`] and [`swf_k8s::NodePoolAutoscaler`] over
//! the spot pool and a [`CostLedger`] billing every pooled node. With
//! `autoscale` off and an all-on-demand pool set, the run is the plain
//! chaos run plus passive billing: same fingerprint, same outcomes.

use std::rc::Rc;

use swf_chaos::{ChaosOutcome, ChaosProfile, ChaosRunConfig, FaultPlan};
use swf_cluster::NodeId;
use swf_condor::{PoolScaler, PoolScalerConfig};
use swf_k8s::{NodePoolAutoscaler, NodePoolConfig};
use swf_simcore::{secs, SimDuration};

use crate::cost::{CostLedger, CostModel, CostReport};
use crate::pool::PoolSet;

/// Shape of one elastic experiment run.
#[derive(Clone)]
pub struct ElasticRunConfig {
    /// The underlying chaos-run shape (workflows, tasks, rescue budget).
    pub chaos: ChaosRunConfig,
    /// Which workers exist at which price class.
    pub pools: PoolSet,
    /// Prices.
    pub model: CostModel,
    /// Spawn the condor pool scaler and the k8s node-pool autoscaler
    /// over the spot pool (spot capacity then starts scaled in and grows
    /// on queue pressure). Off = the static cluster the chaos suite has
    /// always run.
    pub autoscale: bool,
    /// Autoscaler idle cooldown before scale-in.
    pub idle_cooldown: SimDuration,
}

impl ElasticRunConfig {
    /// The head-to-head shape used by the `elastic` bench scenario:
    /// enough concurrent chains (12 × 4 tasks) that one 8-slot on-demand
    /// worker cannot hold the burst, so the scalers must grow the spot
    /// pool, with rescue-resume armed as the revocation safety net.
    pub fn burst(seed: u64) -> ElasticRunConfig {
        let mut chaos = ChaosRunConfig::rescue(seed);
        chaos.workflows = 12;
        ElasticRunConfig {
            chaos,
            pools: PoolSet::split(vec![1], vec![2, 3]),
            model: CostModel::default(),
            autoscale: true,
            idle_cooldown: secs(20.0),
        }
    }

    /// The static baseline: every worker on-demand, no autoscaling —
    /// the pre-elastic cluster with a price tag attached.
    pub fn static_cluster(seed: u64) -> ElasticRunConfig {
        let mut c = ElasticRunConfig::burst(seed);
        c.pools = PoolSet::all_on_demand(&[1, 2, 3]);
        c.autoscale = false;
        c
    }
}

/// Sample a fault plan for an elastic run: every non-spot class drawn
/// over all pooled workers exactly as [`FaultPlan::sample`] would, and
/// the spot-revocation class drawn over the spot pool only — reserved
/// capacity is never revoked.
pub fn elastic_plan(
    profile: &ChaosProfile,
    seed: u64,
    horizon: SimDuration,
    pools: &PoolSet,
) -> FaultPlan {
    let workers = pools.nodes();
    let mut base = *profile;
    base.spot_revoke_interval = 0.0;
    let mut plan = FaultPlan::sample(
        &base,
        seed,
        horizon,
        0,
        &workers,
        &[swf_chaos::SERVICE.to_string()],
    );
    plan.merge(FaultPlan::sample_spots(
        profile,
        seed,
        horizon,
        &pools.spot_nodes(),
    ));
    plan
}

/// Everything one elastic run yields: the chaos outcome plus the bill.
#[derive(Clone, Debug)]
pub struct ElasticOutcome {
    /// The underlying chaos outcome (workflow outcomes, goodput, plan).
    pub chaos: ChaosOutcome,
    /// The bill, clipped to the run's settle instant.
    pub cost: CostReport,
    /// Nominal task-seconds of completed workflows (workflows completed
    /// × tasks per workflow × nominal task seconds) — the "useful work"
    /// numerator of perf-per-dollar.
    pub useful_task_s: f64,
    /// Useful task-seconds per dollar.
    pub perf_per_dollar: f64,
}

impl ElasticOutcome {
    /// Salvaged task-seconds over salvaged + wasted: how much of the
    /// disruption-touched work the rescue machinery carried forward.
    /// 1.0 when nothing was disrupted.
    pub fn salvage_ratio(&self) -> f64 {
        let g = &self.chaos.goodput;
        let touched = g.salvaged_task_s + g.wasted_task_s;
        if touched > 0.0 {
            g.salvaged_task_s / touched
        } else {
            1.0
        }
    }
}

/// Run one elastic experiment. `Err` only on harness setup failure, as
/// with [`swf_chaos::run_chaos`].
pub fn run_elastic(cfg: &ElasticRunConfig, plan: &FaultPlan) -> Result<ElasticOutcome, String> {
    let ledger = CostLedger::new(cfg.pools.clone(), cfg.model);
    let hook_ledger = ledger.clone();
    let pools = cfg.pools.clone();
    let hook_plan = plan.clone();
    let autoscale = cfg.autoscale;
    let idle_cooldown = cfg.idle_cooldown;
    let chaos = swf_chaos::run_chaos_with(&cfg.chaos, plan, move |bed| {
        hook_ledger.open_all();
        swf_simcore::spawn(hook_ledger.clone().track_plan(hook_plan));
        let spot: Vec<NodeId> = pools.spot_nodes().into_iter().map(NodeId).collect();
        if autoscale && !spot.is_empty() {
            let billing = hook_ledger.clone();
            let scaler = PoolScaler::new(
                bed.condor.clone(),
                PoolScalerConfig {
                    nodes: spot.clone(),
                    min_active: 0,
                    max_active: spot.len(),
                    max_scale_up_per_tick: 1,
                    start_drained: true,
                    tick: secs(1.0),
                    idle_cooldown,
                },
            )
            .with_listener(Rc::new(move |n: NodeId, active: bool| {
                billing.set_active(n.0, active)
            }));
            swf_simcore::spawn(scaler.run());
            // The k8s mirror keeps pods off scaled-in spot nodes. No
            // listener: compute billing follows the condor pool, not the
            // pod view, so the two scalers never double-bill a node.
            let nodepool = NodePoolAutoscaler::new(
                bed.k8s.api().clone(),
                NodePoolConfig {
                    nodes: spot,
                    min_ready: 0,
                    start_parked: true,
                    tick: secs(1.0),
                    idle_cooldown,
                },
            );
            swf_simcore::spawn(nodepool.run());
        }
    })?;
    let useful_task_s =
        chaos.completed() as f64 * cfg.chaos.tasks_per_workflow as f64 * cfg.chaos.task_secs;
    let cost = ledger.report_at(chaos.settled_at);
    let perf_per_dollar = cost.perf_per_dollar(useful_task_s);
    Ok(ElasticOutcome {
        chaos,
        cost,
        useful_task_s,
        perf_per_dollar,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_calm_run_matches_plain_chaos_fingerprint_and_bills_flat() {
        let cfg = ElasticRunConfig::static_cluster(3);
        let plain = swf_chaos::run_chaos(&cfg.chaos, &FaultPlan::calm()).unwrap();
        let elastic = run_elastic(&cfg, &FaultPlan::calm()).unwrap();
        // Passive billing must not perturb the simulation.
        assert_eq!(plain.fingerprint(), elastic.chaos.fingerprint());
        assert!(elastic.chaos.all_completed());
        // Three on-demand workers billed for the whole run, no spot.
        assert_eq!(elastic.cost.spot_node_s, 0.0);
        assert!(elastic.cost.on_demand_node_s > 0.0);
        assert!(elastic.perf_per_dollar > 0.0);
        assert_eq!(elastic.salvage_ratio(), 1.0);
    }

    #[test]
    fn burst_run_scales_out_under_pressure_and_costs_less_per_unit() {
        let stat = run_elastic(&ElasticRunConfig::static_cluster(7), &FaultPlan::calm()).unwrap();
        let burst = run_elastic(&ElasticRunConfig::burst(7), &FaultPlan::calm()).unwrap();
        assert!(stat.chaos.all_completed());
        assert!(
            burst.chaos.all_completed(),
            "calm burst must complete: {:?}",
            burst.chaos.outcomes
        );
        // The burst pool scaled out at least one spot worker…
        let ups = burst
            .chaos
            .metrics
            .counters
            .get("condor.pool.scale_ups")
            .copied()
            .unwrap_or(0);
        assert!(ups >= 1, "12 chains over 8 slots must scale out");
        // …and pay-for-use spot beats always-on on-demand per dollar.
        assert!(
            burst.perf_per_dollar > stat.perf_per_dollar,
            "burst {} vs static {}",
            burst.perf_per_dollar,
            stat.perf_per_dollar
        );
        // Determinism: the whole elastic pipeline replays bitwise.
        let again = run_elastic(&ElasticRunConfig::burst(7), &FaultPlan::calm()).unwrap();
        assert_eq!(burst.chaos.fingerprint(), again.chaos.fingerprint());
        assert_eq!(
            burst.cost.dollars().to_bits(),
            again.cost.dollars().to_bits()
        );
    }

    #[test]
    fn revocation_storm_completes_via_drain_and_rescue() {
        let cfg = ElasticRunConfig::burst(11);
        let plan = elastic_plan(&ChaosProfile::heavy_spot(), 11, secs(150.0), &cfg.pools);
        assert!(
            plan.events
                .iter()
                .any(|e| matches!(e.kind, swf_chaos::FaultKind::SpotRevoke { .. })),
            "the storm must contain revocations"
        );
        let out = run_elastic(&cfg, &plan).unwrap();
        assert!(
            out.chaos.all_completed(),
            "drain + rescue must complete every chain: {:?}",
            out.chaos.outcomes
        );
        assert_eq!(out.chaos.goodput.reexecuted_nodes, 0);
        assert_eq!(out.chaos.goodput.output_mismatches, 0);
        assert!(out.cost.dollars() > 0.0);
    }
}
