//! Orchestrator errors.

use std::fmt;

/// Errors from the Kubernetes-style control plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum K8sError {
    /// Object already exists.
    AlreadyExists(String),
    /// Object not found.
    NotFound(String),
    /// No node can satisfy the pod's resource requests.
    Unschedulable(String),
    /// Waiting for a condition timed out.
    Timeout(String),
    /// Underlying container runtime failure.
    Runtime(String),
}

impl fmt::Display for K8sError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            K8sError::AlreadyExists(n) => write!(f, "already exists: {n}"),
            K8sError::NotFound(n) => write!(f, "not found: {n}"),
            K8sError::Unschedulable(m) => write!(f, "unschedulable: {m}"),
            K8sError::Timeout(m) => write!(f, "timed out: {m}"),
            K8sError::Runtime(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl std::error::Error for K8sError {}

impl From<swf_container::ContainerError> for K8sError {
    fn from(e: swf_container::ContainerError) -> Self {
        K8sError::Runtime(e.to_string())
    }
}
