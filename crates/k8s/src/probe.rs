//! Health probes: periodic kubelet checks that drive self-healing.
//!
//! Real kubelets run readiness and liveness probes against each container.
//! Readiness failures pull the pod out of service endpoints (the knative
//! router only targets ready pods); liveness failures restart the
//! container in place, bumping `restart_count` — the pod object, its node
//! binding and its port all survive the restart.
//!
//! This model folds both into one periodic check of the backing
//! container's phase (a crashed container fails both probes, exactly the
//! chaos fault we inject): after [`ProbeSpec::unready_threshold`]
//! consecutive failures the pod is marked unready, and after
//! [`ProbeSpec::failure_threshold`] the kubelet restarts the container.
//! All timing runs on the virtual clock, so probe cadence is deterministic.

use swf_simcore::SimDuration;

/// Probe configuration attached to a [`crate::PodSpec`].
#[derive(Clone, Copy, Debug)]
pub struct ProbeSpec {
    /// Interval between probe checks (`periodSeconds`).
    pub period: SimDuration,
    /// Consecutive failures before the pod is marked unready and pulled
    /// out of routing (`failureThreshold` on the readiness probe).
    pub unready_threshold: u32,
    /// Consecutive failures before the kubelet restarts the container
    /// (`failureThreshold` on the liveness probe). Must be ≥
    /// `unready_threshold` for the usual unready-then-restart sequence.
    pub failure_threshold: u32,
}

impl Default for ProbeSpec {
    fn default() -> Self {
        ProbeSpec {
            period: SimDuration::from_secs(2),
            unready_threshold: 1,
            failure_threshold: 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_probe_is_unready_before_restart() {
        let p = ProbeSpec::default();
        assert!(p.unready_threshold <= p.failure_threshold);
        assert!(p.period > SimDuration::ZERO);
    }
}
