//! Deployment, ReplicaSet and Endpoints controllers.
//!
//! All three follow the level-triggered reconcile pattern: wake on any
//! relevant store change, list, diff desired vs observed, act. Status
//! updates are write-on-change only, so reconciles converge instead of
//! re-triggering themselves forever.

use swf_simcore::race;

use crate::api::ApiServer;
use crate::meta::ObjectMeta;
use crate::pod::{Pod, PodPhase};
use crate::service::{Endpoint, Endpoints};
use crate::workload_api::{PodTemplate, ReplicaSet};

/// Deployment → ReplicaSet reconciliation.
pub struct DeploymentController {
    api: ApiServer,
}

impl DeploymentController {
    /// New controller.
    pub fn new(api: ApiServer) -> Self {
        DeploymentController { api }
    }

    /// Run forever.
    pub async fn run(self) {
        let mut deps = self.api.deployments().watch();
        let mut sets = self.api.replicasets().watch();
        loop {
            self.reconcile();
            race(deps.changed(), sets.changed()).await;
        }
    }

    /// One pass.
    pub fn reconcile(&self) {
        // Ensure each deployment has its ReplicaSet at the right scale.
        for d in self.api.deployments().list() {
            let rs_name = format!("{}-rs", d.meta.name);
            match self.api.replicasets().get(&rs_name) {
                None => {
                    self.api.replicasets().put(
                        rs_name.clone(),
                        ReplicaSet {
                            meta: ObjectMeta::named(&rs_name).owned_by(&d.meta.name),
                            replicas: d.replicas,
                            selector: d.selector.clone(),
                            template: PodTemplate {
                                meta: d.template.meta.clone(),
                                spec: d.template.spec.clone(),
                            },
                            ready_replicas: 0,
                        },
                    );
                }
                Some(rs) if rs.replicas != d.replicas => {
                    self.api
                        .replicasets()
                        .update(&rs_name, |rs| rs.replicas = d.replicas);
                }
                Some(_) => {}
            }
        }
        // Garbage-collect ReplicaSets whose deployment is gone.
        for (name, rs) in self.api.replicasets().entries() {
            if let Some(owner) = &rs.meta.owner {
                if !self.api.deployments().contains(owner) {
                    self.api.replicasets().delete(&name);
                }
            }
        }
    }
}

/// ReplicaSet → Pods reconciliation.
pub struct ReplicaSetController {
    api: ApiServer,
    counters: std::cell::RefCell<std::collections::BTreeMap<String, u64>>,
}

impl ReplicaSetController {
    /// New controller.
    pub fn new(api: ApiServer) -> Self {
        ReplicaSetController {
            api,
            counters: std::cell::RefCell::new(std::collections::BTreeMap::new()),
        }
    }

    /// Run forever.
    pub async fn run(self) {
        let mut sets = self.api.replicasets().watch();
        let mut pods = self.api.pods().watch();
        loop {
            self.reconcile().await;
            race(sets.changed(), pods.changed()).await;
        }
    }

    /// One pass.
    pub async fn reconcile(&self) {
        for (rs_name, rs) in self.api.replicasets().entries() {
            let owned: Vec<Pod> = self.api.pods().filter(|p| {
                p.meta.owner.as_deref() == Some(rs_name.as_str())
                    && !p.meta.deletion_requested
                    && p.status.phase != PodPhase::Failed
            });
            let live = owned.len() as u32;
            if live < rs.replicas {
                for _ in 0..(rs.replicas - live) {
                    let seq = self.next_pod_seq(&rs_name);
                    let pod_name = format!("{rs_name}-{seq}");
                    let meta = ObjectMeta {
                        name: pod_name.clone(),
                        labels: rs.template.meta.labels.clone(),
                        annotations: rs.template.meta.annotations.clone(),
                        owner: Some(rs_name.clone()),
                        ..Default::default()
                    };
                    let _ = self
                        .api
                        .create_pod(Pod::new(meta, rs.template.spec.clone()))
                        .await;
                }
            } else if live > rs.replicas {
                // Scale down: victims are the not-ready first, then the
                // newest (highest name sorts last with zero-padded seq).
                let mut victims = owned;
                victims.sort_by(|a, b| {
                    b.is_routable()
                        .cmp(&a.is_routable())
                        .then(a.meta.name.cmp(&b.meta.name))
                });
                let n_delete = (live - rs.replicas) as usize;
                for p in victims.into_iter().rev().take(n_delete) {
                    let _ = self.api.delete_pod(&p.meta.name).await;
                }
            }
            // Status write-on-change.
            let ready = self
                .api
                .pods()
                .filter(|p| p.meta.owner.as_deref() == Some(rs_name.as_str()) && p.is_routable())
                .len() as u32;
            if rs.ready_replicas != ready {
                self.api
                    .replicasets()
                    .update(&rs_name, |rs| rs.ready_replicas = ready);
            }
        }
        // Orphan cleanup: pods owned by a vanished ReplicaSet.
        for (name, pod) in self.api.pods().entries() {
            if let Some(owner) = &pod.meta.owner {
                if !self.api.replicasets().contains(owner) && !pod.meta.deletion_requested {
                    let _ = self.api.delete_pod(&name).await;
                }
            }
        }
    }

    /// Monotonic per-ReplicaSet pod sequence. Seeded from existing pod names
    /// so a restarted controller never duplicates a live name, then kept in
    /// memory so names are not reused even after pods are deleted.
    fn next_pod_seq(&self, rs_name: &str) -> u64 {
        let prefix = format!("{rs_name}-");
        let observed = self
            .api
            .pods()
            .entries()
            .iter()
            .filter_map(|(n, _)| n.strip_prefix(&prefix).and_then(|s| s.parse::<u64>().ok()))
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        let mut counters = self.counters.borrow_mut();
        let counter = counters.entry(rs_name.to_string()).or_insert(0);
        let next = (*counter).max(observed);
        *counter = next + 1;
        next
    }
}

/// Service → Endpoints reconciliation.
pub struct EndpointsController {
    api: ApiServer,
}

impl EndpointsController {
    /// New controller.
    pub fn new(api: ApiServer) -> Self {
        EndpointsController { api }
    }

    /// Run forever.
    pub async fn run(self) {
        let mut services = self.api.services().watch();
        let mut pods = self.api.pods().watch();
        loop {
            self.reconcile();
            race(services.changed(), pods.changed()).await;
        }
    }

    /// One pass.
    pub fn reconcile(&self) {
        for (svc_name, svc) in self.api.services().entries() {
            let mut ready: Vec<Endpoint> = self
                .api
                .pods()
                .filter(|p| p.is_routable() && svc.selector.matches(&p.meta.labels))
                .into_iter()
                .filter_map(|p| {
                    // `is_routable` implies a node assignment; a pod without
                    // one simply isn't an endpoint yet.
                    p.status.node.map(|node| Endpoint {
                        node,
                        port: p.status.port,
                    })
                })
                .collect();
            ready.sort_by_key(|e| (e.node, e.port));
            let current = self.api.endpoints().get(&svc_name);
            let changed = current.map(|c| c.ready != ready).unwrap_or(true);
            if changed {
                self.api.endpoints().put(
                    svc_name.clone(),
                    Endpoints {
                        service: svc_name.clone(),
                        ready,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::LabelSelector;
    use crate::pod::PodSpec;
    use crate::workload_api::Deployment;
    use swf_cluster::NodeId;
    use swf_container::ImageRef;
    use swf_simcore::{secs, sleep, spawn, Sim};

    fn template() -> PodTemplate {
        PodTemplate {
            meta: ObjectMeta::default().with_label("app", "m"),
            spec: PodSpec::new(ImageRef::parse("img")),
        }
    }

    fn deployment(replicas: u32) -> Deployment {
        Deployment::new(
            ObjectMeta::named("d"),
            replicas,
            LabelSelector::eq("app", "m"),
            template(),
        )
    }

    #[test]
    fn deployment_creates_replicaset_creates_pods() {
        let sim = Sim::new();
        sim.block_on(async {
            let api = ApiServer::default();
            spawn(DeploymentController::new(api.clone()).run());
            spawn(ReplicaSetController::new(api.clone()).run());
            api.create_deployment(deployment(3)).await.unwrap();
            sleep(secs(1.0)).await;
            assert!(api.replicasets().contains("d-rs"));
            assert_eq!(api.pods().len(), 3);
            for p in api.pods().list() {
                assert_eq!(p.meta.owner.as_deref(), Some("d-rs"));
                assert_eq!(p.meta.labels["app"], "m");
            }
        });
    }

    #[test]
    fn scale_up_and_down() {
        let sim = Sim::new();
        sim.block_on(async {
            let api = ApiServer::default();
            spawn(DeploymentController::new(api.clone()).run());
            spawn(ReplicaSetController::new(api.clone()).run());
            api.create_deployment(deployment(2)).await.unwrap();
            sleep(secs(1.0)).await;
            assert_eq!(api.pods().len(), 2);
            api.scale_deployment("d", 5).await.unwrap();
            sleep(secs(1.0)).await;
            assert_eq!(api.pods().len(), 5);
            api.scale_deployment("d", 1).await.unwrap();
            sleep(secs(1.0)).await;
            // Unscheduled pods delete immediately.
            assert_eq!(api.pods().len(), 1);
        });
    }

    #[test]
    fn deleting_deployment_cascades() {
        let sim = Sim::new();
        sim.block_on(async {
            let api = ApiServer::default();
            spawn(DeploymentController::new(api.clone()).run());
            spawn(ReplicaSetController::new(api.clone()).run());
            api.create_deployment(deployment(3)).await.unwrap();
            sleep(secs(1.0)).await;
            api.delete_deployment("d").await.unwrap();
            sleep(secs(1.0)).await;
            assert!(!api.replicasets().contains("d-rs"));
            assert_eq!(api.pods().len(), 0);
        });
    }

    #[test]
    fn failed_pods_are_replaced() {
        let sim = Sim::new();
        sim.block_on(async {
            let api = ApiServer::default();
            spawn(DeploymentController::new(api.clone()).run());
            spawn(ReplicaSetController::new(api.clone()).run());
            api.create_deployment(deployment(2)).await.unwrap();
            sleep(secs(1.0)).await;
            let victim = api.pods().entries()[0].0.clone();
            api.pods()
                .update(&victim, |p| p.status.phase = PodPhase::Failed);
            sleep(secs(1.0)).await;
            let live = api
                .pods()
                .filter(|p| p.status.phase != PodPhase::Failed)
                .len();
            assert_eq!(live, 2);
        });
    }

    #[test]
    fn endpoints_track_ready_pods() {
        let sim = Sim::new();
        sim.block_on(async {
            let api = ApiServer::default();
            spawn(EndpointsController::new(api.clone()).run());
            api.create_service(crate::service::Service {
                meta: ObjectMeta::named("svc"),
                selector: LabelSelector::eq("app", "m"),
            })
            .await
            .unwrap();
            let mut pod = Pod::new(
                ObjectMeta::named("p1").with_label("app", "m"),
                PodSpec::new(ImageRef::parse("img")),
            );
            pod.spec.node_name = Some(NodeId(1));
            api.create_pod(pod).await.unwrap();
            sleep(secs(0.1)).await;
            assert!(api.endpoints().get("svc").unwrap().ready.is_empty());
            api.pods().update("p1", |p| {
                p.status.phase = PodPhase::Running;
                p.status.ready = true;
                p.status.port = 31000;
            });
            sleep(secs(0.1)).await;
            let eps = api.endpoints().get("svc").unwrap();
            assert_eq!(
                eps.ready,
                vec![Endpoint {
                    node: NodeId(1),
                    port: 31000
                }]
            );
            // Marking unready removes it.
            api.pods().update("p1", |p| p.status.ready = false);
            sleep(secs(0.1)).await;
            assert!(api.endpoints().get("svc").unwrap().ready.is_empty());
        });
    }

    #[test]
    fn pod_names_are_never_reused() {
        let sim = Sim::new();
        sim.block_on(async {
            let api = ApiServer::default();
            spawn(DeploymentController::new(api.clone()).run());
            spawn(ReplicaSetController::new(api.clone()).run());
            api.create_deployment(deployment(1)).await.unwrap();
            sleep(secs(1.0)).await;
            let first = api.pods().entries()[0].0.clone();
            api.scale_deployment("d", 0).await.unwrap();
            sleep(secs(1.0)).await;
            api.scale_deployment("d", 1).await.unwrap();
            sleep(secs(1.0)).await;
            let second = api.pods().entries()[0].0.clone();
            assert_ne!(first, second);
        });
    }
}
