//! Versioned, watchable object store — the heart of the API server.
//!
//! Controllers follow the Kubernetes pattern: *level-triggered reconcile*.
//! A [`Watcher`] wakes whenever the store version advances; the controller
//! then lists current state and reconciles. Missed intermediate states are
//! fine by construction.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use swf_simcore::sync::Notify;

struct Inner<T> {
    objects: BTreeMap<String, T>,
    version: u64,
    notify: Notify,
}

/// A watchable map of named objects.
pub struct Store<T: Clone> {
    inner: Rc<RefCell<Inner<T>>>,
}

impl<T: Clone> Clone for Store<T> {
    fn clone(&self) -> Self {
        Store {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T: Clone> Default for Store<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> Store<T> {
    /// Empty store at version 0.
    pub fn new() -> Self {
        Store {
            inner: Rc::new(RefCell::new(Inner {
                objects: BTreeMap::new(),
                version: 0,
                notify: Notify::new(),
            })),
        }
    }

    fn bump(inner: &mut Inner<T>) {
        inner.version += 1;
        inner.notify.notify_waiters();
    }

    /// Insert or replace an object.
    pub fn put(&self, name: impl Into<String>, object: T) {
        let mut inner = self.inner.borrow_mut();
        inner.objects.insert(name.into(), object);
        Self::bump(&mut inner);
    }

    /// Remove an object; returns it if present.
    pub fn delete(&self, name: &str) -> Option<T> {
        let mut inner = self.inner.borrow_mut();
        let removed = inner.objects.remove(name);
        if removed.is_some() {
            Self::bump(&mut inner);
        }
        removed
    }

    /// Fetch a copy of an object.
    pub fn get(&self, name: &str) -> Option<T> {
        self.inner.borrow().objects.get(name).cloned()
    }

    /// Mutate an object in place; bumps the version if the closure ran.
    /// Returns false when the object does not exist.
    pub fn update<R>(&self, name: &str, f: impl FnOnce(&mut T) -> R) -> Option<R> {
        let mut inner = self.inner.borrow_mut();
        let r = inner.objects.get_mut(name).map(f);
        if r.is_some() {
            Self::bump(&mut inner);
        }
        r
    }

    /// Snapshot all objects (sorted by name).
    pub fn list(&self) -> Vec<T> {
        self.inner.borrow().objects.values().cloned().collect()
    }

    /// Snapshot all `(name, object)` pairs.
    pub fn entries(&self) -> Vec<(String, T)> {
        self.inner
            .borrow()
            .objects
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Objects satisfying a predicate.
    pub fn filter(&self, pred: impl Fn(&T) -> bool) -> Vec<T> {
        self.inner
            .borrow()
            .objects
            .values()
            .filter(|o| pred(o))
            .cloned()
            .collect()
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.inner.borrow().objects.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current version.
    pub fn version(&self) -> u64 {
        self.inner.borrow().version
    }

    /// Does the name exist?
    pub fn contains(&self, name: &str) -> bool {
        self.inner.borrow().objects.contains_key(name)
    }

    /// Create a watcher positioned at the current version.
    pub fn watch(&self) -> Watcher<T> {
        Watcher {
            store: self.clone(),
            seen: self.version(),
        }
    }
}

/// Wakes when the store version advances past the last seen version.
pub struct Watcher<T: Clone> {
    store: Store<T>,
    seen: u64,
}

impl<T: Clone> Watcher<T> {
    /// Wait until the store has changed since the last `changed` (or since
    /// watcher creation). Returns the new version.
    pub async fn changed(&mut self) -> u64 {
        loop {
            let (version, notified) = {
                let inner = self.store.inner.borrow();
                if inner.version > self.seen {
                    self.seen = inner.version;
                    return inner.version;
                }
                (inner.version, inner.notify.notified())
            };
            let _ = version;
            notified.await;
        }
    }

    /// Non-blocking check; advances the seen version when changed.
    pub fn check(&mut self) -> bool {
        let v = self.store.version();
        if v > self.seen {
            self.seen = v;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swf_simcore::{now, secs, sleep, spawn, Sim, SimTime};

    #[test]
    fn crud_and_versions() {
        let s: Store<u32> = Store::new();
        assert_eq!(s.version(), 0);
        s.put("a", 1);
        s.put("b", 2);
        assert_eq!(s.version(), 2);
        assert_eq!(s.get("a"), Some(1));
        assert_eq!(s.list(), vec![1, 2]);
        s.update("a", |v| *v = 10);
        assert_eq!(s.get("a"), Some(10));
        assert_eq!(s.delete("a"), Some(10));
        assert_eq!(s.delete("a"), None);
        assert_eq!(s.version(), 4); // delete of missing key does not bump
        assert_eq!(s.len(), 1);
        assert!(s.contains("b"));
    }

    #[test]
    fn update_missing_returns_none_without_bump() {
        let s: Store<u32> = Store::new();
        assert_eq!(s.update("ghost", |v| *v += 1), None);
        assert_eq!(s.version(), 0);
    }

    #[test]
    fn watcher_wakes_on_change() {
        let sim = Sim::new();
        sim.block_on(async {
            let s: Store<u32> = Store::new();
            let mut w = s.watch();
            let s2 = s.clone();
            spawn(async move {
                sleep(secs(1.0)).await;
                s2.put("x", 7);
            });
            let v = w.changed().await;
            assert_eq!(v, 1);
            assert_eq!(now(), SimTime::ZERO + secs(1.0));
        });
    }

    #[test]
    fn watcher_coalesces_many_updates() {
        let sim = Sim::new();
        sim.block_on(async {
            let s: Store<u32> = Store::new();
            let mut w = s.watch();
            for i in 0..5 {
                s.put(format!("k{i}"), i);
            }
            // One changed() observes all five.
            let v = w.changed().await;
            assert_eq!(v, 5);
            assert!(!w.check());
        });
    }

    #[test]
    fn filter_and_entries() {
        let s: Store<u32> = Store::new();
        s.put("a", 1);
        s.put("b", 2);
        s.put("c", 3);
        assert_eq!(s.filter(|v| *v % 2 == 1), vec![1, 3]);
        let names: Vec<String> = s.entries().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }
}
